"""Render harness results; evaluate the optimal-plan-rate gate.

The gate mirrors the acceptance criterion: with cardinality feedback
enabled, the chosen plan must be within ``threshold`` (1.5x) of the
enumerated best for at least ``required_rate`` (90%) of the corpus on
the conventional layout, and no query may regress beyond ``max_ratio``
(2x).  JSON results persist to ``benchmarks/results/`` so CI runs are
comparable across commits.
"""

from __future__ import annotations

from dataclasses import dataclass

from .harness import LayoutOutcome

#: Acceptance thresholds (see ISSUE 6 / docs/optimizer_quality.md).
GATE_LAYOUT = "conventional"
GATE_THRESHOLD = 1.5
GATE_REQUIRED_RATE = 0.9
GATE_MAX_RATIO = 2.0


@dataclass
class GateResult:
    layout: str
    threshold: float
    required_rate: float
    max_ratio: float
    optimal_rate: float
    worst_ratio: float
    passed: bool
    detail: str

    def to_dict(self) -> dict:
        return {
            "layout": self.layout,
            "threshold": self.threshold,
            "required_rate": self.required_rate,
            "max_ratio": self.max_ratio,
            "optimal_rate": round(self.optimal_rate, 4),
            "worst_ratio": round(self.worst_ratio, 4),
            "passed": self.passed,
            "detail": self.detail,
        }


def evaluate_gate(
    outcomes: dict[str, LayoutOutcome],
    *,
    layout: str = GATE_LAYOUT,
    threshold: float = GATE_THRESHOLD,
    required_rate: float = GATE_REQUIRED_RATE,
    max_ratio: float = GATE_MAX_RATIO,
) -> GateResult:
    outcome = outcomes.get(layout)
    if outcome is None:
        return GateResult(
            layout, threshold, required_rate, max_ratio, 0.0, float("inf"),
            False, f"layout {layout!r} was not run",
        )
    rate = outcome.optimal_rate(threshold)
    worst = outcome.worst_ratio()
    rate_ok = rate >= required_rate
    worst_ok = worst <= max_ratio
    if rate_ok and worst_ok:
        detail = (
            f"{rate:.0%} of queries within {threshold}x of best "
            f"(worst {worst:.2f}x)"
        )
    else:
        offenders = [
            f"seed {q.seed}: {q.ratio_after:.2f}x"
            for q in outcome.queries
            if q.ratio_after > threshold
        ]
        detail = (
            f"rate {rate:.0%} (need {required_rate:.0%}), "
            f"worst {worst:.2f}x (cap {max_ratio}x); over threshold: "
            + (", ".join(offenders) or "none")
        )
    return GateResult(
        layout, threshold, required_rate, max_ratio, rate, worst,
        rate_ok and worst_ok, detail,
    )


def report_to_json(
    outcomes: dict[str, LayoutOutcome],
    gate: GateResult | None = None,
    *,
    config: dict | None = None,
) -> dict:
    payload: dict = {
        "benchmark": "optimizer_quality",
        "config": config or {},
        "layouts": {},
    }
    for name, outcome in outcomes.items():
        payload["layouts"][name] = {
            "feedback": outcome.feedback,
            "optimal_rate_1_5x": round(outcome.optimal_rate(1.5), 4),
            "worst_ratio": round(outcome.worst_ratio(), 4),
            "plans_changed_by_feedback": sum(
                1 for q in outcome.queries if q.plan_changed
            ),
            "queries": [q.to_dict() for q in outcome.queries],
        }
    if gate is not None:
        payload["gate"] = gate.to_dict()
    return payload


def render_report(
    outcomes: dict[str, LayoutOutcome], gate: GateResult | None = None
) -> str:
    """Human-readable best-vs-chosen table, one block per layout."""
    lines: list[str] = []
    for name in sorted(outcomes):
        outcome = outcomes[name]
        lines.append(
            f"== {name} (feedback {'on' if outcome.feedback else 'off'}) =="
        )
        lines.append(
            f"{'seed':>4}  {'plans':>5}  {'best':>7}  {'chosen':>7}  "
            f"{'ratio':>6}  {'after':>6}  {'q-err':>6}  sql"
        )
        for q in outcome.queries:
            q_err = f"{q.max_q_error:.1f}" if q.max_q_error else "-"
            sql = q.sql if len(q.sql) <= 60 else q.sql[:57] + "..."
            lines.append(
                f"{q.seed:>4}  {q.alternatives:>5}  {q.best.work:>7}  "
                f"{q.chosen.work:>7}  {q.ratio_before:>6.2f}  "
                f"{q.ratio_after:>6.2f}  {q_err:>6}  {sql}"
            )
        changed = sum(1 for q in outcome.queries if q.plan_changed)
        lines.append(
            f"  optimal rate (1.5x): {outcome.optimal_rate(1.5):.0%}  "
            f"worst: {outcome.worst_ratio():.2f}x  "
            f"feedback changed {changed} plan(s)"
        )
        lines.append("")
    if gate is not None:
        status = "PASS" if gate.passed else "FAIL"
        lines.append(f"GATE [{gate.layout}] {status}: {gate.detail}")
    return "\n".join(lines)
