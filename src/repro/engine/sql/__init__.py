"""SQL front end: lexer, AST, and recursive-descent parser."""

from .ast import (  # noqa: F401
    BinaryOp,
    ColumnRef,
    CreateIndex,
    CreateTable,
    Delete,
    DropIndex,
    DropTable,
    FuncCall,
    InList,
    InSubquery,
    Insert,
    IsNull,
    Literal,
    OrderItem,
    Param,
    Select,
    SelectItem,
    Star,
    SubquerySource,
    TableSource,
    UnaryOp,
    Update,
)
from .parser import parse_statement  # noqa: F401
