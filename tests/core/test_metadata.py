"""Unit tests for transformation-layer meta-data: row ids, column ids,
lock accounting, and the budget report."""

import pytest

from repro.core.metadata import (
    ColumnIdAllocator,
    MetadataReport,
    RowIdAllocator,
)
from repro.engine.locks import LockTable


class TestRowIdAllocator:
    def test_monotonic_per_key(self):
        rows = RowIdAllocator()
        assert [rows.allocate(1, "t") for _ in range(3)] == [0, 1, 2]

    def test_independent_per_tenant_and_table(self):
        rows = RowIdAllocator()
        rows.allocate(1, "t")
        assert rows.allocate(2, "t") == 0
        assert rows.allocate(1, "u") == 0

    def test_case_insensitive_table_names(self):
        rows = RowIdAllocator()
        rows.allocate(1, "Account")
        assert rows.allocate(1, "account") == 1

    def test_observe_advances_counter(self):
        rows = RowIdAllocator()
        rows.observe(1, "t", 41)
        assert rows.allocate(1, "t") == 42

    def test_observe_never_regresses(self):
        rows = RowIdAllocator()
        rows.observe(1, "t", 10)
        rows.observe(1, "t", 3)
        assert rows.allocate(1, "t") == 11

    def test_forget_tenant(self):
        rows = RowIdAllocator()
        rows.allocate(1, "t")
        rows.allocate(2, "t")
        rows.forget_tenant(1)
        assert rows.allocate(1, "t") == 0
        assert rows.allocate(2, "t") == 1


class TestColumnIdAllocator:
    def test_base_columns_positional(self):
        columns = ColumnIdAllocator()
        columns.register_base("t", ["a", "b", "c"])
        assert columns.column_id("t", "a") == 0
        assert columns.column_id("t", "C") == 2

    def test_extension_columns_continue(self):
        columns = ColumnIdAllocator()
        columns.register_base("t", ["a", "b"])
        columns.register_extension("t", ["x", "y"])
        assert columns.column_id("t", "x") == 2
        assert columns.column_id("t", "y") == 3

    def test_two_extensions_get_disjoint_ids(self):
        columns = ColumnIdAllocator()
        columns.register_base("t", ["a"])
        columns.register_extension("t", ["x"])
        columns.register_extension("t", ["z"])
        assert columns.column_id("t", "x") == 1
        assert columns.column_id("t", "z") == 2

    def test_reregistration_keeps_ids_stable(self):
        columns = ColumnIdAllocator()
        columns.register_base("t", ["a"])
        columns.register_extension("t", ["x"])
        first = columns.column_id("t", "x")
        columns.register_extension("t", ["x"])  # idempotent for ids
        assert columns.column_id("t", "x") == first


class TestMetadataReport:
    def test_lines_render(self):
        report = MetadataReport(
            layout="chunk_folding",
            physical_tables=3,
            physical_indexes=4,
            metadata_bytes=16384,
            buffer_pool_pages=100,
        )
        text = "\n".join(report.lines())
        assert "chunk_folding" in text
        assert "16384" in text


class TestLockTable:
    def test_exclusive_conflicts(self):
        locks = LockTable()
        assert locks.acquire(1, "r", exclusive=True) == 0
        assert locks.acquire(2, "r", exclusive=True) == 1
        assert locks.stats.conflicts == 1

    def test_shared_locks_coexist(self):
        locks = LockTable()
        locks.acquire(1, "r", exclusive=False)
        assert locks.acquire(2, "r", exclusive=False) == 0

    def test_shared_blocks_exclusive(self):
        locks = LockTable()
        locks.acquire(1, "r", exclusive=False)
        assert locks.acquire(2, "r", exclusive=True) == 1

    def test_reacquire_own_lock_free(self):
        locks = LockTable()
        locks.acquire(1, "r", exclusive=True)
        assert locks.acquire(1, "r", exclusive=True) == 0

    def test_release_session(self):
        locks = LockTable()
        locks.acquire(1, "r", exclusive=True)
        locks.release_session(1)
        assert locks.acquire(2, "r", exclusive=True) == 0
        assert locks.held_by(1) == 0

    def test_stats_delta(self):
        locks = LockTable()
        locks.acquire(1, "r", exclusive=True)
        before = locks.stats.snapshot()
        locks.acquire(2, "r", exclusive=True)
        delta = locks.stats.delta(before)
        assert delta.acquisitions == 1
        assert delta.conflicts == 1
