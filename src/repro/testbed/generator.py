"""Deterministic synthetic data for the testbed.

"All data for the testbed is synthetically generated."  Every value is
a pure function of (tenant, table, row, column) through a seeded RNG, so
runs are reproducible and workers can regenerate values without shared
state.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field

from ..core.schema import LogicalTable
from ..engine.values import TypeKind

_WORDS = (
    "acme", "globex", "initech", "umbrella", "stark", "wayne", "hooli",
    "vandelay", "wonka", "tyrell", "cyberdyne", "gringotts", "oceanic",
    "sirius", "aperture", "monarch", "duff", "oscorp", "buynlarge", "zorg",
)

_STATUSES = ("new", "open", "working", "closed", "won", "lost", "pending")
_INDUSTRIES = ("health", "auto", "retail", "finance", "energy", "telco")

_EPOCH = datetime.date(2000, 1, 1)


@dataclass
class TenantDataProfile:
    """How much data each tenant carries.

    The paper fixes ~1.4 MB per tenant across the 10 tables; the default
    here is a documented 1/100 scale (DESIGN.md §2).  ``rows_per_table``
    may be overridden per table name.
    """

    default_rows: int = 7
    rows_per_table: dict[str, int] = field(default_factory=dict)

    def rows_for(self, table_name: str) -> int:
        base = table_name.split("_i")[0]
        return self.rows_per_table.get(base, self.default_rows)


class DataGenerator:
    """Generates rows for one tenant's copy of the CRM schema."""

    def __init__(self, seed: int = 2008) -> None:
        self.seed = seed

    def _rng(self, tenant_id: int, table_name: str, row: int) -> random.Random:
        return random.Random(f"{self.seed}/{tenant_id}/{table_name}/{row}")

    def row(
        self,
        tenant_id: int,
        table: LogicalTable,
        row_number: int,
        parent_count: int | None = None,
    ) -> dict[str, object]:
        """One synthetic row: {column: value}.  ``parent_count`` bounds
        the foreign key so child rows reference existing parents."""
        rng = self._rng(tenant_id, table.name, row_number)
        values: dict[str, object] = {}
        for column in table.columns:
            name = column.lname
            if name == "id":
                values[name] = row_number + 1
                continue
            if name == "parent":
                if parent_count:
                    values[name] = rng.randrange(parent_count) + 1
                else:
                    values[name] = None
                continue
            values[name] = self._value(rng, name, column.type.kind, column)
        return values

    def _value(self, rng, name, kind, column):
        # One in eight payload values is NULL — sparse-ish but dense
        # enough that reconstruction joins stay meaningful.
        if rng.random() < 0.125:
            return None
        if kind in (TypeKind.INTEGER, TypeKind.BIGINT):
            return rng.randrange(10_000)
        if kind is TypeKind.DOUBLE:
            return round(rng.uniform(0, 100_000), 2)
        if kind is TypeKind.BOOLEAN:
            return rng.random() < 0.5
        if kind is TypeKind.DATE:
            return _EPOCH + datetime.timedelta(days=rng.randrange(3650))
        # VARCHAR: pick vocabulary by column name for plausible data.
        if name == "status" or name == "stage":
            return rng.choice(_STATUSES)
        if name == "industry" or name == "family":
            return rng.choice(_INDUSTRIES)
        length = column.type.length or 20
        words = [rng.choice(_WORDS) for _ in range(1 + length // 24)]
        return ("-".join(words) + f"-{rng.randrange(1000)}")[:length]

    def load_tenant(
        self,
        mtd,
        tenant_id: int,
        tables: list[LogicalTable],
        profile: TenantDataProfile,
    ) -> int:
        """Populate every table for one tenant; returns rows inserted.

        Parents are loaded before children (definition order follows the
        DAG) so foreign keys stay consistent.
        """
        counts: dict[str, int] = {}
        inserted = 0
        for table in tables:
            rows = profile.rows_for(table.name)
            has_parent = table.has_column("parent")
            parent_count = None
            if has_parent:
                from .crm import CRM_PARENTS

                base = table.name.split("_i")[0]
                parent_base = CRM_PARENTS.get(base)
                if parent_base is not None:
                    suffix = table.name[len(base):]
                    parent_count = counts.get(parent_base + suffix, 0)
            # Generate against the tenant's *view* so subscribed
            # extensions receive data too.
            logical = mtd.schema.logical_table(tenant_id, table.name)
            for row_number in range(rows):
                values = self.row(tenant_id, logical, row_number, parent_count)
                mtd.insert(tenant_id, table.name, values)
                inserted += 1
            counts[table.name] = rows
        return inserted
