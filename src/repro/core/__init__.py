"""The paper's contribution: multi-tenant schema mapping & Chunk Folding."""

from .api import MultiTenantDatabase  # noqa: F401
from .capacity import (  # noqa: F401
    ApplicationProfile,
    CapacityModel,
    figure2_estimates,
)
from .folding import (  # noqa: F401
    ChunkAssignment,
    ChunkShape,
    FoldingDecision,
    FoldingPlanner,
    assign_cover,
    merge_shapes,
    partition_columns,
    select_cover_shapes,
    shape_fits,
    shape_waste,
    total_waste,
)
from .layouts import LAYOUTS, make_layout  # noqa: F401
from .layouts.base import ColumnLoc, Fragment, Layout  # noqa: F401
from .migration import Migrator  # noqa: F401
from .schema import (  # noqa: F401
    Extension,
    LogicalColumn,
    LogicalTable,
    MultiTenantSchema,
    TenantConfig,
)
from .transform.dml import DmlTransformer, UpdateMode  # noqa: F401
from .transform.flatten import PredicateOrder  # noqa: F401
from .transform.query import QueryTransformer, build_reconstruction  # noqa: F401
