"""Worker action classes (Figure 6).

Each action simulates one user request: the timing of an action starts
when a Worker sends the first request and ends when it receives the last
response.  The distribution is the paper's card-deck mix.
"""

from __future__ import annotations

import enum
import random

from .crm import CRM_PARENTS, CRM_TABLE_NAMES, instance_table_name
from .generator import DataGenerator, TenantDataProfile


class ActionClass(enum.Enum):
    SELECT_LIGHT = "Select Light"
    SELECT_HEAVY = "Select Heavy"
    INSERT_LIGHT = "Insert Light"
    INSERT_HEAVY = "Insert Heavy"
    UPDATE_LIGHT = "Update Light"
    UPDATE_HEAVY = "Update Heavy"
    ADMIN = "Administrative"
    TENANT_ADD = "Tenant Add"
    TENANT_DELETE = "Tenant Delete"


#: Figure 6 percentages.
ACTION_DISTRIBUTION = {
    ActionClass.SELECT_LIGHT: 50.0,
    ActionClass.SELECT_HEAVY: 15.0,
    ActionClass.INSERT_LIGHT: 9.59,
    ActionClass.INSERT_HEAVY: 0.3,
    ActionClass.UPDATE_LIGHT: 17.6,
    ActionClass.UPDATE_HEAVY: 7.5,
    ActionClass.ADMIN: 0.01,
}

#: Variant mix with tenant churn ("administrative operations for the
#: business as a whole, in particular, adding and deleting tenants").
CHURN_DISTRIBUTION = {
    **{k: v for k, v in ACTION_DISTRIBUTION.items()},
    ActionClass.SELECT_LIGHT: 49.0,
    ActionClass.TENANT_ADD: 0.6,
    ActionClass.TENANT_DELETE: 0.4,
}

#: Batch size for heavyweight DML; the paper uses "several hundred"
#: entity instances — scaled with the rest of the data volume.
HEAVY_BATCH = 25

#: The five reporting queries of the Select Heavy class, parameterized
#: by (child, parent) table names.  They "perform aggregation and/or
#: parent-child-rollup" and are "simple enough to run against an
#: operational OLTP system".
def _reporting_queries(child: str, parent: str) -> list[str]:
    return [
        # 1: status breakdown of a table (aggregation + grouping).
        f"SELECT status, COUNT(*) AS n FROM {child} GROUP BY status "
        f"ORDER BY n DESC",
        # 2: parent-child rollup: children per parent.
        f"SELECT p.name, COUNT(*) AS n FROM {parent} p, {child} c "
        f"WHERE c.parent = p.id GROUP BY p.name ORDER BY n DESC LIMIT 10",
        # 3: value rollup over the join.
        f"SELECT p.id, SUM(c.amount) AS total FROM {parent} p, {child} c "
        f"WHERE c.parent = p.id GROUP BY p.id ORDER BY total DESC LIMIT 10",
        # 4: date-windowed aggregate.
        f"SELECT COUNT(*), AVG(amount) FROM {child} "
        f"WHERE created > '2005-01-01'",
        # 5: top entities by score.
        f"SELECT name, score FROM {child} WHERE score IS NOT NULL "
        f"ORDER BY score DESC LIMIT 20",
    ]


class ActionExecutor:
    """Runs one action of a class against the MultiTenantDatabase."""

    def __init__(
        self,
        mtd,
        profile: TenantDataProfile,
        generator: DataGenerator,
        tenant_instance: dict[int, int],
        seed: int = 42,
    ) -> None:
        self.mtd = mtd
        self.profile = profile
        self.generator = generator
        self.tenant_instance = tenant_instance
        self.rng = random.Random(seed)
        self._insert_counter: dict[tuple[int, str], int] = {}
        self._admin_instances = 0
        #: Prepared handles for the deck's recurring statements, one per
        #: SQL text (tenant-agnostic — the tenant binds per execution).
        self._prepared: dict[str, object] = {}
        #: Tenants created by TENANT_ADD actions (deleted LIFO by
        #: TENANT_DELETE so the deck's pre-assigned tenants stay valid).
        self._churn_tenants: list[int] = []
        self._next_churn_tenant = 50_000

    # -- helpers ---------------------------------------------------------

    def _table(self, tenant_id: int, base: str) -> str:
        return instance_table_name(base, self.tenant_instance[tenant_id])

    def _random_base(self) -> str:
        return self.rng.choice(CRM_TABLE_NAMES)

    def _random_child(self) -> tuple[str, str]:
        child = self.rng.choice(sorted(CRM_PARENTS))
        return child, CRM_PARENTS[child]

    def _random_entity(self, base: str) -> int:
        return self.rng.randrange(self.profile.rows_for(base)) + 1

    def _fresh_id(self, tenant_id: int, table: str) -> int:
        key = (tenant_id, table)
        counter = self._insert_counter.get(key, 100_000)
        self._insert_counter[key] = counter + 1
        return counter

    def _statement(self, sql: str):
        """The action deck replays a small fixed set of statements
        millions of times: keep one prepared handle per SQL text."""
        handle = self._prepared.get(sql)
        if handle is None:
            handle = self.mtd.prepare(sql)
            self._prepared[sql] = handle
        return handle

    # -- the action classes ------------------------------------------------

    def run(self, action: ActionClass, tenant_id: int) -> str | None:
        """Execute one action; returns the (logical) table it touched,
        used by the worker layer for lock accounting."""
        handler = {
            ActionClass.SELECT_LIGHT: self.select_light,
            ActionClass.SELECT_HEAVY: self.select_heavy,
            ActionClass.INSERT_LIGHT: self.insert_light,
            ActionClass.INSERT_HEAVY: self.insert_heavy,
            ActionClass.UPDATE_LIGHT: self.update_light,
            ActionClass.UPDATE_HEAVY: self.update_heavy,
            ActionClass.ADMIN: self.admin,
            ActionClass.TENANT_ADD: self.tenant_add,
            ActionClass.TENANT_DELETE: self.tenant_delete,
        }[action]
        return handler(tenant_id)

    def select_light(self, tenant_id: int) -> str:
        """All attributes of one entity, as for an entity detail page."""
        base = self._random_base()
        table = self._table(tenant_id, base)
        self._statement(f"SELECT * FROM {table} WHERE id = ?").execute(
            tenant_id, [self._random_entity(base)]
        )
        return table

    def select_heavy(self, tenant_id: int) -> str:
        """One of five fixed business-activity-monitoring queries."""
        child_base, parent_base = self._random_child()
        child = self._table(tenant_id, child_base)
        parent = self._table(tenant_id, parent_base)
        sql = self.rng.choice(_reporting_queries(child, parent))
        self._statement(sql).execute(tenant_id)
        return child

    def insert_light(self, tenant_id: int) -> str:
        """One new entity, as if manually entered in the browser."""
        base = self._random_base()
        table = self._table(tenant_id, base)
        self._insert_one(tenant_id, table, base)
        return table

    def insert_heavy(self, tenant_id: int) -> str:
        """A batch import via the Web Service interface."""
        base = self._random_base()
        table = self._table(tenant_id, base)
        for _ in range(HEAVY_BATCH):
            self._insert_one(tenant_id, table, base)
        return table

    def _insert_one(self, tenant_id: int, table: str, base: str) -> None:
        logical = self.mtd.schema.logical_table(tenant_id, table)
        row_number = self._fresh_id(tenant_id, table)
        values = self.generator.row(
            tenant_id, logical, row_number, self.profile.rows_for(base)
        )
        values["id"] = row_number
        self.mtd.insert(tenant_id, table, values)

    def update_light(self, tenant_id: int) -> str:
        """Update a small set selected by an indexed filter condition."""
        base = self._random_base()
        table = self._table(tenant_id, base)
        status = self.rng.choice(("new", "open", "working"))
        self._statement(
            f"UPDATE {table} SET priority = ? WHERE status = ?"
        ).execute(tenant_id, [self.rng.randrange(10), status])
        return table

    def update_heavy(self, tenant_id: int) -> str:
        """Update a batch of entities selected by primary key."""
        base = self._random_base()
        table = self._table(tenant_id, base)
        ids = [self._random_entity(base) for _ in range(HEAVY_BATCH)]
        placeholders = ", ".join("?" for _ in ids)
        self._statement(
            f"UPDATE {table} SET score = score + 1 WHERE id IN ({placeholders})"
        ).execute(tenant_id, ids)
        return table

    def admin(self, tenant_id: int) -> str | None:
        """Create a new instance of the 10-table CRM schema via DDL
        while the system is online."""
        from .crm import crm_tables

        self._admin_instances += 1
        instance = 10_000 + self._admin_instances
        for table in crm_tables(instance):
            self.mtd.define_table(table)
        return None

    def tenant_add(self, tenant_id: int) -> str | None:
        """Onboard a new tenant onto the issuing tenant's schema
        instance and load its initial data."""
        self._next_churn_tenant += 1
        new_tenant = self._next_churn_tenant
        instance = self.tenant_instance[tenant_id]
        self.tenant_instance[new_tenant] = instance
        self.mtd.create_tenant(new_tenant)
        from .crm import crm_tables

        self.generator.load_tenant(
            self.mtd, new_tenant, crm_tables(instance), self.profile
        )
        self._churn_tenants.append(new_tenant)
        return None

    def tenant_delete(self, tenant_id: int) -> str | None:
        """Offboard the most recently churned-in tenant (never a tenant
        the card deck may still reference)."""
        if not self._churn_tenants:
            return None
        victim = self._churn_tenants.pop()
        self.mtd.drop_tenant(victim)
        del self.tenant_instance[victim]
        return None
