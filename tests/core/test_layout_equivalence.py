"""Property-based cross-layout equivalence.

The central correctness contract of schema mapping: *every* layout is
an implementation detail — any sequence of logical operations must
produce identical logical states under all of them.  Hypothesis drives
random operation sequences against every layout in parallel and
compares full logical dumps after every step.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Extension, LogicalColumn, LogicalTable, MultiTenantDatabase
from repro.engine.values import DATE, INTEGER, varchar

LAYOUTS = ["extension", "universal", "pivot", "chunk", "chunk_folding"]


def build(layout: str) -> MultiTenantDatabase:
    options = {"width": 2} if layout in ("chunk", "chunk_folding") else {}
    mtd = MultiTenantDatabase(layout=layout, **options)
    mtd.define_table(
        LogicalTable(
            "item",
            (
                LogicalColumn("id", INTEGER, indexed=True, not_null=True),
                LogicalColumn("label", varchar(20)),
                LogicalColumn("qty", INTEGER),
                LogicalColumn("added", DATE),
            ),
        )
    )
    mtd.define_extension(
        Extension(
            "extra",
            "item",
            (
                LogicalColumn("color", varchar(10)),
                LogicalColumn("weight", INTEGER),
            ),
        )
    )
    mtd.create_tenant(1, extensions=("extra",))
    mtd.create_tenant(2)
    return mtd


def dump(mtd: MultiTenantDatabase, tenant: int):
    return sorted(
        mtd.execute(tenant, "SELECT * FROM item").rows, key=repr
    )


# -- operation strategies -----------------------------------------------------

_ids = st.integers(1, 8)
_tenants = st.sampled_from([1, 2])

_insert = st.tuples(
    st.just("insert"),
    _tenants,
    _ids,
    st.text(alphabet="abcxyz", min_size=1, max_size=6),
    st.integers(0, 50) | st.none(),
)
_update = st.tuples(
    st.just("update"),
    _tenants,
    _ids,
    st.integers(0, 99),
)
_delete = st.tuples(st.just("delete"), _tenants, _ids)
_bump = st.tuples(st.just("bump"), _tenants, st.integers(0, 30))

_operations = st.lists(
    st.one_of(_insert, _update, _delete, _bump), min_size=1, max_size=14
)


def apply_operation(mtd: MultiTenantDatabase, op: tuple, counters: dict) -> None:
    kind = op[0]
    if kind == "insert":
        _, tenant, item_id, label, qty = op
        key = (id(mtd), tenant, item_id)
        # Entity ids must stay unique per tenant: suffix a counter.
        seq = counters.get(key, 0)
        counters[key] = seq + 1
        values = {
            "id": item_id * 100 + seq,
            "label": label,
            "qty": qty,
            "added": "2008-06-09",
        }
        if tenant == 1:
            values["color"] = "red" if (item_id % 2) else None
            values["weight"] = item_id * 3
        mtd.insert(tenant, "item", values)
    elif kind == "update":
        _, tenant, item_id, qty = op
        mtd.execute(
            tenant, "UPDATE item SET qty = ? WHERE id = ?", [qty, item_id * 100]
        )
    elif kind == "delete":
        _, tenant, item_id = op
        mtd.execute(tenant, "DELETE FROM item WHERE id = ?", [item_id * 100])
    elif kind == "bump":
        _, tenant, threshold = op
        mtd.execute(
            tenant,
            "UPDATE item SET qty = qty + 1 WHERE qty >= ?",
            [threshold],
        )


class TestLayoutEquivalence:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(operations=_operations)
    def test_all_layouts_reach_identical_states(self, operations):
        databases = {layout: build(layout) for layout in LAYOUTS}
        counters: dict = {}
        for op in operations:
            for mtd in databases.values():
                apply_operation(mtd, op, counters)
        reference_layout = LAYOUTS[0]
        for tenant in (1, 2):
            reference = dump(databases[reference_layout], tenant)
            for layout, mtd in databases.items():
                assert dump(mtd, tenant) == reference, (
                    f"layout {layout} diverged for tenant {tenant} "
                    f"after {operations}"
                )

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(operations=_operations)
    def test_migration_preserves_random_states(self, operations):
        """After any operation sequence, migrating tenant 1 to another
        layout must not change its logical state."""
        mtd = build("chunk_folding")
        counters: dict = {}
        for op in operations:
            apply_operation(mtd, op, counters)
        before = {t: dump(mtd, t) for t in (1, 2)}
        mtd.migrate_tenant(1, "universal")
        assert dump(mtd, 1) == before[1]
        assert dump(mtd, 2) == before[2]
