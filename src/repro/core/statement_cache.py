"""Shape-keyed caching of transformed statements.

The §6.1 query transformation is a pure function of (logical SQL,
layout, tenant schema shape): tenants subscribing to the same extension
set produce *identical* physical statements except for the tenant-id
meta-data literals.  The cache therefore keys entries by
``(logical sql, layout identity, shape key)`` and parameterizes the
tenant identity (see :class:`TenantParamAllocator
<repro.core.transform.query.TenantParamAllocator>`), so thousands of
tenants collapse onto a handful of entries — the paper's Table 1
schema-variability model turned into a cache-locality win.

Each entry pins a :class:`PreparedStatement
<repro.engine.statement_cache.PreparedStatement>`, so a warm hit skips
transformation, SQL rendering, parsing, *and* planning.  Entries also
remember the flattening context (optimizer profile, flatten switch,
predicate order) under which they were built and are rebuilt on
mismatch; schema administration (extension definition/grant/alter,
tenant migration, tenant removal) clears the cache outright.

Counters: ``mt.statement_cache.hits`` / ``misses`` / ``evictions`` /
``invalidations`` in the engine's metrics registry.
"""

from __future__ import annotations

from typing import Sequence

from ..engine.database import Result
from ..engine.statement_cache import LruCache, PreparedStatement
from .transform.crosstenant import MergeSpec, merge_results
from .transform.query import TenantParamAllocator

#: Metrics namespace of the schema-mapping statement cache.
METRICS_PREFIX = "mt.statement_cache"


class CachedStatement:
    """One transformed SELECT, prepared and shared across a shape."""

    __slots__ = ("prepared", "tenant_params", "context")

    def __init__(
        self,
        prepared: PreparedStatement,
        tenant_params: TenantParamAllocator,
        context: tuple,
    ) -> None:
        self.prepared = prepared
        self.tenant_params = tenant_params
        self.context = context

    def execute(self, tenant_id: int, params: Sequence[object]):
        """Run for one tenant: the tenant id fills the allocated
        meta-data parameter slots after the logical parameters."""
        return self.prepared.execute(self.tenant_params.bind(params, tenant_id))


class CrossTenantStatement:
    """One transformed ``FOR TENANTS`` SELECT: a prepared fused
    statement per structure group plus the merge recipe recombining the
    group results.  The declared tenant set is baked into the statements
    as literals, so the cache key (not a parameter slot) carries the
    tenant identity."""

    __slots__ = ("prepared", "merge", "output_names", "context")

    def __init__(
        self,
        prepared: list[PreparedStatement],
        merge: MergeSpec | None,
        output_names: list[str],
        context: tuple,
    ) -> None:
        self.prepared = prepared
        self.merge = merge
        self.output_names = output_names
        self.context = context

    def execute(self, params: Sequence[object]) -> Result:
        results = [p.execute(tuple(params)) for p in self.prepared]
        if self.merge is None:
            return results[0]
        rows = merge_results(self.merge, [r.rows for r in results])
        return Result(list(self.output_names), rows, len(rows))


class StatementCache:
    """The shape-keyed transformed-statement cache of one
    :class:`~repro.core.api.MultiTenantDatabase`."""

    def __init__(self, capacity: int, metrics) -> None:
        self._metrics = metrics
        self._entries = LruCache(capacity, metrics, METRICS_PREFIX)

    @property
    def enabled(self) -> bool:
        return self._entries.enabled

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple, context: tuple) -> CachedStatement | None:
        """A usable entry for ``key``, or ``None``.  An entry built
        under a different flattening context counts as an invalidation
        (the caller rebuilds and re-stores)."""
        if not self._entries.enabled:
            return None
        entry = self._entries.get(key)
        if entry is not None and entry.context != context:
            self._metrics.counter(f"{METRICS_PREFIX}.invalidations").inc()
            entry = None
        if entry is None:
            self._metrics.counter(f"{METRICS_PREFIX}.misses").inc()
            return None
        self._metrics.counter(f"{METRICS_PREFIX}.hits").inc()
        return entry

    def store(self, key: tuple, entry: CachedStatement) -> None:
        self._entries.put(key, entry)

    def invalidate_all(self) -> int:
        """Drop everything (schema administration changed tenant shapes
        or physical structure); returns entries dropped."""
        dropped = self._entries.clear()
        if dropped:
            self._metrics.counter(f"{METRICS_PREFIX}.invalidations").inc(dropped)
        return dropped


class LogicalPreparedStatement:
    """A logical statement prepared against a
    :class:`~repro.core.api.MultiTenantDatabase`.

    The handle is tenant-agnostic — ``execute(tenant_id, params)`` binds
    the tenant per call, sharing shape-keyed cache entries underneath —
    so application servers keep one handle per action card, not one per
    tenant.
    """

    __slots__ = ("_mtd", "sql", "stmt")

    def __init__(self, mtd, sql: str, stmt) -> None:
        self._mtd = mtd
        self.sql = sql
        self.stmt = stmt

    def execute(self, tenant_id: int, params: Sequence[object] = ()):
        return self._mtd._execute_parsed(tenant_id, self.sql, self.stmt, params)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LogicalPreparedStatement {self.sql!r}>"
