"""Engine-wide observability: metrics registry, query traces, EXPLAIN
ANALYZE.

Three pieces, layered exactly like the measurements in the paper:

* :mod:`metrics` — a named registry of counters/gauges/histograms fed by
  every subsystem (buffer pool, heaps, B-trees, locks, transactions,
  testbed workers).  ``db.metrics`` exposes it.
* :mod:`trace` — :class:`QueryTrace`, per-statement deltas of the pool /
  executor / lock counters plus wall time; ``db.trace(sql)`` returns
  one.  Experiments attribute page reads to individual queries with it
  (Figure 10, Table 2).
* :mod:`analyze` — per-operator row counts and timings collected while a
  plan runs; rendered as the annotated Figure 8 operator tree by
  ``EXPLAIN ANALYZE`` / ``db.explain_analyze(sql)``.
"""

from .analyze import (  # noqa: F401
    AnalyzeCollector,
    OperatorStats,
    render_analyzed_plan,
)
from .metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    HISTOGRAM_RESERVOIR,
    MetricsRegistry,
)
from .trace import QueryTrace  # noqa: F401
