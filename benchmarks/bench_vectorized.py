"""Vectorized executor — wall-clock, tuple vs batch-at-a-time.

Not a paper figure: this benchmark records the speedup of the
batch-at-a-time engine (``execution="vectorized"``) over the
tuple-at-a-time reference interpreter on the two workloads the paper's
Experiment 2 stresses hardest:

* the "Additional Tests" style *grouping query* — a full child-table
  scan feeding GROUP BY with COUNT/MAX aggregates (low-cardinality
  group key, so scan + accumulation dominates);
* the *Figure 9 warm-cache harness* — Q2 at scale 30, swept over parent
  ids with every page already in the buffer pool, so execution cost is
  pure CPU.

Both engines run over the *same* loaded database (``db.execution`` is
switched between timing passes), so the data, plan shapes, and buffer
pool state are identical; only the executor differs.  Timings are
best-of-N wall clock.  The acceptance gates are >= 2x on the grouping
microbench and >= 1.5x on the Fig 9 harness (conventional layout);
chunk width 6 is measured and recorded as well, un-gated, because its
Q2 cost is dominated by per-lookup B-tree descents both engines share.

Results land in ``benchmarks/results/BENCH_vectorized.json`` so the
perf trajectory is recorded run over run.
"""

import json
import pathlib
import time

import pytest

from repro.experiments.chunkqueries import (
    ChunkQueryConfig,
    ChunkQueryExperiment,
    TENANT,
    q2_sql,
)

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_vectorized.json"
)

#: Paper-like child cardinality (Experiment 2 uses 100 children per
#: parent); per-row executor cost has to dominate fixed per-query cost
#: for the engines to be distinguishable.
CONFIG = ChunkQueryConfig(parents=40, children_per_parent=50)

#: Q2 scale factor for the warm harness (middle of the paper's sweep).
Q2_SCALE = 30
#: Parent ids swept per harness pass.
Q2_PARENTS = 30

WARMUP = 2
ROUNDS = 5

#: The grouping query used for the gate: GROUP BY the foreign key
#: (40 groups over 1000 rows) with COUNT plus MAX aggregates, so the
#: scan/accumulation loop is the measured cost rather than per-group
#: state churn.
GROUPING_SQL = (
    "SELECT c.parent, COUNT(*) AS n, MAX(c.col1) AS m1, MAX(c.col4) AS m4 "
    "FROM child c GROUP BY c.parent ORDER BY n DESC"
)


def best_of(fn, *, warmup: int = WARMUP, rounds: int = ROUNDS) -> float:
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_layout(layout: str, **options) -> dict:
    """Both workloads, both engines, one shared database."""
    exp = ChunkQueryExperiment(layout, CONFIG, **options)
    exp.load()
    db = exp.mtd.db
    grouping_sql = exp.mtd.transform_sql(TENANT, GROUPING_SQL)
    q2 = exp.mtd.transform_sql(TENANT, q2_sql(Q2_SCALE))

    def run_grouping() -> None:
        db.execute(grouping_sql)

    def run_fig9() -> None:
        for parent_id in range(1, Q2_PARENTS + 1):
            db.execute(q2, [parent_id])

    timings: dict[str, dict[str, float]] = {}
    for mode in ("tuple", "vectorized"):
        db.execution = mode
        timings[mode] = {
            "grouping_s": best_of(run_grouping),
            "fig9_s": best_of(run_fig9),
        }
    db.execution = "vectorized"
    return {
        "tuple": timings["tuple"],
        "vectorized": timings["vectorized"],
        "speedup_grouping": (
            timings["tuple"]["grouping_s"]
            / timings["vectorized"]["grouping_s"]
        ),
        "speedup_fig9": (
            timings["tuple"]["fig9_s"] / timings["vectorized"]["fig9_s"]
        ),
    }


@pytest.fixture(scope="module")
def measurements():
    results = {
        "config": {
            "parents": CONFIG.parents,
            "children_per_parent": CONFIG.children_per_parent,
            "q2_scale": Q2_SCALE,
            "q2_parents_swept": Q2_PARENTS,
            "rounds": ROUNDS,
        },
        "conventional": measure_layout("private"),
        "chunk6": measure_layout("chunk", width=6),
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return results


class TestVectorizedSpeedup:
    def test_report(self, benchmark, measurements, report):
        benchmark.pedantic(lambda: None, rounds=1)
        lines = [
            "Vectorized vs tuple executor, wall clock (best of "
            f"{ROUNDS}), {CONFIG.parents}x{CONFIG.children_per_parent}",
            f"{'layout':>14} {'workload':>10} {'tuple ms':>9} "
            f"{'vector ms':>9} {'speedup':>8}",
        ]
        for label in ("conventional", "chunk6"):
            m = measurements[label]
            for workload, key in (("grouping", "grouping_s"), ("fig9", "fig9_s")):
                lines.append(
                    f"{label:>14} {workload:>10} "
                    f"{m['tuple'][key] * 1000:>9.2f} "
                    f"{m['vectorized'][key] * 1000:>9.2f} "
                    f"{m['speedup_' + workload]:>7.2f}x"
                )
        report("BENCH_vectorized", "\n".join(lines))

    def test_grouping_gate(self, measurements):
        """The batch engine must be >= 2x on the grouping microbench."""
        assert measurements["conventional"]["speedup_grouping"] >= 2.0

    def test_fig9_gate(self, measurements):
        """... and >= 1.5x on the Figure 9 warm-cache harness."""
        assert measurements["conventional"]["speedup_fig9"] >= 1.5

    def test_json_artifact(self, measurements):
        recorded = json.loads(RESULTS_PATH.read_text())
        assert recorded["conventional"]["speedup_grouping"] > 0
        assert recorded["conventional"]["speedup_fig9"] > 0
        assert recorded["chunk6"]["speedup_grouping"] > 0
