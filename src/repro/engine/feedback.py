"""Cardinality feedback: observed selectivities folded into the planner.

The planner's access estimates (:meth:`Planner._estimate_access
<repro.engine.optimizer.Planner._estimate_access>`) are static guesses —
index prefix statistics when an index matches, a fixed ``0.5`` per bound
column otherwise.  Shared multi-tenant layouts are exactly where those
guesses go wrong: every physical table carries tenant/table/chunk
meta-data conjuncts whose real selectivity depends on the tenant
population, not on anything the catalog knows.

:class:`CardinalityFeedback` closes the loop TAQO-style.  After an
EXPLAIN ANALYZE run, :meth:`observe_plan` records per-access *actual*
rows-per-probe keyed by ``(table, bound equality columns)``; the planner
consults :meth:`estimate` with the same key before falling back to its
static model.  Observations are folded with an exponential moving
average so one outlier probe does not whipsaw the plan.

Plan-cache coupling: :attr:`version` advances only when an observation
*moves* a stored estimate by more than ``tolerance`` (or creates one) —
i.e. when re-planning could actually change a choice.  Cached plans
(:class:`~repro.engine.statement_cache.PreparedStatement`) remember the
feedback version they were planned under and lazily re-plan on
mismatch, so feedback invalidates exactly like a catalog change without
flushing the cache on every probe.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .plan import physical as phys


class CardinalityFeedback:
    """Observed rows-per-access keyed by ``(table, bound columns)``."""

    def __init__(
        self,
        metrics=None,
        *,
        smoothing: float = 0.5,
        tolerance: float = 1.2,
    ) -> None:
        self._estimates: dict[tuple, float] = {}
        self._metrics = metrics
        #: Weight of the newest observation in the moving average.
        self.smoothing = smoothing
        #: Relative change below which an observation does not bump
        #: :attr:`version` (the estimate moved, but not enough to expect
        #: a different plan).
        self.tolerance = tolerance
        #: Monotonic revision; plan caches revalidate against this.
        self.version = 0

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def key(table_name: str, bound_columns: Iterable[str]) -> tuple:
        return (
            table_name.lower(),
            tuple(sorted(c.lower() for c in bound_columns)),
        )

    # -- store --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._estimates)

    def estimate(
        self, table_name: str, bound_columns: Iterable[str]
    ) -> float | None:
        """The learned rows-per-access for this key, or ``None``."""
        return self._estimates.get(self.key(table_name, bound_columns))

    def observe(
        self, table_name: str, bound_columns: Iterable[str], actual_rows: float
    ) -> bool:
        """Fold one observed rows-per-access; returns True when the
        stored estimate changed enough to bump :attr:`version`."""
        key = self.key(table_name, bound_columns)
        if not key[1]:
            # An unrestricted access: the catalog's row count is already
            # exact, nothing to learn.
            return False
        actual = max(0.0, float(actual_rows))
        previous = self._estimates.get(key)
        if previous is None:
            value = actual
        else:
            value = previous + self.smoothing * (actual - previous)
        self._estimates[key] = value
        if self._metrics is not None:
            self._metrics.counter("db.feedback.observations").inc()
        if previous is None:
            changed = True
        else:
            lo, hi = sorted((max(previous, 1e-9), max(value, 1e-9)))
            changed = hi / lo > self.tolerance
        if changed:
            self.version += 1
            if self._metrics is not None:
                self._metrics.counter("db.feedback.revisions").inc()
        return changed

    def observe_plan(self, root: phys.PNode, collector) -> int:
        """Harvest every feedback-keyed access in an analyzed plan.

        ``collector`` is the :class:`AnalyzeCollector
        <repro.engine.observability.analyze.AnalyzeCollector>` the plan
        ran under.  Rows are normalized per *open* so an NLJOIN inner
        probed N times teaches its per-probe cardinality, matching what
        :meth:`Planner._estimate_access` estimates.  Returns the number
        of observations folded in.
        """
        observed = 0

        def visit(node: phys.PNode) -> None:
            nonlocal observed
            key = getattr(node, "feedback_key", None)
            if key is not None:
                stat = collector.stats_for(node)
                if stat is not None and stat.opens > 0:
                    self.observe(key[0], key[1], stat.rows / stat.opens)
                    observed += 1
            for child in node.children():
                visit(child)

        visit(root)
        return observed

    def snapshot(self) -> Mapping[tuple, float]:
        """A copy of the learned estimates (for reports / debugging)."""
        return dict(self._estimates)

    def clear(self) -> None:
        """Forget everything; bumps the version so cached plans re-plan
        back onto the static model."""
        if self._estimates:
            self._estimates.clear()
            self.version += 1
