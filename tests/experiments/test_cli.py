"""Tests for the `python -m repro.experiments` runner."""

import pytest

from repro.experiments.__main__ import COMMANDS, main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "100000" in out

    def test_fig8_tiny(self, capsys):
        assert main(["fig8", "--parents", "6", "--children", "2"]) == 0
        out = capsys.readouterr().out
        assert "RETURN" in out
        assert "IXSCAN" in out

    def test_grouping_tiny(self, capsys):
        assert (
            main(["grouping", "--parents", "6", "--children", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "conventional" in out
        assert "chunk3" in out

    def test_multiple_artifacts(self, capsys):
        assert main(["table1", "fig8", "--parents", "6", "--children", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "RETURN" in out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_all_commands_registered(self):
        assert set(COMMANDS) == {
            "table1",
            "table2",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "grouping",
        }
