"""Fused cross-tenant analytics (MTSQL ``FOR TENANTS`` dialect).

The differential contract: a fused cross-tenant statement must return
exactly what the per-tenant fan-out loop returns — same rows, same
aggregates — on every layout and under both execution engines.  The
fan-out oracle here is written independently of the fusion code (plain
per-tenant ``execute()`` calls plus Python merging), so the two paths
share no merge logic.
"""

import pytest

from repro import LogicalColumn, LogicalTable, MultiTenantDatabase
from repro.engine.errors import PlanError, UnknownObjectError
from repro.engine.values import INTEGER, varchar

from .conftest import ALL_LAYOUTS, build_running_example

SEVEN_LAYOUTS = ["basic"] + ALL_LAYOUTS
ENGINES = ["vectorized", "tuple"]

#: (tenant, rows) for the differential schema; tenant 4 stays empty.
_ROWS = {
    1: [(1, "a", 10), (2, "b", 20), (3, "a", None)],
    2: [(1, "b", 5)],
    3: [(1, "a", 7), (2, "c", 9)],
    4: [],
}


def build_plain(layout: str, execution: str) -> MultiTenantDatabase:
    """Four tenants over an extension-free schema every layout (basic
    included) can represent."""
    mtd = MultiTenantDatabase(layout=layout, execution=execution)
    mtd.define_table(
        LogicalTable(
            "item",
            (
                LogicalColumn("id", INTEGER, indexed=True, not_null=True),
                LogicalColumn("cat", varchar(10)),
                LogicalColumn("val", INTEGER),
            ),
        )
    )
    for tenant, rows in _ROWS.items():
        mtd.create_tenant(tenant)
        for item_id, cat, val in rows:
            mtd.insert(tenant, "item", {"id": item_id, "cat": cat, "val": val})
    return mtd


# -- fan-out oracles (independent of the fusion/merge code) -------------------


def fanout_concat(mtd, ids, per_tenant_sql, params=()):
    """Per-tenant rows, each prefixed with its tenant id, concatenated
    in tenant order."""
    out = []
    for tenant in ids:
        for row in mtd.execute(tenant, per_tenant_sql, params).rows:
            out.append((tenant, *row))
    return out


def fanout_grouped(mtd, ids, per_tenant_sql, params=()):
    """Python-side merge of per-tenant ``GROUP BY key`` results: rows
    are (key, count, sum) per tenant; the oracle re-aggregates."""
    merged: dict = {}
    for tenant in ids:
        for key, count, total in mtd.execute(
            tenant, per_tenant_sql, params
        ).rows:
            have = merged.get(key)
            if have is None:
                merged[key] = [count, total]
            else:
                have[0] += count
                if total is not None:
                    have[1] = total if have[1] is None else have[1] + total
    return [
        (key, count, total)
        for key, (count, total) in sorted(merged.items(), key=lambda kv: repr(kv[0]))
    ]


@pytest.mark.parametrize("execution", ENGINES)
@pytest.mark.parametrize("layout", SEVEN_LAYOUTS)
class TestDifferential:
    def test_ordered_scan_matches_fanout(self, layout, execution):
        mtd = build_plain(layout, execution)
        fused = mtd.execute_cross(
            "SELECT TENANT_ID() AS t, id, val FROM item "
            "ORDER BY t, id FOR ALL TENANTS"
        )
        assert fused.columns == ["t", "id", "val"]
        assert fused.rows == fanout_concat(
            mtd, (1, 2, 3, 4), "SELECT id, val FROM item ORDER BY id"
        )

    def test_subset_with_parameter_matches_fanout(self, layout, execution):
        mtd = build_plain(layout, execution)
        fused = mtd.execute_cross(
            "SELECT TENANT_ID() AS t, id FROM item WHERE val >= ? "
            "ORDER BY t, id FOR TENANTS IN (1, 3)",
            (7,),
        )
        assert fused.rows == fanout_concat(
            mtd, (1, 3), "SELECT id FROM item WHERE val >= ? ORDER BY id", (7,)
        )

    def test_grouped_by_tenant_rollup_matches_fanout(self, layout, execution):
        mtd = build_plain(layout, execution)
        fused = mtd.execute_cross(
            "SELECT TENANT_ID(), COUNT(*), SUM(val), MIN(val), MAX(val), "
            "AVG(val) FROM item GROUP BY TENANT_ID() ORDER BY TENANT_ID() "
            "FOR ALL TENANTS"
        )
        expected = []
        for tenant in (1, 2, 3, 4):
            row = mtd.execute(
                tenant,
                "SELECT COUNT(*), SUM(val), MIN(val), MAX(val), AVG(val) "
                "FROM item",
            ).rows[0]
            if row[0] == 0:
                continue  # GROUP BY produces no group for an empty tenant
            expected.append((tenant, *row))
        assert fused.rows == expected

    def test_global_rollup_matches_fanout(self, layout, execution):
        mtd = build_plain(layout, execution)
        fused = mtd.execute_cross(
            "SELECT cat, COUNT(*), SUM(val) FROM item GROUP BY cat "
            "ORDER BY cat FOR ALL TENANTS"
        )
        assert fused.rows == fanout_grouped(
            mtd,
            (1, 2, 3, 4),
            "SELECT cat, COUNT(*), SUM(val) FROM item GROUP BY cat",
        )

    def test_having_matches_fanout(self, layout, execution):
        mtd = build_plain(layout, execution)
        fused = mtd.execute_cross(
            "SELECT cat, COUNT(*), SUM(val) FROM item GROUP BY cat "
            "HAVING COUNT(*) >= 2 ORDER BY cat FOR ALL TENANTS"
        )
        merged = fanout_grouped(
            mtd,
            (1, 2, 3, 4),
            "SELECT cat, COUNT(*), SUM(val) FROM item GROUP BY cat",
        )
        assert fused.rows == [row for row in merged if row[1] >= 2]

    def test_limit_applies_after_global_order(self, layout, execution):
        mtd = build_plain(layout, execution)
        fused = mtd.execute_cross(
            "SELECT TENANT_ID() AS t, id FROM item ORDER BY t, id LIMIT 3 "
            "FOR ALL TENANTS"
        )
        full = fanout_concat(mtd, (1, 2, 3, 4), "SELECT id FROM item ORDER BY id")
        assert fused.rows == full[:3]


class TestDialect:
    def test_tenant_clause_round_trips(self):
        from repro.engine.sql.parser import parse_statement

        stmt = parse_statement(
            "SELECT name FROM account FOR TENANTS IN (17, 42)"
        )
        assert stmt.tenants is not None
        assert stmt.tenants.ids == (17, 42)
        assert not stmt.tenants.all_tenants
        assert "FOR TENANTS IN (17, 42)" in stmt.sql()
        stmt = parse_statement("SELECT name FROM account FOR ALL TENANTS")
        assert stmt.tenants.all_tenants
        assert stmt.sql().endswith("FOR ALL TENANTS")

    def test_tenant_id_function_parses_in_select_and_group_by(self):
        from repro.engine.sql import ast
        from repro.engine.sql.parser import parse_statement

        stmt = parse_statement(
            "SELECT TENANT_ID(), COUNT(*) FROM account "
            "GROUP BY TENANT_ID() FOR ALL TENANTS"
        )
        call = stmt.items[0].expr
        assert isinstance(call, ast.FuncCall) and call.name == "TENANT_ID"

    def test_per_tenant_execute_rejects_tenants_clause(self):
        mtd = build_running_example("extension")
        with pytest.raises(PlanError, match="execute_cross"):
            mtd.execute(17, "SELECT name FROM account FOR ALL TENANTS")

    def test_execute_cross_rejects_plain_select(self):
        mtd = build_running_example("extension")
        with pytest.raises(PlanError, match="FOR TENANTS"):
            mtd.execute_cross("SELECT name FROM account")

    def test_unknown_tenant_in_set_rejected(self):
        mtd = build_running_example("extension")
        with pytest.raises(UnknownObjectError):
            mtd.execute_cross("SELECT name FROM account FOR TENANTS IN (99)")

    def test_empty_database_for_all_tenants(self):
        mtd = MultiTenantDatabase(layout="extension")
        mtd.define_table(
            LogicalTable("t", (LogicalColumn("a", INTEGER),))
        )
        result = mtd.execute_cross("SELECT a FROM t FOR ALL TENANTS")
        assert result.rows == []


class TestPruning:
    def test_private_tables_outside_set_are_not_read(self):
        mtd = build_running_example("private")
        statements = mtd.transform_cross_sql(
            "SELECT name FROM account FOR TENANTS IN (17, 42)"
        )
        joined = " ".join(statements)
        assert "t17_" in joined or "17" in joined
        # Tenant 35's private table never appears in the fused plans.
        assert "t35" not in joined

    def test_shared_layout_fuses_to_one_statement(self):
        mtd = build_running_example("universal")
        statements = mtd.transform_cross_sql(
            "SELECT name FROM account FOR TENANTS IN (17, 35, 42)"
        )
        assert len(statements) == 1
        assert "tenant IN (17, 35, 42)" in statements[0]


class TestCacheInvalidation:
    SQL = (
        "SELECT TENANT_ID(), COUNT(*) FROM account "
        "GROUP BY TENANT_ID() ORDER BY TENANT_ID() FOR ALL TENANTS"
    )

    def _entry(self, mtd, ids):
        return mtd._statements.lookup(
            ("xt", self.SQL, ids), mtd._statement_context()
        )

    def test_repeat_execution_hits_the_cache(self):
        mtd = build_running_example("extension")
        first = mtd.execute_cross(self.SQL)
        entry = self._entry(mtd, (17, 35, 42))
        assert entry is not None
        assert mtd.execute_cross(self.SQL).rows == first.rows
        assert self._entry(mtd, (17, 35, 42)) is entry  # same object reused

    @pytest.mark.parametrize("layout", ALL_LAYOUTS)
    def test_grant_invalidates_cross_statements(self, layout):
        mtd = build_running_example(layout)
        before = mtd.execute_cross(self.SQL)
        entry = self._entry(mtd, (17, 35, 42))
        mtd.grant_extension(35, "healthcare")
        assert self._entry(mtd, (17, 35, 42)) is None or entry is None
        assert mtd.execute_cross(self.SQL).rows == before.rows

    @pytest.mark.parametrize("layout", ALL_LAYOUTS)
    def test_migrate_invalidates_and_refuses_stale_fusion(self, layout):
        mtd = build_running_example(layout)
        before = mtd.execute_cross(self.SQL)
        mtd.migrate_tenant(17, "universal" if layout != "universal" else "private")
        # The rebuilt statement fuses against the new layout mix and
        # still returns the same logical answer.
        assert mtd.execute_cross(self.SQL).rows == before.rows

    def test_drop_tenant_shrinks_for_all_tenants(self):
        mtd = build_running_example("extension")
        assert [r[0] for r in mtd.execute_cross(self.SQL).rows] == [17, 35, 42]
        mtd.drop_tenant(35)
        assert [r[0] for r in mtd.execute_cross(self.SQL).rows] == [17, 42]
        with pytest.raises(UnknownObjectError):
            mtd.execute_cross(
                "SELECT name FROM account FOR TENANTS IN (35)"
            )

    def test_create_tenant_grows_for_all_tenants(self):
        mtd = build_running_example("extension")
        assert [r[0] for r in mtd.execute_cross(self.SQL).rows] == [17, 35, 42]
        mtd.create_tenant(77)
        mtd.insert(77, "account", {"aid": 1, "name": "New", "opened": None})
        assert [r[0] for r in mtd.execute_cross(self.SQL).rows] == [
            17,
            35,
            42,
            77,
        ]


class TestExportOrdering:
    """`export_rows` feeds rebalance snapshots and differential oracles:
    its order must be a function of the data, not of layout internals."""

    def _scrambled(self, layout):
        mtd = MultiTenantDatabase(layout=layout)
        mtd.define_table(
            LogicalTable(
                "item",
                (
                    LogicalColumn("id", INTEGER, indexed=True, not_null=True),
                    LogicalColumn("label", varchar(10)),
                ),
            )
        )
        mtd.create_tenant(1)
        for item_id in (5, 1, 9, 3, 7):
            mtd.insert(1, "item", {"id": item_id, "label": f"v{item_id}"})
        return mtd

    @pytest.mark.parametrize("layout", SEVEN_LAYOUTS)
    def test_export_is_sorted_by_row_key(self, layout):
        mtd = self._scrambled(layout)
        exported = mtd.export_rows(1, "item")
        keys = [row_id for row_id, _ in exported if row_id is not None]
        assert keys == sorted(keys)
        if not keys:
            # Layouts without a row column (basic) order by content.
            ids = [values["id"] for _, values in exported]
            assert ids == sorted(ids)

    def test_export_identical_across_layouts(self):
        # Layouts agree wherever they share a keying scheme: row-keyed
        # layouts agree on the (row id, values) sequence, keyless ones
        # on the content-ordered values sequence — so any two replicas
        # of a tenant diff cleanly when they use the same layout family.
        by_scheme: dict = {}
        for layout in SEVEN_LAYOUTS:
            exported = self._scrambled(layout).export_rows(1, "item")
            keyed = any(row_id is not None for row_id, _ in exported)
            reference = by_scheme.setdefault(keyed, exported)
            assert exported == reference, layout

    def test_export_stable_across_migration(self):
        mtd = self._scrambled("chunk_folding")
        before = mtd.export_rows(1, "item")
        mtd.migrate_tenant(1, "universal")
        assert mtd.export_rows(1, "item") == before
