"""Unit tests for logical query blocks: conjunct splitting,
qualification, star expansion, and Fegaras–Maier flattening."""

import pytest

from repro.engine.errors import PlanError, UnknownObjectError
from repro.engine.plan.logical import (
    block_to_select,
    build_block,
    can_flatten,
    conjoin,
    flatten_block,
    output_name,
    qualify_block,
    split_conjuncts,
)
from repro.engine.sql import ast
from repro.engine.sql.parser import parse_statement

TABLES = {
    "p": ["id", "a", "b"],
    "c": ["id", "parent", "v"],
}


def lookup(name: str):
    return TABLES[name.lower()]


def block_of(sql: str):
    return build_block(parse_statement(sql))


def qualified(sql: str):
    return qualify_block(block_of(sql), lookup)


class TestConjuncts:
    def test_split_flattens_nested_ands(self):
        stmt = parse_statement(
            "SELECT a FROM p WHERE a = 1 AND (b = 2 AND id = 3)"
        )
        assert len(split_conjuncts(stmt.where)) == 3

    def test_split_preserves_textual_order(self):
        stmt = parse_statement("SELECT a FROM p WHERE a = 1 AND b = 2")
        conjuncts = split_conjuncts(stmt.where)
        assert conjuncts[0].left.column == "a"
        assert conjuncts[1].left.column == "b"

    def test_or_is_not_split(self):
        stmt = parse_statement("SELECT a FROM p WHERE a = 1 OR b = 2")
        assert len(split_conjuncts(stmt.where)) == 1

    def test_conjoin_inverts_split(self):
        stmt = parse_statement("SELECT a FROM p WHERE a = 1 AND b = 2 AND id = 3")
        rebuilt = conjoin(split_conjuncts(stmt.where))
        assert split_conjuncts(rebuilt) == split_conjuncts(stmt.where)

    def test_none_roundtrip(self):
        assert split_conjuncts(None) == []
        assert conjoin([]) is None


class TestQualification:
    def test_unqualified_refs_get_bindings(self):
        block = qualified("SELECT a FROM p WHERE b = 1")
        assert block.items[0].expr == ast.ColumnRef("p", "a")
        assert block.conjuncts[0].left == ast.ColumnRef("p", "b")

    def test_ambiguous_ref_rejected(self):
        with pytest.raises(PlanError):
            qualified("SELECT id FROM p, c")

    def test_unknown_column_rejected(self):
        with pytest.raises(UnknownObjectError):
            qualified("SELECT nope FROM p")

    def test_unknown_binding_rejected(self):
        with pytest.raises(UnknownObjectError):
            qualified("SELECT z.a FROM p")

    def test_star_expands_all_sources(self):
        block = qualified("SELECT * FROM p, c")
        names = [output_name(i, n) for n, i in enumerate(block.items)]
        assert names == ["id", "a", "b", "id", "parent", "v"]

    def test_qualified_star(self):
        block = qualified("SELECT c.* FROM p, c")
        assert len(block.items) == 3
        assert all(i.expr.table == "c" for i in block.items)

    def test_alias_binding_used(self):
        block = qualified("SELECT x.a FROM p AS x")
        assert block.items[0].expr == ast.ColumnRef("x", "a")

    def test_duplicate_bindings_rejected(self):
        with pytest.raises(PlanError):
            qualified("SELECT 1 FROM p, p")

    def test_order_by_alias_left_alone(self):
        block = qualified("SELECT a AS total FROM p ORDER BY total")
        assert block.order_by[0].expr == ast.ColumnRef(None, "total")

    def test_nested_subquery_qualified_recursively(self):
        block = qualified(
            "SELECT d.x FROM (SELECT a AS x FROM p) AS d WHERE d.x > 1"
        )
        inner = block.sources[0].select
        assert inner.items[0].expr == ast.ColumnRef("p", "a")


class TestFlattening:
    def test_can_flatten_spj(self):
        stmt = parse_statement("SELECT p.a AS x FROM p WHERE p.b = 1")
        assert can_flatten(stmt)

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT COUNT(*) AS n FROM p",
            "SELECT p.a AS x FROM p GROUP BY p.a",
            "SELECT p.a AS x FROM p LIMIT 3",
            "SELECT DISTINCT p.a AS x FROM p",
        ],
    )
    def test_cannot_flatten_aggregating_blocks(self, sql):
        assert not can_flatten(parse_statement(sql))

    def test_flatten_merges_sources_and_conjuncts(self):
        block = qualified(
            "SELECT d.x FROM (SELECT p.a AS x FROM p WHERE p.b = 1) AS d "
            "WHERE d.x > 2"
        )
        flat = flatten_block(block)
        assert len(flat.sources) == 1
        assert isinstance(flat.sources[0], ast.TableSource)
        assert len(flat.conjuncts) == 2

    def test_flatten_substitutes_output_exprs(self):
        block = qualified(
            "SELECT d.x FROM (SELECT p.a AS x FROM p) AS d WHERE d.x = 5"
        )
        flat = flatten_block(block)
        assert flat.conjuncts[0].left == ast.ColumnRef("p", "a")

    def test_flatten_preserves_output_names(self):
        block = qualified("SELECT d.x FROM (SELECT p.a AS x FROM p) AS d")
        flat = flatten_block(block)
        assert [output_name(i, n) for n, i in enumerate(flat.items)] == ["x"]

    def test_flatten_renames_colliding_bindings(self):
        block = qualified(
            "SELECT a.x, b.x FROM (SELECT p.a AS x FROM p) AS a, "
            "(SELECT p.b AS x FROM p) AS b"
        )
        flat = flatten_block(block)
        bindings = [s.binding for s in flat.sources]
        assert len(set(bindings)) == 2  # the second p was renamed

    def test_flatten_is_recursive(self):
        block = qualified(
            "SELECT o.y FROM (SELECT d.x AS y FROM "
            "(SELECT p.a AS x FROM p WHERE p.b = 1) AS d WHERE d.x > 0) AS o"
        )
        flat = flatten_block(block)
        assert all(isinstance(s, ast.TableSource) for s in flat.sources)
        assert len(flat.conjuncts) == 2

    def test_aggregating_subquery_left_nested(self):
        block = qualified(
            "SELECT d.n FROM (SELECT COUNT(*) AS n FROM p) AS d"
        )
        flat = flatten_block(block)
        assert isinstance(flat.sources[0], ast.SubquerySource)

    def test_block_to_select_roundtrip(self):
        block = qualified("SELECT a FROM p WHERE b = 1 ORDER BY a LIMIT 2")
        select = block_to_select(block)
        assert build_block(select).limit == 2
        assert len(build_block(select).conjuncts) == 1
