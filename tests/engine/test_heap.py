"""Tests for heap files and the two insert strategies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.errors import ExecutionError
from repro.engine.heap import HeapFile, InsertStrategy
from repro.engine.pager import BufferPool


def make_heap(strategy=InsertStrategy.FIRST_FIT, capacity=64):
    pool = BufferPool(capacity_pages=capacity)
    return HeapFile(pool, segment_id=1, strategy=strategy), pool


class TestInsertFetch:
    def test_roundtrip(self):
        heap, _ = make_heap()
        rid = heap.insert(("a", 1), width=10)
        assert heap.fetch(rid) == ("a", 1)

    def test_row_count(self):
        heap, _ = make_heap()
        for i in range(5):
            heap.insert((i,), width=10)
        assert heap.row_count == 5

    def test_wide_rows_spill_to_new_pages(self):
        heap, _ = make_heap()
        for i in range(5):
            heap.insert((i,), width=4000)
        assert heap.page_count >= 3

    def test_scan_returns_all_rows(self):
        heap, _ = make_heap()
        rows = [(i, f"r{i}") for i in range(20)]
        for row in rows:
            heap.insert(row, width=20)
        assert sorted(r for _, r in heap.scan()) == sorted(rows)


class TestDelete:
    def test_delete_removes_row(self):
        heap, _ = make_heap()
        rid = heap.insert((1,), width=10)
        heap.delete(rid)
        assert heap.row_count == 0
        assert list(heap.scan()) == []

    def test_double_delete_raises(self):
        heap, _ = make_heap()
        rid = heap.insert((1,), width=10)
        heap.delete(rid)
        with pytest.raises(ExecutionError):
            heap.delete(rid)

    def test_fetch_deleted_raises(self):
        heap, _ = make_heap()
        rid = heap.insert((1,), width=10)
        heap.delete(rid)
        with pytest.raises(ExecutionError):
            heap.fetch(rid)

    def test_slot_reuse_after_delete(self):
        heap, _ = make_heap()
        rid = heap.insert((1,), width=10)
        heap.delete(rid)
        rid2 = heap.insert((2,), width=10)
        assert rid2 == rid  # tombstone reused


class TestUpdate:
    def test_in_place_update(self):
        heap, _ = make_heap()
        rid = heap.insert((1, "a"), width=10)
        new_rid = heap.update(rid, (1, "b"), width=10)
        assert new_rid == rid
        assert heap.fetch(rid) == (1, "b")

    def test_growing_update_relocates(self):
        heap, _ = make_heap()
        rid = heap.insert((1,), width=8000)
        heap.insert((2,), width=50)
        new_rid = heap.update(rid, (1,), width=8050)
        assert heap.fetch(new_rid) == (1,)

    def test_update_deleted_raises(self):
        heap, _ = make_heap()
        rid = heap.insert((1,), width=10)
        heap.delete(rid)
        with pytest.raises(ExecutionError):
            heap.update(rid, (2,), width=10)


class TestStrategies:
    def test_first_fit_reuses_holes(self):
        """FIRST_FIT backfills space left by deletes (compact relation)."""
        heap, _ = make_heap(InsertStrategy.FIRST_FIT)
        rids = [heap.insert((i,), width=2000) for i in range(8)]
        pages_before = heap.page_count
        for rid in rids[::2]:
            heap.delete(rid)
        for i in range(4):
            heap.insert((100 + i,), width=2000)
        assert heap.page_count == pages_before

    def test_append_grows_instead(self):
        """APPEND only looks at the last page (sparse relation)."""
        heap, _ = make_heap(InsertStrategy.APPEND)
        rids = [heap.insert((i,), width=2000) for i in range(8)]
        pages_before = heap.page_count
        for rid in rids[:4]:
            heap.delete(rid)  # free space in early pages
        for i in range(4):
            heap.insert((100 + i,), width=2000)
        assert heap.page_count > pages_before

    def test_append_touches_fewer_pages_when_fragmented(self):
        """With holes spread over many pages, FIRST_FIT's best-fit hunt
        inspects candidates while APPEND touches only the tail page."""

        def fragmented(strategy):
            heap, pool = make_heap(strategy)
            rids = [heap.insert((i,), width=1500) for i in range(40)]
            for rid in rids[::2]:
                heap.delete(rid)
            before = pool.stats.snapshot()
            for i in range(20):
                heap.insert((100 + i,), width=700)
            return pool.stats.delta(before).logical_data

        assert fragmented(InsertStrategy.APPEND) < fragmented(
            InsertStrategy.FIRST_FIT
        )


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "update"]),
                st.integers(0, 30),
                st.integers(10, 3000),
            ),
            max_size=60,
        )
    )
    def test_heap_matches_dict_model(self, ops):
        """The heap behaves like a dict keyed by RID."""
        heap, _ = make_heap()
        model: dict = {}
        counter = 0
        for op, pick, width in ops:
            if op == "insert" or not model:
                rid = heap.insert((counter,), width)
                model[rid] = (counter,)
                counter += 1
            else:
                rid = sorted(model, key=lambda r: (r.page_id, r.slot))[
                    pick % len(model)
                ]
                if op == "delete":
                    heap.delete(rid)
                    del model[rid]
                else:
                    new_rid = heap.update(rid, (counter,), width)
                    del model[rid]
                    model[new_rid] = (counter,)
                    counter += 1
        assert heap.row_count == len(model)
        assert dict(heap.scan()) == model
