"""Data safety for tenants: the Trashcan and request-scoped transactions.

Section 6.3 transforms deletes "into updates that mark the tuples as
invisible instead of physically deleting them, in order to provide
mechanisms like a Trashcan"; Section 4.2 bounds transactions to a
single user request.  This example shows both: a tenant fat-fingers a
bulk delete and gets the rows back from the Trashcan, and a request
whose second statement fails rolls back atomically at the engine level.

Run:  python examples/trashcan_and_transactions.py
"""

from repro import LogicalColumn, LogicalTable, MultiTenantDatabase
from repro.engine import Database
from repro.engine.errors import EngineError
from repro.engine.values import DOUBLE, INTEGER, varchar


def main() -> None:
    # -- the Trashcan (soft delete + restore) ------------------------------
    mtd = MultiTenantDatabase(layout="chunk_folding", soft_delete=True)
    mtd.define_table(
        LogicalTable(
            "invoice",
            (
                LogicalColumn("id", INTEGER, indexed=True, not_null=True),
                LogicalColumn("customer", varchar(40)),
                LogicalColumn("total", DOUBLE),
            ),
        )
    )
    mtd.create_tenant(7)
    row_ids = []
    for i in range(1, 6):
        row_ids.append(
            mtd.insert(
                7,
                "invoice",
                {"id": i, "customer": f"cust-{i}", "total": 100.0 * i},
            )
        )
    print("Invoices:", mtd.execute(7, "SELECT COUNT(*) FROM invoice").rows[0][0])

    count = mtd.execute(7, "DELETE FROM invoice WHERE total > 150").rowcount
    print(f"Oops — deleted {count} invoices with a too-broad predicate:")
    print("  remaining:", mtd.execute(7, "SELECT id FROM invoice").rows)

    # The rows were only marked invisible; Row ids 2..5 restore them.
    mtd.restore(7, "invoice", row_ids[1:])
    print("Restored from the Trashcan:",
          sorted(mtd.execute(7, "SELECT id FROM invoice").rows))
    print()

    # -- request-scoped transactions at the engine level -----------------------
    db = Database()
    db.execute("CREATE TABLE balance (acct INTEGER NOT NULL, amount INTEGER)")
    db.execute("CREATE UNIQUE INDEX balance_pk ON balance (acct)")
    db.execute("INSERT INTO balance VALUES (1, 500), (2, 100)")

    def transfer(src: int, dst: int, amount: int) -> bool:
        """One user request = one transaction (Section 4.2)."""
        db.execute("BEGIN")
        try:
            db.execute(
                "UPDATE balance SET amount = amount - ? WHERE acct = ?",
                [amount, src],
            )
            remaining = db.execute(
                "SELECT amount FROM balance WHERE acct = ?", [src]
            ).scalar()
            if remaining < 0:
                raise EngineError("insufficient funds")
            db.execute(
                "UPDATE balance SET amount = amount + ? WHERE acct = ?",
                [amount, dst],
            )
            db.execute("COMMIT")
            return True
        except EngineError as exc:
            db.execute("ROLLBACK")
            print(f"  transfer rolled back: {exc}")
            return False

    print("Transfer 200 from acct 1 to acct 2:", transfer(1, 2, 200))
    print("Transfer 9999 from acct 1 to acct 2:", transfer(1, 2, 9999))
    print("Balances:", db.execute("SELECT * FROM balance ORDER BY acct").rows)
    print(
        f"(committed={db.transactions.committed}, "
        f"rolled_back={db.transactions.rolled_back})"
    )


if __name__ == "__main__":
    main()
