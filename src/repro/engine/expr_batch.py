"""Batch-level compilation of row expressions.

The tuple-at-a-time executor pays one Python call *per row per
expression* plus a generator/``tuple()``/``all()`` allocation per row
per operator.  This module turns lists of per-row :data:`Compiled
<repro.engine.expr.Compiled>` closures into **one closure per batch**:
the comprehension body is generated as source text and compiled with
``eval``, so the per-row loop runs inside a single C-level list
comprehension instead of N interpreter dispatches.

Fast paths: closures that :class:`~repro.engine.expr.ExprCompiler`
tagged as plain slot reads (``fn.slot``) vectorize into a single
``operator.itemgetter`` call over the whole batch — no per-row Python
frame at all.

Compiled batch programs are pure functions of the plan node's
expressions, so they are built once per plan node and cached on the
node itself (:func:`node_program`); cached plans keep their programs
across executions.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Sequence

from .values import sort_key

#: A compiled batch transform: (rows, params) -> rows.
BatchFn = Callable[[list, Sequence[object]], list]

_MISSING = object()


def _codegen(source: str, namespace: dict):
    """Compile generated comprehension source into a callable."""
    return eval(compile(source, "<expr_batch>", "eval"), namespace)


def node_program(node, key: str, builder):
    """The compiled batch program ``key`` for a plan node, built once.

    Programs depend only on the node's compiled expressions, so they
    stay valid for the node's whole lifetime (plan caches included) and
    are shared by every executor running the plan.
    """
    cache = node.__dict__.get("_batch_programs")
    if cache is None:
        cache = node.__dict__["_batch_programs"] = {}
    program = cache.get(key)
    if program is None:
        program = cache[key] = builder()
    return program


# -- predicates ---------------------------------------------------------------


def compile_filter(predicates: Sequence) -> BatchFn | None:
    """``[r for r in rows if p0(r) is True and p1(r) is True ...]``.

    Returns ``None`` for an empty conjunction (the caller passes the
    batch through untouched instead of copying it).
    """
    if not predicates:
        return None
    namespace: dict = {}
    conditions = []
    for i, predicate in enumerate(predicates):
        namespace[f"p{i}"] = predicate
        conditions.append(f"p{i}(r, params) is True")
    source = (
        f"lambda rows, params: [r for r in rows if {' and '.join(conditions)}]"
    )
    return _codegen(source, namespace)


# -- projections / key extraction ---------------------------------------------


def compile_tuples(exprs: Sequence) -> BatchFn:
    """One output tuple per input row: projections, join keys, group
    keys.  All-slot expression lists become a single ``itemgetter``."""
    if not exprs:
        empty = ()
        return lambda rows, params: [empty] * len(rows)
    slots = [getattr(e, "slot", None) for e in exprs]
    if all(s is not None for s in slots):
        if len(slots) == 1:
            getter = itemgetter(slots[0])
            return lambda rows, params: [(v,) for v in map(getter, rows)]
        getter = itemgetter(*slots)
        return lambda rows, params: list(map(getter, rows))
    namespace: dict = {}
    parts = []
    for i, expr in enumerate(exprs):
        namespace[f"e{i}"] = expr
        parts.append(f"e{i}(r, params)")
    body = ", ".join(parts) + ("," if len(parts) == 1 else "")
    source = f"lambda rows, params: [({body}) for r in rows]"
    return _codegen(source, namespace)


def compile_values(expr) -> BatchFn:
    """One output *value* per input row (aggregate arguments)."""
    slot = getattr(expr, "slot", None)
    if slot is not None:
        getter = itemgetter(slot)
        return lambda rows, params: list(map(getter, rows))
    const = getattr(expr, "const", _MISSING)
    if const is not _MISSING:
        return lambda rows, params: [const] * len(rows)
    return _codegen(
        "lambda rows, params: [e0(r, params) for r in rows]", {"e0": expr}
    )


# -- sorting ------------------------------------------------------------------


class _Desc:
    """Inverts comparisons for one descending component of a composite
    sort key (only needed when ascending and descending keys mix)."""

    __slots__ = ("key",)

    def __init__(self, key) -> None:
        self.key = key

    def __lt__(self, other) -> bool:
        return other.key < self.key

    def __eq__(self, other) -> bool:
        return other.key == self.key


def compile_sort_keys(keys: Sequence[tuple]) -> tuple[BatchFn, bool]:
    """``(program, reverse)`` for an ORDER BY key list.

    The program maps a batch to one composite decorated key per row
    (``sort_key`` applied to every component, computed exactly once per
    row).  Uniform directions sort with ``reverse``; mixed directions
    wrap the descending components in :class:`_Desc`.
    """
    descending = [d for _, d in keys]
    uniform = all(descending) or not any(descending)
    namespace: dict = {"sort_key": sort_key, "_Desc": _Desc}
    parts = []
    for i, (expr, desc) in enumerate(keys):
        namespace[f"e{i}"] = expr
        part = f"sort_key(e{i}(r, params))"
        if not uniform and desc:
            part = f"_Desc({part})"
        parts.append(part)
    if len(parts) == 1:
        body = parts[0]  # single key: no tuple wrapper needed
    else:
        body = "(" + ", ".join(parts) + ")"
    source = f"lambda rows, params: [{body} for r in rows]"
    return _codegen(source, namespace), (uniform and descending[0])


def sort_rows(node, rows: list, params: Sequence[object]) -> list:
    """Sort a PSort node's input: decorate once (one composite key per
    row), sort once on precomputed keys, undecorate.

    Replaces the historical one-``list.sort``-per-key loop whose key
    lambda re-evaluated the expression and ``sort_key`` for every row in
    every pass.  Stability is preserved (ties keep input order), so both
    executors produce identical orders.
    """
    if not node.keys or len(rows) < 2:
        return rows
    program, reverse = node_program(
        node, "sort", lambda: compile_sort_keys(node.keys)
    )
    decorated = program(rows, params)
    order = sorted(
        range(len(rows)), key=decorated.__getitem__, reverse=reverse
    )
    return [rows[i] for i in order]
