"""Figure 9 (Test 3) — response times with warm cache.

Q2 over chunk widths {3, 6, 15, 30, 90} and the conventional layout,
same parameter every run so the data stays in memory: the overhead over
conventional tables "is entirely due to computing the aligning joins".

Shape claims: narrow chunks are slowest; width 15 roughly halves the
width-3 time at high scale (paper: "already for 15-column wide chunks,
the response time is cut in half in comparison to 3-column wide
chunks"); wide chunks approach the conventional layout.
"""

import pytest

from conftest import BENCH_SCALES, chunk_labels
from repro.experiments.report import render_series


@pytest.fixture(scope="module")
def measurements(pool):
    out = {}
    for label in ["conventional"] + chunk_labels():
        out[label] = {
            scale: pool.measure(label, scale) for scale in BENCH_SCALES
        }
    return out


class TestFigure9:
    def test_report(self, benchmark, measurements, report):
        series = {
            label: [(scale, m.warm_ms) for scale, m in points.items()]
            for label, points in measurements.items()
        }
        benchmark.pedantic(lambda: None, rounds=1)
        report(
            "fig9_warm_cache",
            render_series(
                "Figure 9: Response Times with Warm Cache (simulated ms)",
                "q2_scale",
                series,
            ),
        )

    def test_narrow_chunks_slowest(self, measurements):
        at_90 = {label: m[90].warm_ms for label, m in measurements.items()}
        assert at_90["chunk3"] == max(at_90.values())

    def test_conventional_fastest(self, measurements):
        at_90 = {label: m[90].warm_ms for label, m in measurements.items()}
        assert at_90["conventional"] == min(at_90.values())

    def test_width15_halves_width3(self, measurements):
        ratio = (
            measurements["chunk15"][90].warm_ms
            / measurements["chunk3"][90].warm_ms
        )
        assert ratio < 0.6  # paper: "cut in half"

    def test_wide_chunks_competitive_with_conventional(self, measurements):
        """'Chunk Tables get wider ... becomes competitive with
        conventional tables well before the width of the Universal Table
        is reached.'"""
        ratio = (
            measurements["chunk90"][90].warm_ms
            / measurements["conventional"][90].warm_ms
        )
        assert ratio < 3.0

    def test_times_grow_with_scale_for_narrow_chunks(self, measurements):
        times = [measurements["chunk3"][s].warm_ms for s in BENCH_SCALES]
        assert times == sorted(times)

    def test_warm_cache_means_no_physical_reads(self, measurements):
        for _label, points in measurements.items():
            for m in points.values():
                assert m.physical_reads == 0

    def test_benchmark_q2_wallclock_narrow_vs_wide(self, benchmark, pool):
        exp = pool.experiment("chunk15")
        from repro.experiments.chunkqueries import TENANT, q2_sql

        sql = exp.mtd.transform_sql(TENANT, q2_sql(30))
        exp.mtd.db.execute(sql, [1])

        def run():
            return exp.mtd.db.execute(sql, [1])

        result = benchmark(run)
        assert result.rows
