"""Column-major storage for shared tables.

A :class:`ColumnStore` is a drop-in sibling of
:class:`~repro.engine.heap.HeapFile`: same public surface (``insert`` /
``fetch`` / ``scan`` / ``scan_batches`` / ``update`` / ``delete`` /
``restore`` / ``drop``), same page placement policy, same free-space
accounting, and the same per-structure counters — so indexes, DML,
checkpoint snapshots, and logical WAL replay all work unchanged.  The
difference is the page payload: instead of one ``(row, width)`` entry
per slot, a column page holds one native value list *per column* plus a
per-column null bitmap, and the batch scan hands those columns to the
vectorized executor directly (:class:`ColumnBatch`) so predicates run
against columns before any row tuple is assembled.

Why this matters for the paper: the chunk/pivot/universal layouts store
*all* tenants in a handful of wide shared tables, and reconstruction
queries scan them with highly selective meta predicates (``tenant`` /
``tbl`` / ``chunk``).  Row-major pages force the scan to materialize
every row before the predicate rejects ~(C-1)/C of them; column pages
evaluate the predicate on two or three meta columns and only assemble
the survivors.  That is the storage-side half of closing the paper's
chunk-table grouping gap (Section 5's "Additional Tests").

Placement parity is deliberate: byte widths, ``ROW_OVERHEAD``, the
FIRST_FIT tightest-fit search (including its runner-up page read), and
tombstone slot reuse are identical to the heap, so a table stores the
same rows on the same number of pages with the same free map whichever
format it uses — the differential suites assert logical-read parity on
top of this.
"""

from __future__ import annotations

from typing import Iterator

from .errors import ExecutionError
from .heap import ROW_OVERHEAD, HeapFile, RowId
from .pager import PageKind


class ColumnPage:
    """Payload of one column-major data page.

    ``columns[c][s]`` is the value of column ``c`` in slot ``s`` (``None``
    both for SQL NULL and for tombstoned slots — ``widths`` disambiguates).
    ``nulls[c]`` is the column's null bitmap: bit ``s`` is set iff the live
    value in slot ``s`` is NULL.  ``widths[s]`` is the stored byte width of
    the row in slot ``s``, or ``None`` for a tombstone; ``live`` counts the
    non-tombstone slots so scans can detect dense pages in O(1).

    ``row_cache`` memoizes tuples assembled by point fetches (index
    probes hit the same hot slots over and over in reconstruction
    joins); it is transient — dropped on page eviction (not pickled)
    and invalidated per slot on writes — so it never changes what a
    fetch returns, only how often the tuple is rebuilt.
    """

    __slots__ = ("columns", "nulls", "widths", "live", "row_cache")

    def __init__(self, ncols: int) -> None:
        self.columns: list[list] = [[] for _ in range(ncols)]
        self.nulls: list[int] = [0] * ncols
        self.widths: list[int | None] = []
        self.live = 0
        self.row_cache: dict[int, tuple] = {}

    # Explicit pickling keeps the on-disk page format stable (and keeps
    # the transient row cache out of it).
    def __getstate__(self):
        return (self.columns, self.nulls, self.widths, self.live)

    def __setstate__(self, state) -> None:
        self.columns, self.nulls, self.widths, self.live = state
        self.row_cache = {}


class ColumnBatch:
    """A batch of rows held column-major, materialized lazily.

    Behaves like the ``list[tuple]`` batches the vectorized operators
    exchange (``len`` / ``iter`` / indexing / slicing), but keeps values
    in per-column lists until someone actually asks for row tuples.
    Filters narrow a batch with :meth:`take` — a selection vector over
    the underlying columns — so a predicate on two meta columns of a
    ten-column chunk table never touches the other eight unless rows
    survive.  Operators without a columnar fast path just iterate it and
    transparently get assembled row tuples.
    """

    __slots__ = ("_base", "_sel", "_cols", "_rows", "_len", "_base_len")

    def __init__(
        self,
        columns: list[list | None],
        sel: list[int] | None = None,
        *,
        length: int | None = None,
    ):
        self._base = columns
        self._sel = sel
        self._cols: dict[int, list] | None = {} if sel is not None else None
        self._rows: list[tuple] | None = None
        if length is None:
            # A pruned (``None``) column has no length; find a real one.
            length = 0
            for column in columns:
                if column is not None:
                    length = len(column)
                    break
        self._base_len = length
        self._len = len(sel) if sel is not None else length

    @property
    def width(self) -> int:
        return len(self._base)

    def col(self, i: int) -> list:
        """Column ``i`` as a value list (selection applied, cached).

        A column the scan pruned (base entry ``None``) materializes as
        all-NULL on first touch; the planner only prunes columns it can
        prove no expression reads, so these values feed nothing but
        positional row assembly."""
        if self._sel is None:
            base = self._base[i]
            if base is None:
                base = self._base[i] = [None] * self._base_len
            return base
        assert self._cols is not None
        cached = self._cols.get(i)
        if cached is None:
            base, sel = self._base[i], self._sel
            if base is None:
                cached = self._cols[i] = [None] * len(sel)
            else:
                cached = self._cols[i] = [base[j] for j in sel]
        return cached

    def take(self, sel: list[int]) -> "ColumnBatch":
        """Narrow to the given row positions (composes lazily)."""
        if self._sel is not None:
            prior = self._sel
            sel = [prior[j] for j in sel]
        return ColumnBatch(self._base, sel, length=self._base_len)

    def rows(self) -> list[tuple]:
        """Assemble (and cache) the row tuples."""
        assembled = self._rows
        if assembled is None:
            if self._len == 0:
                assembled = []
            else:
                cols = [self.col(i) for i in range(len(self._base))]
                assembled = list(zip(*cols))
            self._rows = assembled
        return assembled

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __iter__(self):
        return iter(self.rows())

    def __getitem__(self, item):
        return self.rows()[item]


class ColumnStore(HeapFile):
    """Column-major row store with heap-identical placement.

    Inherits the free-space map, page choice (FIRST_FIT / APPEND),
    sizing, ``restore`` and ``drop`` from :class:`HeapFile`; overrides
    everything that touches page payloads.  ``ncols`` fixes the column
    count (a physical table's schema never changes shape in place).
    """

    storage_kind = "columnar"

    def __init__(self, pool, segment_id, strategy, *, ncols: int, metrics=None):
        super().__init__(pool, segment_id, strategy, metrics=metrics)
        self.ncols = ncols
        # fetch() is the reconstruction-join hot path; resolve its
        # registry counter once instead of by name per call (the count
        # itself stays identical to the heap's).
        self._fetch_counter = (
            metrics.counter("heap.fetches") if metrics is not None else None
        )

    # -- inserts ----------------------------------------------------------

    def insert(self, row: tuple, width: int) -> RowId:
        need = width + ROW_OVERHEAD
        page = self._choose_page(need)
        if page is None:
            page = self._pool.allocate(self.segment_id, PageKind.DATA)
            page.payload = ColumnPage(self.ncols)
            self._page_ids.append(page.page_id)
        payload: ColumnPage = page.payload
        widths = payload.widths
        slot_no = None
        for i, existing in enumerate(widths):
            if existing is None:
                slot_no = i
                break
        if slot_no is None:
            slot_no = len(widths)
            widths.append(None)
            for column in payload.columns:
                column.append(None)
        self._write_slot(payload, slot_no, row, width)
        page.used += need
        self._free_map[page.page_id] = page.free
        self._pool.mark_dirty(page.page_id)
        self.row_count += 1
        self._count("inserts", "heap.inserts")
        san = self._pool.sanitizer
        if san is not None:
            san.on_row_access(
                (self.segment_id, page.page_id, slot_no), write=True
            )
        return RowId(page.page_id, slot_no)

    def _write_slot(
        self, payload: ColumnPage, slot_no: int, row: tuple, width: int
    ) -> None:
        bit = 1 << slot_no
        nulls = payload.nulls
        for c, value in enumerate(row):
            payload.columns[c][slot_no] = value
            if value is None:
                nulls[c] |= bit
            else:
                nulls[c] &= ~bit
        payload.widths[slot_no] = width
        payload.live += 1
        payload.row_cache.pop(slot_no, None)

    def _clear_slot(self, payload: ColumnPage, slot_no: int) -> None:
        bit = 1 << slot_no
        for c, column in enumerate(payload.columns):
            column[slot_no] = None
            payload.nulls[c] &= ~bit
        payload.widths[slot_no] = None
        payload.live -= 1
        payload.row_cache.pop(slot_no, None)

    # -- reads ------------------------------------------------------------

    def fetch(self, rid: RowId) -> tuple:
        """Assemble one row from its column slots (one logical read)."""
        self.fetches += 1
        if self._fetch_counter is not None:
            self._fetch_counter.inc()
        page = self._pool.read(rid.page_id)
        payload: ColumnPage = page.payload
        slot = rid.slot
        if slot >= len(payload.widths) or payload.widths[slot] is None:
            raise ExecutionError(f"dangling RID {rid}")
        san = self._pool.sanitizer
        if san is not None:
            san.on_row_access(
                (self.segment_id, rid.page_id, slot), write=False
            )
        row = payload.row_cache.get(slot)
        if row is None:
            row = tuple([column[slot] for column in payload.columns])
            payload.row_cache[slot] = row
        return row

    def scan(self) -> Iterator[tuple[RowId, tuple]]:
        """Row-assembly adapter: full scan in physical order, assembling
        one tuple per live slot — the tuple engine (and index backfill,
        and DML RID matching) runs unchanged over column pages."""
        self._count("scans", "heap.scans")
        for pid in list(self._page_ids):
            page = self._pool.read(pid)
            payload: ColumnPage = page.payload
            columns = payload.columns
            for slot_no, width in enumerate(payload.widths):
                if width is not None:
                    yield (
                        RowId(pid, slot_no),
                        tuple(column[slot_no] for column in columns),
                    )

    def scan_batches(
        self, batch_rows: int, columns: list[int] | None = None
    ) -> Iterator[ColumnBatch]:
        """Late-materializing scan: yields :class:`ColumnBatch` objects
        whose row tuples are only assembled if a downstream operator
        asks.  Page accounting matches :meth:`scan` exactly (one logical
        read per page, one ``heap.scans`` tick per call), and batch
        boundaries match the heap's ``scan_batches`` (full batches of
        ``batch_rows``, remainder last) so cross-engine and cross-format
        batch counts line up.

        ``columns`` (slot positions) prunes the copy: only the listed
        columns are materialized, the rest ride along as ``None`` and
        NULL-fill if a batch is ever row-assembled.  The planner passes
        this only when it can prove no expression reads a pruned slot.
        """
        self._count("scans", "heap.scans")
        keep = None if columns is None else set(columns)
        pending: list[list | None] | None = None
        pending_len = 0
        for pid in list(self._page_ids):
            page = self._pool.read(pid)
            payload: ColumnPage = page.payload
            widths = payload.widths
            if payload.live == 0:
                continue
            if payload.live == len(widths):
                # Dense page: copy columns wholesale (the page's own
                # lists stay private — later inserts must not mutate a
                # batch already yielded downstream).
                cols = [
                    list(column) if keep is None or i in keep else None
                    for i, column in enumerate(payload.columns)
                ]
                nrows = len(widths)
            else:
                live = [i for i, w in enumerate(widths) if w is not None]
                cols = [
                    [column[j] for j in live]
                    if keep is None or i in keep
                    else None
                    for i, column in enumerate(payload.columns)
                ]
                nrows = len(live)
            if pending is None:
                pending = cols
                pending_len = nrows
            else:
                for out, col in zip(pending, cols):
                    if out is not None:
                        out.extend(col)
                pending_len += nrows
            while pending is not None and pending_len >= batch_rows:
                if pending_len == batch_rows:
                    yield ColumnBatch(pending, length=pending_len)
                    pending = None
                    pending_len = 0
                else:
                    yield ColumnBatch(
                        [
                            col[:batch_rows] if col is not None else None
                            for col in pending
                        ],
                        length=batch_rows,
                    )
                    pending = [
                        col[batch_rows:] if col is not None else None
                        for col in pending
                    ]
                    pending_len -= batch_rows
        if pending is not None and pending_len:
            yield ColumnBatch(pending, length=pending_len)

    # -- updates / deletes -------------------------------------------------

    def update(self, rid: RowId, row: tuple, width: int) -> RowId:
        self._count("updates", "heap.updates")
        page = self._pool.read(rid.page_id)
        payload: ColumnPage = page.payload
        old_width = (
            payload.widths[rid.slot]
            if rid.slot < len(payload.widths)
            else None
        )
        if old_width is None:
            raise ExecutionError(f"update of deleted RID {rid}")
        delta = width - old_width
        if delta <= page.free:
            self._clear_slot(payload, rid.slot)
            self._write_slot(payload, rid.slot, row, width)
            page.used += delta
            self._free_map[page.page_id] = page.free
            self._pool.mark_dirty(page.page_id)
            san = self._pool.sanitizer
            if san is not None:
                san.on_row_access(
                    (self.segment_id, rid.page_id, rid.slot), write=True
                )
            return rid
        self.delete(rid)
        return self.insert(row, width)

    def delete(self, rid: RowId) -> None:
        self._count("deletes", "heap.deletes")
        page = self._pool.read(rid.page_id)
        payload: ColumnPage = page.payload
        width = (
            payload.widths[rid.slot]
            if rid.slot < len(payload.widths)
            else None
        )
        if width is None:
            raise ExecutionError(f"double delete of RID {rid}")
        self._clear_slot(payload, rid.slot)
        page.used -= width + ROW_OVERHEAD
        self._free_map[page.page_id] = page.free
        self._pool.mark_dirty(page.page_id)
        self.row_count -= 1
        san = self._pool.sanitizer
        if san is not None:
            san.on_row_access(
                (self.segment_id, rid.page_id, rid.slot), write=True
            )
