"""Figure 10 (Test 4) — number of logical page reads.

"Every join with an additional base table increases the number of
logical page reads ... the trade-off between conventional tables, where
most meta-data is interpreted at compile time, and Chunk Tables, where
the meta-data must be interpreted at runtime."  The paper also reports
that 74-80 % of the chunked representations' reads were issued by index
accesses.
"""

import pytest

from conftest import BENCH_SCALES, chunk_labels
from repro.engine.pager import PageKind
from repro.experiments.chunkqueries import TENANT, q2_sql
from repro.experiments.report import render_series


@pytest.fixture(scope="module")
def measurements(pool):
    out = {}
    for label in ["conventional"] + chunk_labels():
        out[label] = {
            scale: pool.measure(label, scale) for scale in BENCH_SCALES
        }
    return out


class TestFigure10:
    def test_report(self, benchmark, measurements, report):
        series = {
            label: [(scale, float(m.logical_reads)) for scale, m in points.items()]
            for label, points in measurements.items()
        }
        benchmark.pedantic(lambda: None, rounds=1)
        report(
            "fig10_page_reads",
            render_series(
                "Figure 10: Number of logical page reads",
                "q2_scale",
                series,
            ),
        )

    def test_conventional_reads_fewest_pages(self, measurements):
        for scale in BENCH_SCALES:
            conventional = measurements["conventional"][scale].logical_reads
            for label in chunk_labels():
                assert measurements[label][scale].logical_reads >= conventional

    def test_reads_grow_with_join_count(self, measurements):
        """More chunks touched -> more aligning joins -> more reads."""
        reads = [measurements["chunk3"][s].logical_reads for s in BENCH_SCALES]
        assert reads == sorted(reads)
        assert reads[-1] > reads[0] * 5

    def test_narrowest_chunks_read_most(self, measurements):
        at_90 = {
            label: measurements[label][90].logical_reads
            for label in chunk_labels()
        }
        assert at_90["chunk3"] == max(at_90.values())

    def test_index_reads_dominate_for_chunked(self, pool):
        """Paper: 74-80 % of reads were issued by index accesses."""
        exp = pool.experiment("chunk6")
        sql = exp.mtd.transform_sql(TENANT, q2_sql(45))
        exp.mtd.db.execute(sql, [1])  # warm
        trace = exp.mtd.db.trace(sql, [1])
        assert trace.index_read_share > 0.4
        # The measurement harness reports the same share.
        m = pool.measure("chunk6", 45)
        assert m.index_read_share > 0.4
        assert m.index_reads > 0

    def test_measurements_come_from_traces(self, pool):
        """QueryMeasurement counters equal an independent trace's deltas
        (warm cache, same parameter -> identical logical reads)."""
        exp = pool.experiment("chunk6")
        m = pool.measure("chunk6", 15)
        trace = exp.trace(15)
        assert trace.logical_reads == m.logical_reads
        assert trace.index_reads == m.index_reads

    def test_benchmark_counting_overhead(self, benchmark, pool):
        exp = pool.experiment("chunk6")
        db = exp.mtd.db
        sql = exp.mtd.transform_sql(TENANT, q2_sql(15))
        db.execute(sql, [1])

        def run_and_count():
            return db.trace(sql, [1], analyze=False).logical_reads

        reads = benchmark(run_and_count)
        assert reads > 0
