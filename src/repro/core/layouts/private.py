"""Private Table Layout — Figure 4(a).

Each tenant owns private physical tables; the query-transformation
layer "needs only to rename tables and is very simple".  There is no
meta-data overhead in the data itself, but consolidation is poor: the
number of tables grows as tenants × tables — the regime Experiment 1
shows collapsing past ~50,000 tables.
"""

from __future__ import annotations

from ..schema import Extension, LogicalTable, TenantConfig
from .base import ColumnLoc, Fragment, Layout


class PrivateTableLayout(Layout):
    name = "private"

    def physical_name(self, tenant_id: int, table_name: str) -> str:
        return f"{table_name.lower()}_t{tenant_id}"

    # -- DDL ---------------------------------------------------------------

    def _create_for(self, tenant_id: int, table_name: str) -> None:
        logical = self.schema.logical_table(tenant_id, table_name)
        physical = self.physical_name(tenant_id, table_name)
        columns = ", ".join(
            f"{c.lname} {c.type}" + (" NOT NULL" if c.not_null else "")
            for c in logical.columns
        )
        ddl = f"CREATE TABLE {physical} ({columns}{self._alive_ddl()})"
        indexes = [
            f"CREATE INDEX {physical}_{c.lname} ON {physical} ({c.lname})"
            for c in logical.columns
            if c.indexed
        ]
        self._ensure_table(physical, ddl, indexes)

    def on_tenant_added(self, config: TenantConfig) -> None:
        for table in self.schema.tables():
            self._create_for(config.tenant_id, table.name)

    def on_tenant_removed(self, config: TenantConfig) -> None:
        super().on_tenant_removed(config)
        for table in self.schema.tables():
            self._drop_table(self.physical_name(config.tenant_id, table.name))

    def on_table_added(self, table: LogicalTable) -> None:
        super().on_table_added(table)
        for config in self.schema.tenants():
            self._create_for(config.tenant_id, table.name)

    def on_extension_granted(self, config: TenantConfig, extension: Extension) -> None:
        """Widen the tenant's private table: recreate with the new
        columns and copy existing rows (our engine has no ALTER TABLE,
        and many databases cannot run such DDL online — the private
        layout's weakness the paper points out)."""
        physical = self.physical_name(config.tenant_id, extension.base_table)
        if not self.db.catalog.has_table(physical):
            self._create_for(config.tenant_id, extension.base_table)
            return
        old_columns = [c.lname for c in self.db.catalog.table(physical).columns]
        rows = self.db.execute(f"SELECT * FROM {physical}").rows
        self._drop_table(physical)
        self._create_for(config.tenant_id, extension.base_table)
        pad = (None,) * len(extension.columns)
        for row in rows:
            placeholders = ", ".join("?" for _ in row + pad)
            names = ", ".join(old_columns + [c.lname for c in extension.columns])
            self.db.execute(
                f"INSERT INTO {physical} ({names}) VALUES ({placeholders})",
                list(row + pad),
            )

    def on_extension_altered(self, extension, new_columns) -> None:
        """Every subscribed tenant's private table must be widened —
        the per-tenant DDL storm the Private layout implies."""
        super().on_extension_altered(extension, new_columns)
        for tenant_id in self.schema.tenants_with_extension(extension.name):
            physical = self.physical_name(tenant_id, extension.base_table)
            if not self.db.catalog.has_table(physical):
                continue
            old_columns = [
                c.lname for c in self.db.catalog.table(physical).columns
            ]
            if all(c.lname in old_columns for c in new_columns):
                continue  # already widened
            rows = self.db.execute(f"SELECT * FROM {physical}").rows
            self._drop_table(physical)
            self._create_for(tenant_id, extension.base_table)
            pad = (None,) * len(new_columns)
            names = ", ".join(
                old_columns + [c.lname for c in new_columns]
            )
            for row in rows:
                placeholders = ", ".join("?" for _ in row + pad)
                self.db.execute(
                    f"INSERT INTO {physical} ({names}) VALUES ({placeholders})",
                    list(row + pad),
                )

    # -- fragments -------------------------------------------------------------

    def fragments(self, tenant_id: int, table_name: str) -> list[Fragment]:
        logical = self.schema.logical_table(tenant_id, table_name)
        return [
            Fragment(
                table=self.physical_name(tenant_id, table_name),
                meta=(),
                columns=tuple(
                    (c.lname, ColumnLoc(c.lname)) for c in logical.columns
                ),
                row_column=None,
            )
        ]
