"""The cluster wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian length followed by a UTF-8 JSON
object.  JSON keeps the protocol debuggable (``nc`` + eyeballs) and the
engine's value domain is JSON-friendly except for two cases handled by
tagging:

* ``DATE`` values travel as ``{"$date": "YYYY-MM-DD"}``;
* result rows are tuples in the engine and travel as JSON arrays —
  :func:`decode_rows` turns them back into tuples so cluster results
  compare equal to local engine results.

Requests and responses are plain dicts.  Every request carries ``op``
plus op-specific fields; every response carries ``ok`` (bool) and
either result fields or ``error`` / ``message`` (plus ``shard`` and
``placement_version`` for ``WrongShard``, so smart clients can refresh
their placement map and retry).
"""

from __future__ import annotations

import asyncio
import datetime
import json
import struct
from typing import Any

from .errors import ProtocolError

#: Frames above this size are refused — a corrupt length prefix must
#: not make a reader try to allocate gigabytes.
MAX_FRAME = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


# -- value tagging -----------------------------------------------------------


def encode_value(value: Any) -> Any:
    """A JSON-safe encoding of one engine value."""
    if isinstance(value, datetime.date) and not isinstance(
        value, datetime.datetime
    ):
        return {"$date": value.isoformat()}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {k: encode_value(v) for k, v in value.items()}
    return value


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value` (lists stay lists; use
    :func:`decode_rows` where tuples are expected)."""
    if isinstance(value, dict):
        if set(value) == {"$date"}:
            return datetime.date.fromisoformat(value["$date"])
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


def decode_rows(rows: list) -> list[tuple]:
    """Result rows come back as JSON arrays; the engine's are tuples."""
    return [tuple(decode_value(cell) for cell in row) for row in rows]


# -- framing -----------------------------------------------------------------


def encode_frame(message: dict) -> bytes:
    body = json.dumps(
        encode_value(message), separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME}")
    return _LENGTH.pack(len(body)) + body


def decode_frame(body: bytes) -> dict:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return decode_value(message)


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection died mid frame header") from exc
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection died mid frame body") from exc
    return decode_frame(body)


async def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    writer.write(encode_frame(message))
    await writer.drain()


# -- response helpers --------------------------------------------------------


def ok_response(**fields: Any) -> dict:
    return {"ok": True, **fields}


def error_response(error: str, message: str, **fields: Any) -> dict:
    return {"ok": False, "error": error, "message": message, **fields}
