"""SQL value types and byte-size accounting.

The engine stores Python objects, not serialized bytes, but all page
arithmetic (rows per page, index fan-out, buffer-pool pressure) is driven
by the *declared* byte width of each value.  This is what makes the
reproduction page-accurate: a ``VARCHAR(100)`` column occupies the same
fraction of an 8 KB page here as it would in the paper's DB2 setup,
independent of how Python represents the string.

Types supported: INTEGER, BIGINT, DOUBLE, VARCHAR(n), DATE, BOOLEAN.
``DATE`` values are ``datetime.date`` instances.  NULL is represented by
``None`` and occupies a null-bitmap bit plus nothing else (we charge one
byte, the common slotted-page approximation).
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass

from .errors import TypeMismatchError


class TypeKind(enum.Enum):
    """The kinds of SQL types the engine understands."""

    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    DOUBLE = "DOUBLE"
    VARCHAR = "VARCHAR"
    DATE = "DATE"
    BOOLEAN = "BOOLEAN"


# Fixed storage widths, in bytes, for the fixed-width kinds.
_FIXED_WIDTH = {
    TypeKind.INTEGER: 4,
    TypeKind.BIGINT: 8,
    TypeKind.DOUBLE: 8,
    TypeKind.DATE: 4,
    TypeKind.BOOLEAN: 1,
}

#: Bytes charged for a NULL value (null-bitmap share).
NULL_WIDTH = 1

#: Per-value VARCHAR length header.
VARCHAR_HEADER = 2


@dataclass(frozen=True)
class SqlType:
    """A concrete SQL type, e.g. ``VARCHAR(100)`` or ``INTEGER``."""

    kind: TypeKind
    length: int | None = None  # only for VARCHAR

    def __post_init__(self) -> None:
        if self.kind is TypeKind.VARCHAR:
            if self.length is None or self.length <= 0:
                raise TypeMismatchError("VARCHAR requires a positive length")
        elif self.length is not None:
            raise TypeMismatchError(f"{self.kind.value} does not take a length")

    # -- declared widths ------------------------------------------------

    @property
    def max_width(self) -> int:
        """Maximum bytes a non-null value of this type occupies on a page."""
        if self.kind is TypeKind.VARCHAR:
            assert self.length is not None
            return self.length + VARCHAR_HEADER
        return _FIXED_WIDTH[self.kind]

    def value_width(self, value: object) -> int:
        """Bytes the given value occupies on a page (NULLs are 1 byte)."""
        if value is None:
            return NULL_WIDTH
        if self.kind is TypeKind.VARCHAR:
            return len(str(value)) + VARCHAR_HEADER
        return _FIXED_WIDTH[self.kind]

    # -- checking & coercion --------------------------------------------

    def check(self, value: object) -> object:
        """Validate (and mildly coerce) a Python value for this type.

        Returns the stored representation, raising
        :class:`TypeMismatchError` when the value cannot be represented.
        Coercions mirror the lenient behaviour of the paper's databases:
        ints are accepted for DOUBLE, ISO strings for DATE.
        """
        if value is None:
            return None
        kind = self.kind
        if kind in (TypeKind.INTEGER, TypeKind.BIGINT):
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeMismatchError(f"expected {kind.value}, got {value!r}")
            return value
        if kind is TypeKind.DOUBLE:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeMismatchError(f"expected DOUBLE, got {value!r}")
            return float(value)
        if kind is TypeKind.VARCHAR:
            if not isinstance(value, str):
                raise TypeMismatchError(f"expected VARCHAR, got {value!r}")
            assert self.length is not None
            if len(value) > self.length:
                raise TypeMismatchError(
                    f"value of length {len(value)} exceeds VARCHAR({self.length})"
                )
            return value
        if kind is TypeKind.DATE:
            if isinstance(value, datetime.date) and not isinstance(
                value, datetime.datetime
            ):
                return value
            if isinstance(value, str):
                try:
                    return datetime.date.fromisoformat(value)
                except ValueError as exc:
                    raise TypeMismatchError(f"bad DATE literal {value!r}") from exc
            raise TypeMismatchError(f"expected DATE, got {value!r}")
        if kind is TypeKind.BOOLEAN:
            if isinstance(value, bool):
                return value
            raise TypeMismatchError(f"expected BOOLEAN, got {value!r}")
        raise TypeMismatchError(f"unsupported type {kind}")  # pragma: no cover

    def to_varchar(self, value: object) -> str | None:
        """Render a value into the flexible VARCHAR funnel.

        The Universal and (string-typed) Pivot layouts store every logical
        type in a VARCHAR column; this is the canonical encoding used to
        round-trip values through such columns.
        """
        if value is None:
            return None
        if self.kind is TypeKind.DATE:
            assert isinstance(value, datetime.date)
            return value.isoformat()
        if self.kind is TypeKind.BOOLEAN:
            return "1" if value else "0"
        return str(value)

    def from_varchar(self, text: str | None) -> object:
        """Invert :meth:`to_varchar`."""
        if text is None:
            return None
        kind = self.kind
        if kind in (TypeKind.INTEGER, TypeKind.BIGINT):
            return int(text)
        if kind is TypeKind.DOUBLE:
            return float(text)
        if kind is TypeKind.DATE:
            return datetime.date.fromisoformat(text)
        if kind is TypeKind.BOOLEAN:
            return text == "1"
        return text

    def __str__(self) -> str:
        if self.kind is TypeKind.VARCHAR:
            return f"VARCHAR({self.length})"
        return self.kind.value


# Convenience singletons used across the code base.
INTEGER = SqlType(TypeKind.INTEGER)
BIGINT = SqlType(TypeKind.BIGINT)
DOUBLE = SqlType(TypeKind.DOUBLE)
DATE = SqlType(TypeKind.DATE)
BOOLEAN = SqlType(TypeKind.BOOLEAN)


def varchar(length: int) -> SqlType:
    """Build a ``VARCHAR(length)`` type."""
    return SqlType(TypeKind.VARCHAR, length)


def parse_type(text: str) -> SqlType:
    """Parse a type name as it appears in DDL, e.g. ``"VARCHAR(100)"``."""
    text = text.strip().upper()
    if text.startswith("VARCHAR"):
        rest = text[len("VARCHAR") :].strip()
        if rest.startswith("(") and rest.endswith(")"):
            try:
                return varchar(int(rest[1:-1]))
            except ValueError:
                pass
        raise TypeMismatchError(f"malformed VARCHAR type: {text!r}")
    try:
        return SqlType(TypeKind(text))
    except ValueError:
        raise TypeMismatchError(f"unknown type {text!r}") from None


def sort_key(value: object) -> tuple[int, object]:
    """Total order over nullable heterogeneous SQL values.

    NULLs sort first (the convention DB2 uses for ascending indexes is
    nulls-high, but the choice only needs to be consistent here).  Values
    of different types never meet in one column in well-typed plans, but
    the executor sorts mixed meta-data tuples, so we keep this safe.
    """
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, datetime.date):
        return (3, value.toordinal())
    return (4, str(value))
