"""Schema variability (Table 1).

The Experiment 1 knob: with ``variability`` 0.0 a single schema instance
is shared by all tenants (10 tables total); with 1.0 every tenant has a
private instance (tenants x 10 tables).  "Between these two extremes,
tenants are distributed as evenly as possible among the schema
instances."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.errors import PlanError


@dataclass(frozen=True)
class VariabilityConfig:
    """One row of Table 1 (scaled by the tenant count)."""

    variability: float
    tenants: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.variability <= 1.0:
            raise PlanError("schema variability must be in [0, 1]")
        if self.tenants < 1:
            raise PlanError("need at least one tenant")

    @property
    def instances(self) -> int:
        return max(1, round(self.variability * self.tenants))

    @property
    def total_tables(self) -> int:
        return self.instances * 10

    def tenants_per_instance(self) -> list[int]:
        """Tenant counts per instance, distributed as evenly as possible
        with the fuller instances first (matching the paper's example:
        at 0.65, 'the first 3,500 schema instances have two tenants
        while the rest have only one')."""
        base, extra = divmod(self.tenants, self.instances)
        return [base + 1] * extra + [base] * (self.instances - extra)


def distribute_tenants(config: VariabilityConfig) -> dict[int, int]:
    """tenant_id (1-based) -> instance number (0-based)."""
    assignment: dict[int, int] = {}
    tenant = 1
    for instance, count in enumerate(config.tenants_per_instance()):
        for _ in range(count):
            assignment[tenant] = instance
            tenant += 1
    return assignment
