"""Tests for §6.3 DML transformation: fan-out, the two update modes,
the Trashcan (soft delete), and restore."""

import pytest

from repro import UpdateMode
from repro.engine.errors import PlanError, UnknownObjectError

from .conftest import ALL_LAYOUTS, build_running_example


class TestInsertFanOut:
    def test_pivot_insert_fans_out_per_column(self):
        """A Pivot Table gives 'each field of each row its own row'."""
        mtd = build_running_example("pivot")
        counts = {
            t.name: t.row_count
            for t in mtd.db.catalog.tables()
            if t.name.startswith("pivot")
        }
        # 4 logical rows; tenant 17 has 5 columns x 2 rows, 35 has 3,
        # 42 has 4 -> 5*2 + 3 + 4 = 17 physical rows in total.
        assert sum(counts.values()) == 17

    def test_chunk_insert_writes_each_chunk(self):
        mtd = build_running_example("chunk", width=1)
        total = sum(
            t.row_count
            for t in mtd.db.catalog.tables()
            if t.name.startswith("chunk_")
        )
        assert total == 17  # same arithmetic as pivot at width 1

    def test_unknown_insert_column_rejected(self):
        mtd = build_running_example("chunk")
        with pytest.raises(UnknownObjectError):
            mtd.insert(35, "account", {"aid": 5, "bogus": 1})

    def test_extension_column_rejected_without_grant(self):
        mtd = build_running_example("chunk")
        with pytest.raises(UnknownObjectError):
            mtd.insert(35, "account", {"aid": 5, "beds": 1})

    def test_type_checked_through_logical_schema(self):
        from repro.engine.errors import TypeMismatchError

        mtd = build_running_example("chunk")
        with pytest.raises(TypeMismatchError):
            mtd.insert(35, "account", {"aid": "not-an-int"})

    def test_row_ids_are_monotonic_per_tenant(self):
        mtd = build_running_example("extension")
        first = mtd.insert(35, "account", {"aid": 10})
        second = mtd.insert(35, "account", {"aid": 11})
        assert second == first + 1


class TestUpdateModes:
    @pytest.mark.parametrize("mode", [UpdateMode.BUFFERED, UpdateMode.SUBQUERY])
    def test_both_modes_update_chunked_layouts(self, mode):
        mtd = build_running_example("chunk", width=2)
        mtd.update_mode = mode
        count = mtd.execute(
            17, "UPDATE account SET beds = 999 WHERE hospital = 'State'"
        ).rowcount
        assert count == 1
        assert mtd.execute(
            17, "SELECT beds FROM account WHERE aid = 2"
        ).rows == [(999,)]

    def test_subquery_mode_rejects_cross_fragment_set(self):
        """SET beds = aid + 1 reads a column from another fragment —
        only BUFFERED can do that."""
        mtd = build_running_example("chunk", width=1)
        mtd.update_mode = UpdateMode.SUBQUERY
        with pytest.raises(PlanError):
            mtd.execute(17, "UPDATE account SET beds = aid + 1")

    def test_buffered_mode_handles_cross_fragment_set(self):
        mtd = build_running_example("chunk", width=1)
        mtd.update_mode = UpdateMode.BUFFERED
        mtd.execute(17, "UPDATE account SET beds = aid + 1")
        rows = mtd.execute(17, "SELECT aid, beds FROM account ORDER BY aid").rows
        assert rows == [(1, 2), (2, 3)]

    def test_update_touches_only_fragments_with_assigned_columns(self):
        """'Normal updates only have to manipulate the chunks where at
        least one cell is affected.'"""
        mtd = build_running_example("chunk", width=1)
        name_table = None
        for t in mtd.db.catalog.tables():
            # With width 1 the 'name' column lives alone in a str chunk.
            if t.name.startswith("chunk_s1"):
                name_table = t
        assert name_table is not None
        before = mtd.db.pool_stats.writes
        mtd.execute(17, "UPDATE account SET beds = 5 WHERE aid = 1")
        # The str chunks are untouched by a beds-only update: verify name
        # is still intact and rowcounts unchanged.
        assert mtd.execute(
            17, "SELECT name FROM account WHERE aid = 1"
        ).rows == [("Acme",)]

    def test_update_zero_matches(self):
        mtd = build_running_example("chunk")
        assert (
            mtd.execute(17, "UPDATE account SET beds = 1 WHERE aid = 99").rowcount
            == 0
        )


class TestDelete:
    @pytest.mark.parametrize("layout", ALL_LAYOUTS)
    def test_delete_removes_all_fragments(self, layout):
        mtd = build_running_example(layout)
        mtd.execute(17, "DELETE FROM account WHERE aid = 1")
        assert mtd.execute(17, "SELECT COUNT(*) FROM account").rows == [(1,)]
        # The other row is fully reconstructable (no orphan fragments).
        assert mtd.execute(
            17, "SELECT name, hospital, beds FROM account"
        ).rows == [("Gump", "State", 1042)]

    def test_delete_without_predicate(self):
        mtd = build_running_example("chunk")
        assert mtd.execute(42, "DELETE FROM account").rowcount == 1
        assert mtd.execute(42, "SELECT COUNT(*) FROM account").rows == [(0,)]


class TestTrashcan:
    """Soft delete: 'transform delete operations into updates that mark
    the tuples as invisible ... to provide mechanisms like a Trashcan'."""

    @pytest.mark.parametrize(
        "layout", ["extension", "universal", "pivot", "chunk", "chunk_folding"]
    )
    def test_soft_delete_hides_rows(self, layout):
        mtd = build_running_example(layout, soft_delete=True)
        mtd.execute(17, "DELETE FROM account WHERE aid = 1")
        assert mtd.execute(17, "SELECT COUNT(*) FROM account").rows == [(1,)]

    def test_soft_deleted_rows_remain_physically(self):
        mtd = build_running_example("chunk", width=1, soft_delete=True)
        mtd.execute(17, "DELETE FROM account WHERE aid = 1")
        total = sum(
            t.row_count
            for t in mtd.db.catalog.tables()
            if t.name.startswith("chunk_")
        )
        assert total == 17  # nothing physically removed

    def test_restore_brings_rows_back(self):
        mtd = build_running_example("chunk", soft_delete=True)
        mtd.execute(17, "DELETE FROM account WHERE aid = 1")
        mtd.restore(17, "account", [0])  # first inserted row has id 0
        assert mtd.execute(17, "SELECT COUNT(*) FROM account").rows == [(2,)]

    def test_restore_requires_soft_delete(self):
        mtd = build_running_example("chunk")
        with pytest.raises(PlanError):
            mtd.restore(17, "account", [0])

    def test_soft_delete_on_private_layout(self):
        mtd = build_running_example("private", soft_delete=True)
        mtd.execute(17, "DELETE FROM account WHERE aid = 1")
        assert mtd.execute(17, "SELECT COUNT(*) FROM account").rows == [(1,)]
        # Physically still there.
        assert mtd.db.catalog.table("account_t17").row_count == 2

    def test_updates_skip_trashed_rows(self):
        mtd = build_running_example("chunk", soft_delete=True)
        mtd.execute(17, "DELETE FROM account WHERE aid = 1")
        count = mtd.execute(17, "UPDATE account SET beds = 7").rowcount
        assert count == 1  # only the live row


class TestDmlWithParams:
    def test_update_param_in_set_and_where(self):
        mtd = build_running_example("chunk")
        mtd.execute(
            17, "UPDATE account SET beds = ? WHERE hospital = ?", [777, "State"]
        )
        assert mtd.execute(
            17, "SELECT beds FROM account WHERE aid = 2"
        ).rows == [(777,)]

    def test_delete_with_param(self):
        mtd = build_running_example("chunk")
        assert (
            mtd.execute(17, "DELETE FROM account WHERE aid = ?", [1]).rowcount == 1
        )

    def test_delete_with_in_subquery(self):
        mtd = build_running_example("chunk_folding")
        count = mtd.execute(
            17,
            "DELETE FROM account WHERE aid IN "
            "(SELECT a.aid FROM account a WHERE a.beds > ?)",
            [1000],
        ).rowcount
        assert count == 1
