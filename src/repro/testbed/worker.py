"""Workers: simulated application-server database sessions.

"A Worker process engages in multiple client sessions, each of which
simulates the activities of a single connection from an application
server's database connection pool."  Sessions here are cooperative —
one statement executes at a time — but each keeps its own simulated
clock, and lock overlap between sessions is tracked in simulated time,
so contention effects appear without real threads (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

from .actions import ActionClass, ActionExecutor
from .simtime import CostModel


@dataclass
class HeldLock:
    session_id: int
    resource: object
    exclusive: bool
    until_ms: float


class LockOverlap:
    """Conflict accounting across sessions in simulated time."""

    def __init__(self) -> None:
        self._held: list[HeldLock] = []

    def conflicts(
        self, session_id: int, resources: list[tuple[object, bool]], now_ms: float
    ) -> int:
        self._held = [h for h in self._held if h.until_ms > now_ms]
        count = 0
        for resource, exclusive in resources:
            for held in self._held:
                if held.session_id == session_id:
                    continue
                if held.resource != resource:
                    continue
                if exclusive or held.exclusive:
                    count += 1
        return count

    def hold(
        self,
        session_id: int,
        resources: list[tuple[object, bool]],
        until_ms: float,
    ) -> None:
        for resource, exclusive in resources:
            self._held.append(HeldLock(session_id, resource, exclusive, until_ms))


def action_resources(
    action: ActionClass, tenant_id: int, table: str | None
) -> list[tuple[object, bool]]:
    """Lock footprint of one action: heavyweight selects take a shared
    table lock (their partial scans 'do a partial table scan with some
    locking'); inserts take an exclusive lock on the table's insert
    point ('the database locks the pages where the tuples are
    inserted'); updates take exclusive row-range locks."""
    if table is None:
        return []
    if action is ActionClass.SELECT_HEAVY:
        return [(("table", table), False)]
    if action in (ActionClass.INSERT_LIGHT, ActionClass.INSERT_HEAVY):
        return [(("insert-point", table), True)]
    if action in (ActionClass.UPDATE_LIGHT, ActionClass.UPDATE_HEAVY):
        return [(("rows", table, tenant_id), True)]
    return []


class Session:
    """One database connection with its own simulated clock."""

    def __init__(self, session_id: int) -> None:
        self.session_id = session_id
        self.clock_ms = 0.0

    def advance(self, response_ms: float) -> None:
        self.clock_ms += response_ms


class Worker:
    """Executes actions and times them with the cost model."""

    def __init__(
        self,
        mtd,
        executor: ActionExecutor,
        cost_model: CostModel,
        overlap: LockOverlap,
        *,
        transactional: bool = False,
    ) -> None:
        self.mtd = mtd
        self.executor = executor
        self.cost_model = cost_model
        self.overlap = overlap
        #: §4.2: "the maximum granularity for a transaction is ... the
        #: duration of a single user request" — when enabled, each
        #: action runs inside one engine transaction.
        self.transactional = transactional

    def execute(
        self, session: Session, action: ActionClass, tenant_id: int
    ) -> float:
        """Run one action for a session; returns simulated response ms."""
        db = self.mtd.db
        pool_before = db.pool_stats.snapshot()
        exec_before = db.exec_stats.snapshot()
        ddl_before = db.catalog.ddl_statements

        if self.transactional:
            db.execute("BEGIN")
            try:
                table = self.executor.run(action, tenant_id)
                db.transactions.commit_if_active()  # DDL may have committed
            except Exception:
                if db.transactions.active:
                    db.execute("ROLLBACK")
                raise
        else:
            table = self.executor.run(action, tenant_id)

        # Execution is cooperative, so lock overlap is evaluated in
        # *simulated* time after the fact: this action conflicts with
        # any lock another session still holds at this session's clock.
        resources = action_resources(action, tenant_id, table)
        conflicts = self.overlap.conflicts(
            session.session_id, resources, session.clock_ms
        )

        pool_delta = db.pool_stats.delta(pool_before)
        exec_delta = db.exec_stats.delta(exec_before)
        ddl_delta = db.catalog.ddl_statements - ddl_before
        response_ms = self.cost_model.response_ms(
            pool_delta,
            exec_delta,
            lock_conflicts=conflicts,
            ddl_statements=ddl_delta,
        )
        if conflicts:
            # The cost model charged the wait; record it in the engine's
            # lock ledger so ``locks.waits`` / ``locks.wait_ms`` reflect
            # the contention the run simulated.
            db.locks.record_wait(
                conflicts, conflicts * self.cost_model.lock_conflict_ms
            )
        db.metrics.histogram(
            f"testbed.action.{action.value.lower().replace(' ', '_')}.ms"
        ).observe(response_ms)
        self.overlap.hold(
            session.session_id, resources, session.clock_ms + response_ms
        )
        return response_ms
