"""Placement catalog: consistent hashing, pins, versioning, journal,
and persistence."""

import pytest

from repro.cluster import PlacementCatalog
from repro.cluster.errors import ClusterError, RebalanceInProgressError

SHARDS = ["alpha", "beta", "gamma"]
TENANTS = range(500)


class TestRing:
    def test_deterministic(self):
        a = PlacementCatalog(SHARDS)
        b = PlacementCatalog(SHARDS)
        assert [a.shard_for(t) for t in TENANTS] == [
            b.shard_for(t) for t in TENANTS
        ]

    def test_every_shard_gets_tenants(self):
        catalog = PlacementCatalog(SHARDS)
        placed = {catalog.shard_for(t) for t in TENANTS}
        assert placed == set(SHARDS)

    def test_adding_a_shard_only_moves_tenants_to_it(self):
        catalog = PlacementCatalog(SHARDS)
        before = {t: catalog.shard_for(t) for t in TENANTS}
        catalog.add_shard("delta")
        moved = {
            t for t in TENANTS if catalog.shard_for(t) != before[t]
        }
        # Consistent hashing: every moved tenant lands on the new
        # shard, and only a fraction of the keyspace moves at all.
        assert moved, "a new shard should attract some tenants"
        assert all(catalog.shard_for(t) == "delta" for t in moved)
        assert len(moved) < len(list(TENANTS)) / 2

    def test_remove_restores_prior_mapping(self):
        catalog = PlacementCatalog(SHARDS)
        before = {t: catalog.shard_for(t) for t in TENANTS}
        catalog.add_shard("delta")
        catalog.remove_shard("delta")
        assert {t: catalog.shard_for(t) for t in TENANTS} == before

    def test_duplicate_and_unknown_shards_rejected(self):
        catalog = PlacementCatalog(SHARDS)
        with pytest.raises(ClusterError):
            catalog.add_shard("alpha")
        with pytest.raises(ClusterError):
            catalog.remove_shard("nope")

    def test_empty_catalog_cannot_place(self):
        with pytest.raises(ClusterError):
            PlacementCatalog([]).shard_for(1)


class TestPins:
    def test_pin_overrides_ring(self):
        catalog = PlacementCatalog(SHARDS)
        tenant = next(
            t for t in TENANTS if catalog.shard_for(t) != "beta"
        )
        catalog.pin(tenant, "beta")
        assert catalog.shard_for(tenant) == "beta"
        catalog.unpin(tenant)
        assert catalog.shard_for(tenant) != "beta"

    def test_pin_to_unknown_shard_rejected(self):
        catalog = PlacementCatalog(SHARDS)
        with pytest.raises(ClusterError):
            catalog.pin(1, "nope")

    def test_cannot_remove_shard_with_pins(self):
        catalog = PlacementCatalog(SHARDS)
        catalog.pin(7, "beta")
        with pytest.raises(ClusterError):
            catalog.remove_shard("beta")

    def test_every_mutation_bumps_version(self):
        catalog = PlacementCatalog(SHARDS)
        version = catalog.version
        catalog.pin(1, "alpha")
        assert catalog.version == version + 1
        catalog.unpin(1)
        assert catalog.version == version + 2
        catalog.unpin(1)  # no-op unpin does not bump
        assert catalog.version == version + 2
        catalog.add_shard("delta")
        assert catalog.version == version + 3


class TestJournal:
    def test_single_move_at_a_time(self):
        catalog = PlacementCatalog(SHARDS)
        catalog.begin_rebalance(7, "alpha", "beta")
        with pytest.raises(RebalanceInProgressError):
            catalog.begin_rebalance(8, "alpha", "gamma")
        catalog.clear_rebalance()
        catalog.begin_rebalance(8, "alpha", "gamma")

    def test_cutover_flips_pin_with_phase(self):
        catalog = PlacementCatalog(SHARDS)
        catalog.begin_rebalance(7, "alpha", "beta")
        catalog.update_phase("purge", pin_dest=True)
        assert catalog.shard_for(7) == "beta"
        assert catalog.rebalance["phase"] == "purge"

    def test_update_phase_requires_open_journal(self):
        catalog = PlacementCatalog(SHARDS)
        with pytest.raises(ClusterError):
            catalog.update_phase("ship")


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "catalog.json"
        catalog = PlacementCatalog(SHARDS, path=path)
        catalog.pin(7, "beta")
        catalog.begin_rebalance(9, "alpha", "gamma")
        catalog.save()
        loaded = PlacementCatalog.load(path)
        assert loaded.version == catalog.version
        assert loaded.pins == catalog.pins
        assert loaded.rebalance == catalog.rebalance
        assert [loaded.shard_for(t) for t in TENANTS] == [
            catalog.shard_for(t) for t in TENANTS
        ]

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "not-a-catalog.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(ClusterError):
            PlacementCatalog.load(path)

    def test_snapshot_restore(self):
        catalog = PlacementCatalog(SHARDS)
        catalog.pin(7, "beta")
        snapshot = catalog.snapshot()
        catalog.unpin(7)
        catalog.add_shard("delta")
        catalog.restore(snapshot)
        assert catalog.shard_for(7) == "beta"
        assert catalog.shards == SHARDS
