"""Seeded transformer/layout mutations for verifying the verifier.

Each mutation breaks the schema-mapping layer in a way that must not
survive the analysis gate: the CLI's ``--mutate`` flag applies one and
``--strict`` is then expected to exit non-zero.  The mutation tests use
these to prove the passes actually catch the bug classes they claim to.
"""

from __future__ import annotations

from typing import Any

from ..core.layouts.base import ColumnLoc, Fragment, TENANT_META


def drop_tenant_guard(mtd: Any) -> None:
    """Strip the Tenant meta pair from every fragment the layouts emit.

    Downstream, ``build_reconstruction`` and the DML transformer then
    emit physical statements without ``tenant = ...`` conjuncts — the
    exact cross-tenant leak the isolation verifier exists to catch.
    """
    for layout in mtd._all_layouts():
        original = layout.fragments

        def mutated(
            tenant_id: int, table_name: str, original=original
        ) -> list[Fragment]:
            return [
                Fragment(
                    table=f.table,
                    meta=tuple(m for m in f.meta if m[0] != TENANT_META),
                    columns=f.columns,
                    row_column=f.row_column,
                )
                for f in original(tenant_id, table_name)
            ]

        layout.fragments = mutated


def drop_read_casts(mtd: Any) -> None:
    """Strip read-side casts from fragment columns (breaks the
    Universal/generic type funnel; LAY003 territory)."""
    for layout in mtd._all_layouts():
        original = layout.fragments

        def mutated(
            tenant_id: int, table_name: str, original=original
        ) -> list[Fragment]:
            return [
                Fragment(
                    table=f.table,
                    meta=f.meta,
                    columns=tuple(
                        (name, ColumnLoc(loc.physical, cast=None, store=loc.store))
                        for name, loc in f.columns
                    ),
                    row_column=f.row_column,
                )
                for f in original(tenant_id, table_name)
            ]

        layout.fragments = mutated


def widen_crosstenant(mtd: Any) -> None:
    """Widen every fused cross-tenant statement beyond its declared set.

    Wraps tenant-set resolution to sneak one extra existing tenant into
    ``FOR TENANTS IN (...)`` statements — the fused scan then reads a
    tenant the clause never named.  The isolation verifier must refuse
    the statement (ISO006: literal domination by the declared set).
    """
    original = mtd._resolve_tenant_set

    def mutated(clause: Any) -> tuple[int, ...]:
        ids = original(clause)
        extra = [t for t in mtd.tenant_ids() if t not in ids]
        if extra and not clause.all_tenants:
            ids = tuple(sorted(ids + (extra[0],)))
        return ids

    mtd._resolve_tenant_set = mutated


#: CLI-facing mutation registry.
MUTATIONS = {
    "drop-tenant-guard": drop_tenant_guard,
    "drop-read-casts": drop_read_casts,
    "widen-crosstenant": widen_crosstenant,
}


def apply_mutation(mtd: Any, name: str) -> None:
    MUTATIONS[name](mtd)
    mtd._invalidate_statements()
