"""Figure 2 — number of tenants per database.

Regenerates the paper's capacity grid (application complexity x host
size) from the meta-data-budget arithmetic of
:mod:`repro.core.capacity` and checks the figure's claims: a blade
hosts ~10,000 simple-email tenants but ~100 CRM tenants, ERP barely
consolidates at all, and big iron buys roughly two orders of magnitude.
"""

import pytest

from repro.core.capacity import (
    BLADE_MEMORY,
    CapacityModel,
    FIGURE2_PROFILES,
    figure2_estimates,
)
from repro.experiments.report import render_table


@pytest.fixture(scope="module")
def grid():
    return {(app, host): n for app, host, n in figure2_estimates()}


class TestFigure2:
    def test_report(self, benchmark, grid, report):
        benchmark.pedantic(figure2_estimates, rounds=3)
        rows = [
            (
                profile.name,
                grid[(profile.name, "blade")],
                grid[(profile.name, "big_iron")],
            )
            for profile in FIGURE2_PROFILES
        ]
        report(
            "fig2_capacity",
            render_table(
                "Figure 2: Number of Tenants per Database (modelled)",
                ["application", "blade (1 GB)", "big iron (100 GB)"],
                rows,
            ),
        )

    def test_email_on_blade_order_of_magnitude(self, grid):
        assert 5_000 <= grid[("email", "blade")] <= 50_000  # paper: 10,000

    def test_crm_on_blade_order_of_magnitude(self, grid):
        assert 100 <= grid[("crm_srm", "blade")] <= 1_000  # paper: 100

    def test_crm_on_big_iron(self, grid):
        assert grid[("crm_srm", "big_iron")] >= 10_000  # paper: up to 10,000

    def test_complexity_monotone(self, grid):
        for host in ("blade", "big_iron"):
            counts = [grid[(p.name, host)] for p in FIGURE2_PROFILES]
            assert counts == sorted(counts, reverse=True)

    def test_blade_knee_matches_experiment1(self, grid):
        """The same model predicts the many-tables knee Experiment 1
        measures: ~10^5 tables on a 1 GB blade at 4 KB/table."""
        model = CapacityModel(memory_bytes=BLADE_MEMORY)
        assert 50_000 <= model.max_tables() <= 200_000
