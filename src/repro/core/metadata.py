"""Transformation-layer meta-data: row ids, column ids, and the
meta-data budget report.

Generic layouts (Universal/Pivot/Chunk) keep their own meta-data *in the
data* (the gray columns of Figure 4); the query-transformation layer
additionally needs bookkeeping that never reaches the database: per
logical row a ``Row`` id, per logical column a stable ``Col`` id, and a
running account of how much database meta-data memory each layout
consumes (the budget Chunk Folding tries to spend well).
"""

from __future__ import annotations

from dataclasses import dataclass


class RowIdAllocator:
    """Monotonic row ids per (tenant, logical table).

    "For any insert, the application logic has to ... assign each
    inserted new row a unique row identifier." (Section 6.3)
    """

    def __init__(self) -> None:
        self._next: dict[tuple[int, str], int] = {}

    def allocate(self, tenant_id: int, table_name: str) -> int:
        key = (tenant_id, table_name.lower())
        value = self._next.get(key, 0)
        self._next[key] = value + 1
        return value

    def observe(self, tenant_id: int, table_name: str, row_id: int) -> None:
        """Bump the counter past an externally-seen row id (migration)."""
        key = (tenant_id, table_name.lower())
        if row_id >= self._next.get(key, 0):
            self._next[key] = row_id + 1

    def forget_tenant(self, tenant_id: int) -> None:
        for key in [k for k in self._next if k[0] == tenant_id]:
            del self._next[key]

    def snapshot(self) -> dict:
        """Picklable counter state (crash-recovery bookkeeping)."""
        return dict(self._next)

    def restore(self, state: dict) -> None:
        self._next = dict(state)


class ColumnIdAllocator:
    """Stable ``Col`` ids per base table.

    Base columns take their positional ids; extension columns receive
    globally allocated ids when the extension is registered, so all
    tenants sharing an extension agree on its column ids (required for
    Pivot Tables, where Col is part of the physical key).
    """

    def __init__(self) -> None:
        self._ids: dict[tuple[str, str], int] = {}
        self._next: dict[str, int] = {}

    def register_base(self, table_name: str, column_names: list[str]) -> None:
        table = table_name.lower()
        for i, name in enumerate(column_names):
            self._ids[(table, name.lower())] = i
        self._next[table] = len(column_names)

    def register_extension(self, table_name: str, column_names: list[str]) -> None:
        table = table_name.lower()
        start = self._next.get(table, 0)
        for offset, name in enumerate(column_names):
            self._ids.setdefault((table, name.lower()), start + offset)
        self._next[table] = start + len(column_names)

    def column_id(self, table_name: str, column_name: str) -> int:
        return self._ids[(table_name.lower(), column_name.lower())]

    def snapshot(self) -> dict:
        """Picklable id-assignment state (crash-recovery bookkeeping)."""
        return {"ids": dict(self._ids), "next": dict(self._next)}

    def restore(self, state: dict) -> None:
        self._ids = dict(state["ids"])
        self._next = dict(state["next"])


@dataclass
class MetadataReport:
    """How a layout spends the database's meta-data budget."""

    layout: str
    physical_tables: int
    physical_indexes: int
    metadata_bytes: int
    buffer_pool_pages: int

    def lines(self) -> list[str]:
        return [
            f"layout:            {self.layout}",
            f"physical tables:   {self.physical_tables}",
            f"physical indexes:  {self.physical_indexes}",
            f"meta-data bytes:   {self.metadata_bytes}",
            f"buffer pool pages: {self.buffer_pool_pages}",
        ]
