"""The Controller's card deck (Section 4).

"Following the TPC-C benchmark, the Controller creates a deck of
'action cards' with a particular distribution, shuffles it, and deals
cards to the Workers.  The Controller also randomly selects tenants,
with an equal distribution, and assigns one to each card."
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .actions import ACTION_DISTRIBUTION, ActionClass


@dataclass(frozen=True)
class Card:
    action: ActionClass
    tenant_id: int


class CardDeck:
    """A shuffled deck of (action, tenant) cards."""

    def __init__(
        self,
        size: int,
        tenant_ids: list[int],
        seed: int = 7,
        distribution: dict[ActionClass, float] | None = None,
    ) -> None:
        if size < 1:
            raise ValueError("deck size must be positive")
        if not tenant_ids:
            raise ValueError("need at least one tenant")
        self._rng = random.Random(seed)
        dist = distribution or ACTION_DISTRIBUTION
        actions = self._materialize(size, dist)
        self._cards = [
            Card(action, self._rng.choice(tenant_ids)) for action in actions
        ]
        self._rng.shuffle(self._cards)
        self._next = 0

    def _materialize(
        self, size: int, distribution: dict[ActionClass, float]
    ) -> list[ActionClass]:
        """Largest-remainder apportionment so small classes (Admin at
        0.01 %) still appear in large decks and every deck size sums
        exactly."""
        total = sum(distribution.values())
        exact = {
            action: size * share / total for action, share in distribution.items()
        }
        counts = {action: int(v) for action, v in exact.items()}
        leftover = size - sum(counts.values())
        by_remainder = sorted(
            exact, key=lambda a: exact[a] - counts[a], reverse=True
        )
        for action in by_remainder[:leftover]:
            counts[action] += 1
        cards: list[ActionClass] = []
        for action, count in counts.items():
            cards.extend([action] * count)
        return cards

    def __len__(self) -> int:
        return len(self._cards)

    @property
    def remaining(self) -> int:
        return len(self._cards) - self._next

    def deal(self) -> Card | None:
        """Next card, or None when the deck is exhausted."""
        if self._next >= len(self._cards):
            return None
        card = self._cards[self._next]
        self._next += 1
        return card

    def class_counts(self) -> dict[ActionClass, int]:
        counts: dict[ActionClass, int] = {}
        for card in self._cards:
            counts[card.action] = counts.get(card.action, 0) + 1
        return counts
