"""A process-wide metrics registry: counters, gauges, histograms.

The paper's experiments are all *measurements* — Table 2's hit ratios,
Figure 10's logical page reads, the response-time quantiles of the
testbed — so the engine exports every counter it maintains through one
named registry, in the layered-metrics style of the FoundationDB Record
Layer.  Every :class:`~repro.engine.database.Database` owns a
:class:`MetricsRegistry` (``db.metrics``); the buffer pool, heap files,
B-trees, lock table, transaction manager, and testbed workers all feed
it, so a production deployment would export exactly the numbers the
benchmarks report.

Naming convention: dotted lowercase paths, ``<subsystem>.<detail>``,
e.g. ``pool.data.logical_reads`` or ``locks.wait_ms``.  Histogram names
end in a unit suffix (``_ms``, ``_rows``) where applicable.
"""

from __future__ import annotations

from ..errors import EngineError

#: Histograms keep at most this many samples; beyond it the reservoir is
#: deterministically decimated (every second sample kept, stride
#: doubled) so long runs stay bounded without losing the distribution's
#: shape.  Count / sum / min / max stay exact regardless.
HISTOGRAM_RESERVOIR = 8192


class Counter:
    """A monotonically non-decreasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise EngineError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can move both ways (e.g. resident page count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Sampled distribution with exact count/sum/min/max and approximate
    percentiles from a deterministic bounded reservoir."""

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "_stride", "_seen")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._samples: list[float] = []
        self._stride = 1
        self._seen = 0  # observations since the last kept sample

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._seen += 1
        if self._seen >= self._stride:
            self._seen = 0
            self._samples.append(value)
            if len(self._samples) > HISTOGRAM_RESERVOIR:
                # Decimate deterministically: keep every second sample.
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the reservoir; 0.0 when empty."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(p / 100 * len(ordered)) - 1))
        return ordered[rank]

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named metrics for one database instance.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create, so callers
    never need to pre-register; asking for an existing name with a
    different type is an error.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise EngineError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def get(self, name: str):
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge (histograms: the count)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.count
        return metric.value

    def snapshot(self) -> dict:
        """A plain-dict view: scalars for counters/gauges, summary dicts
        for histograms.  Suitable for JSON export or diffing."""
        out: dict = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def render(self, prefix: str = "") -> str:
        """Plain-text dump of every metric under ``prefix``."""
        lines: list[str] = []
        for name in self.names():
            if prefix and not name.startswith(prefix):
                continue
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                s = metric.summary()
                lines.append(
                    f"{name}  count={s['count']} mean={s['mean']:.3f} "
                    f"p50={s['p50']:.3f} p95={s['p95']:.3f} "
                    f"p99={s['p99']:.3f} max={s['max']:.3f}"
                )
            else:
                value = metric.value
                text = f"{value:g}" if isinstance(value, float) else str(value)
                lines.append(f"{name}  {text}")
        return "\n".join(lines)
