"""Experiment 2 — querying Chunk Tables (Section 6; Figures 8–12).

The test schema: ``parent`` and ``child``, each with an id column and 90
data columns evenly split between INTEGER, DATE and VARCHAR(100);
``child`` additionally references ``parent``.  The conventional layout
keeps both as plain tables; the chunked layouts map the key columns
into ``ChunkIndex``-style indexed chunks and the data columns into
``ChunkData`` chunks of a configurable width (3 … 90 columns).

Query Q2 selects ``s`` data columns from each side joined through the
foreign key and pinned to one random parent::

    SELECT p.id, p.col1, ..., c.col1, ...
    FROM parent p, child c
    WHERE p.id = c.parent AND p.id = ?

This module builds the layouts through the public schema-mapping API
(``chunk`` layout with ``width=w``; the conventional baseline is the
``private`` layout) and measures logical/physical page reads and the
simulated warm/cold response times for any Q2 scale factor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.api import MultiTenantDatabase
from ..core.schema import LogicalColumn, LogicalTable
from ..engine.database import Database
from ..engine.durability import DurabilityOptions
from ..engine.values import DATE, INTEGER, varchar
from ..testbed.simtime import CostModel

#: The single tenant the experiment schema belongs to.
TENANT = 1

#: Chunk widths plotted in Figures 9-12 (plus "conventional").
PAPER_WIDTHS = (3, 6, 15, 30, 90)


def experiment_columns(count: int = 90) -> list[LogicalColumn]:
    """``count`` data columns, evenly distributed between the types
    INTEGER, DATE, and VARCHAR(100), in repeating (int, date, str)
    triples so chunks pack tightly (Section 6.2)."""
    columns: list[LogicalColumn] = []
    kinds = (INTEGER, DATE, varchar(100))
    for i in range(count):
        columns.append(LogicalColumn(f"col{i + 1}", kinds[i % 3]))
    return columns


def parent_table(data_columns: int = 90) -> LogicalTable:
    return LogicalTable(
        "parent",
        tuple(
            [LogicalColumn("id", INTEGER, indexed=True, not_null=True)]
            + experiment_columns(data_columns)
        ),
    )


def child_table(data_columns: int = 90) -> LogicalTable:
    return LogicalTable(
        "child",
        tuple(
            [
                LogicalColumn("id", INTEGER, indexed=True, not_null=True),
                LogicalColumn("parent", INTEGER, indexed=True),
            ]
            + experiment_columns(data_columns)
        ),
    )


def q2_sql(scale: int) -> str:
    """Query Q2 at a scale factor: ``scale`` data columns per side."""
    parts = ["p.id"]
    parts += [f"p.col{i + 1}" for i in range(scale)]
    parts += [f"c.col{i + 1}" for i in range(scale)]
    return (
        "SELECT "
        + ", ".join(parts)
        + " FROM parent p, child c WHERE p.id = c.parent AND p.id = ?"
    )


@dataclass
class ChunkQueryConfig:
    """Scaled-down defaults (paper: 10,000 parents x 100 children)."""

    parents: int = 120
    children_per_parent: int = 8
    data_columns: int = 90
    memory_bytes: int = 24 * 1024 * 1024
    seed: int = 2008
    #: Directory for a disk-backed engine (WAL + page segments); cold
    #: measurements then pay real file reads instead of simulated ones.
    #: ``None`` keeps the historical all-in-memory engine.
    db_path: str | None = None
    #: WAL group-commit batch used in disk-backed mode: the loader is
    #: autocommit-heavy, so batching fsyncs keeps loading tractable.
    group_commit: int = 64
    #: Execution engine: ``"vectorized"`` (default) or ``"tuple"``.
    execution: str = "vectorized"


@dataclass
class QueryMeasurement:
    """Counters and simulated times for one (layout, scale) point.

    Built from per-query :class:`~repro.engine.observability.QueryTrace`
    deltas, so the counts are attributable to Q2 alone even on a shared
    database instance."""

    layout: str
    scale: int
    logical_reads: int
    physical_reads: int
    warm_ms: float
    rows: int
    index_reads: int = 0
    index_read_share: float = 0.0


class ChunkQueryExperiment:
    """Builds one layout instance and measures Q2 against it."""

    def __init__(
        self,
        layout: str,
        config: ChunkQueryConfig | None = None,
        *,
        width: int | None = None,
        folded: bool = True,
        storage: str | None = None,
    ) -> None:
        self.config = config or ChunkQueryConfig()
        self.layout_name = layout
        options: dict = {}
        if layout == "chunk":
            options = {"width": width or 6, "folded": folded}
        if storage is not None:
            # Override the layout's storage default (bench_columnar pins
            # row-major heap baselines against columnar runs).
            options["storage"] = storage
        self.label = (
            f"chunk{width}" + ("" if folded else "-vp")
            if layout == "chunk"
            else layout
        )
        db = Database(
            memory_bytes=self.config.memory_bytes,
            path=self.config.db_path,
            durability=DurabilityOptions(group_commit=self.config.group_commit),
            execution=self.config.execution,
        )
        self.mtd = MultiTenantDatabase(layout=layout, db=db, **options)
        self.cost_model = CostModel()
        self._loaded = False

    # -- data loading ------------------------------------------------------

    def load(self) -> None:
        if self._loaded:
            return
        config = self.config
        self.mtd.define_table(parent_table(config.data_columns))
        self.mtd.define_table(child_table(config.data_columns))
        self.mtd.create_tenant(TENANT)
        rng = random.Random(config.seed)
        child_id = 0
        for parent_id in range(1, config.parents + 1):
            self.mtd.insert(
                TENANT, "parent", self._row(rng, {"id": parent_id})
            )
            for _ in range(config.children_per_parent):
                child_id += 1
                self.mtd.insert(
                    TENANT,
                    "child",
                    self._row(rng, {"id": child_id, "parent": parent_id}),
                )
        self._loaded = True

    def _row(self, rng: random.Random, keys: dict) -> dict:
        import datetime

        values = dict(keys)
        for i in range(self.config.data_columns):
            kind = i % 3
            name = f"col{i + 1}"
            if kind == 0:
                values[name] = rng.randrange(100_000)
            elif kind == 1:
                values[name] = datetime.date(2000, 1, 1) + datetime.timedelta(
                    days=rng.randrange(3000)
                )
            else:
                values[name] = f"value-{rng.randrange(100_000):06d}" + "x" * 60
        return values

    # -- measurement -------------------------------------------------------------

    def warm_up(self, scale: int, parent_id: int) -> None:
        self.mtd.execute(TENANT, q2_sql(scale), [parent_id])

    def measure(
        self, scale: int, *, cold: bool = False, repetitions: int = 3
    ) -> QueryMeasurement:
        """Average counters over ``repetitions`` runs of Q2.

        Warm: the same parent id each run so data stays in memory
        ("for all of them, we used the same values for parameter ? so
        the data was in memory", Test 3).  Cold: the buffer pool is
        flushed between runs (Test 5).
        """
        self.load()
        db = self.mtd.db
        physical_sql = self.mtd.transform_sql(TENANT, q2_sql(scale))
        parent_id = 1 + (self.config.seed % self.config.parents)
        if not cold:
            self.warm_up(scale, parent_id)
        logical = physical = index = rows = 0
        ms = 0.0
        for _ in range(repetitions):
            if cold:
                db.flush_cache()
            trace = db.trace(physical_sql, [parent_id], analyze=False)
            logical += trace.logical_reads
            physical += trace.physical_reads
            index += trace.index_reads
            rows = trace.rowcount
            ms += self.cost_model.response_ms(trace.pool, trace.exec)
        return QueryMeasurement(
            layout=self.label,
            scale=scale,
            logical_reads=logical // repetitions,
            physical_reads=physical // repetitions,
            warm_ms=ms / repetitions,
            rows=rows,
            index_reads=index // repetitions,
            index_read_share=index / logical if logical else 0.0,
        )

    def trace(self, scale: int, *, warm: bool = True):
        """One fully analyzed :class:`QueryTrace` of Q2 at ``scale``
        (per-operator rows/timings included) — the Figure 8 annotated
        plan comes from this."""
        self.load()
        physical_sql = self.mtd.transform_sql(TENANT, q2_sql(scale))
        parent_id = 1 + (self.config.seed % self.config.parents)
        if warm:
            self.warm_up(scale, parent_id)
        return self.mtd.db.trace(physical_sql, [parent_id])

    @staticmethod
    def grouping_sql(data_columns: int = 90) -> str:
        """The 'Additional Tests' grouping query: aggregates over INTEGER
        columns spread across several chunks, so narrow layouts pay
        full-table aligning joins.  INTEGER columns are col1, col4, ...
        (every third column)."""
        int_columns = [f"col{i + 1}" for i in range(data_columns) if i % 3 == 0]
        targets = int_columns[1:5]
        aggregates = ", ".join(
            f"MAX(c.{name}) AS m_{name}" for name in targets
        )
        return (
            f"SELECT c.col1, COUNT(*) AS n, {aggregates} FROM child c "
            "GROUP BY c.col1 ORDER BY n DESC LIMIT 10"
        )

    def measure_grouping(self, *, repetitions: int = 2) -> float:
        """Simulated ms for the grouping query (see grouping_sql)."""
        self.load()
        db = self.mtd.db
        sql = self.grouping_sql(self.config.data_columns)
        physical_sql = self.mtd.transform_sql(TENANT, sql)
        db.execute(physical_sql)  # warm
        ms = 0.0
        for _ in range(repetitions):
            trace = db.trace(physical_sql, analyze=False)
            ms += self.cost_model.response_ms(trace.pool, trace.exec)
        return ms / repetitions
