"""Dynamic sanitizer (CON rules): clean runs stay clean, each seeded
defect is caught by exactly the rule built for it."""

import pytest

from repro.analysis.sanitizers import (
    MUTATE_SKIP_APPEND,
    Sanitizer,
    env_sanitize_enabled,
    run_sanitized_scenario,
)
from repro.engine.database import Database
from repro.engine.durability import DurabilityOptions


@pytest.fixture()
def sdb(tmp_path):
    db = Database(path=str(tmp_path / "db"), sanitize=True)
    yield db
    db.close()


class TestScenarioGate:
    def test_clean_scenario_reports_nothing(self):
        report, overhead = run_sanitized_scenario()
        assert report.ok
        assert report.findings == []
        assert report.checked > 0
        # The acceptance budget is < 3x; leave headroom for CI noise.
        assert overhead < 3.0

    def test_skip_wal_append_mutation_fires_con002(self):
        report, _ = run_sanitized_scenario(mutate=MUTATE_SKIP_APPEND)
        rules = report.by_rule()
        assert rules.get("CON002", 0) >= 1
        assert not report.ok


class TestWriteAheadChecks:
    def test_normal_dml_is_covered(self, sdb):
        sdb.execute("CREATE TABLE t (id INTEGER NOT NULL)")
        sdb.execute("INSERT INTO t VALUES (1)")
        sdb.execute("UPDATE t SET id = 2 WHERE id = 1")
        sdb.execute("DELETE FROM t WHERE id = 2")
        assert sdb.sanitizer.report.ok

    def test_skipped_append_is_caught_per_statement(self, tmp_path):
        db = Database(
            path=str(tmp_path / "mut"),
            sanitize=True,
            durability=DurabilityOptions(mutate=MUTATE_SKIP_APPEND),
        )
        db.execute("CREATE TABLE t (id INTEGER NOT NULL)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.sanitizer.report.by_rule().get("CON002") == 1
        db.close()

    def test_recovery_replay_is_not_a_violation(self, tmp_path):
        """Replay re-applies heap mutations with logging suppressed —
        by design, not a write-ahead violation."""
        path = str(tmp_path / "recov")
        db = Database(path=path)
        db.execute("CREATE TABLE t (id INTEGER NOT NULL)")
        db.execute("INSERT INTO t VALUES (1)")
        db.close()
        recovered = Database(path=path, sanitize=True)
        assert recovered.execute("SELECT id FROM t").rows == [(1,)]
        assert recovered.sanitizer.report.ok
        recovered.close()


class TestLocksetRaces:
    def test_disjoint_locksets_report_once(self):
        db = Database(sanitize=True)
        db.execute("CREATE TABLE t (id INTEGER NOT NULL)")
        db.execute("CREATE UNIQUE INDEX t_pk ON t (id)")
        db.execute("INSERT INTO t VALUES (1)")
        for worker in (1, 2, 1, 2):
            db.locks.acquire(worker, ("mine", worker), exclusive=True)
            db.execute("UPDATE t SET id = 1 WHERE id = 1")
            db.locks.release_session(worker)
        rules = db.sanitizer.report.by_rule()
        assert rules.get("CON001", 0) == 1  # reported once per resource

    def test_common_lock_is_clean(self):
        db = Database(sanitize=True)
        db.execute("CREATE TABLE t (id INTEGER NOT NULL)")
        db.execute("CREATE UNIQUE INDEX t_pk ON t (id)")
        db.execute("INSERT INTO t VALUES (1)")
        for worker in (1, 2, 3):
            db.locks.acquire(worker, ("rows", "t", 1), exclusive=True)
            db.execute("UPDATE t SET id = 1 WHERE id = 1")
            db.locks.release_session(worker)
        assert db.sanitizer.report.ok

    def test_single_session_never_reports(self):
        db = Database(sanitize=True)
        db.execute("CREATE TABLE t (id INTEGER NOT NULL)")
        for i in range(5):
            db.execute("INSERT INTO t VALUES (?)", [i])
        db.execute("UPDATE t SET id = 9 WHERE id = 0")
        assert db.sanitizer.report.ok


class TestLeakChecks:
    def test_unreleased_session_reports_con005(self, sdb):
        sdb.locks.acquire(7, ("table", "t"), exclusive=True)
        sdb.close()
        assert sdb.sanitizer.report.by_rule().get("CON005") == 1

    def test_open_transaction_reports_con006(self, sdb):
        sdb.execute("CREATE TABLE t (id INTEGER NOT NULL)")
        sdb.execute("BEGIN")
        sdb.execute("INSERT INTO t VALUES (1)")
        sdb.close()
        assert sdb.sanitizer.report.by_rule().get("CON006") == 1

    def test_leaked_pin_reports_con004(self, sdb):
        sdb.execute("CREATE TABLE t (id INTEGER NOT NULL)")
        sdb.execute("INSERT INTO t VALUES (1)")
        page_id = next(iter(sdb.pool._frames))
        sdb.pool.read(page_id, pin=True)  # never unpinned
        sdb.execute("INSERT INTO t VALUES (2)")
        assert sdb.sanitizer.report.by_rule().get("CON004") == 1
        # Reported once, not once per following statement.
        sdb.execute("INSERT INTO t VALUES (3)")
        assert sdb.sanitizer.report.by_rule().get("CON004") == 1


class TestWiring:
    def test_env_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not env_sanitize_enabled()
        assert Database().sanitizer is None
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert env_sanitize_enabled()
        assert Database().sanitizer is not None
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not env_sanitize_enabled()

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Database(sanitize=False).sanitizer is None

    def test_attach_points(self):
        db = Database(sanitize=True)
        assert isinstance(db.sanitizer, Sanitizer)
        assert db.locks.sanitizer is db.sanitizer
        assert db.pool.sanitizer is db.sanitizer
        assert db.transactions.sanitizer is db.sanitizer

    def test_findings_feed_metrics(self, sdb):
        sdb.locks.acquire(5, ("table", "x"), exclusive=True)
        sdb.close()
        assert sdb.metrics.value("analysis.rule.CON005") == 1
        assert sdb.metrics.value("analysis.sanitizer.findings") == 1
