"""Tenant-isolation verifier across all seven layouts.

Covers both cache keyings: the directly-executed shape (tenant guards
inlined as literals) and the shape-shared cached shape (guards as
hidden parameters in the :class:`TenantParamAllocator` range), plus the
chunk layout's legacy-tenant fallback after an online grant.
"""

import pytest

from repro import MultiTenantDatabase
from repro.analysis.isolation import GuardContext, IsolationVerifier
from repro.analysis.mutation import apply_mutation
from repro.analysis.runner import shared_table_map_from_catalog
from repro.core.transform.query import TenantParamAllocator
from repro.engine.sql.parser import parse_statement
from repro.engine.statement_cache import count_params

from ..core.conftest import ALL_LAYOUTS, build_running_example

LOGICAL = [
    "SELECT aid, name FROM account WHERE aid = ?",
    "SELECT COUNT(*) FROM account",
    "SELECT name FROM account WHERE opened > '2000-01-01' ORDER BY aid",
]


def make_verifier(mtd):
    return IsolationVerifier(shared_table_map_from_catalog(mtd.db.catalog))


def direct_findings(mtd, tenant_id, sql):
    verifier = make_verifier(mtd)
    physical = mtd._physical_select(tenant_id, parse_statement(sql))
    report = verifier.check_statement(
        physical, GuardContext(expected_tenant=tenant_id), sql
    )
    return report


def shared_findings(mtd, tenant_id, sql):
    verifier = make_verifier(mtd)
    stmt = parse_statement(sql)
    allocator = TenantParamAllocator(count_params(stmt))
    physical = mtd._physical_select(tenant_id, stmt, allocator)
    context = GuardContext(
        expected_tenant=tenant_id,
        tenant_param_range=(
            allocator.base_params,
            allocator.base_params + allocator.count,
        ),
    )
    return verifier.check_statement(physical, context, sql)


@pytest.mark.parametrize("layout", ALL_LAYOUTS)
@pytest.mark.parametrize("sql", LOGICAL)
def test_direct_statements_are_guarded(layout, sql):
    mtd = build_running_example(layout)
    for tenant_id in (17, 35, 42):
        report = direct_findings(mtd, tenant_id, sql)
        assert report.ok, [f.message for f in report.findings]
        assert report.checked >= 1


@pytest.mark.parametrize("layout", ALL_LAYOUTS)
@pytest.mark.parametrize("sql", LOGICAL)
def test_shape_shared_statements_are_guarded(layout, sql):
    mtd = build_running_example(layout)
    if not mtd.layout.shares_statements:
        pytest.skip(f"{layout} does not share cached statements")
    for tenant_id in (17, 35, 42):
        report = shared_findings(mtd, tenant_id, sql)
        assert report.ok, [f.message for f in report.findings]


def test_basic_layout_is_guarded():
    # ``basic`` cannot host extensions, so it gets its own testbed.
    mtd = MultiTenantDatabase(layout="basic")
    from ..core.conftest import account_table

    mtd.define_table(account_table())
    mtd.create_tenant(17)
    mtd.create_tenant(35)
    mtd.insert(17, "account", {"aid": 1, "name": "Acme"})
    for tenant_id in (17, 35):
        for sql in LOGICAL:
            assert direct_findings(mtd, tenant_id, sql).ok
            assert shared_findings(mtd, tenant_id, sql).ok


def test_cache_keying_private_vs_shared():
    private = build_running_example("private")
    shared = build_running_example("extension")
    assert private.layout.statement_shape(17)[0] == "tenant"
    assert private.layout.statement_shape(17) != private.layout.statement_shape(35)
    assert shared.layout.statement_shape(17)[0] == "shape"
    # Same extension set -> same shape; 17 and 42 differ.
    assert shared.layout.statement_shape(17) != shared.layout.statement_shape(42)


@pytest.mark.parametrize("layout", ["extension", "universal", "pivot", "chunk"])
def test_dropped_guard_is_caught(layout):
    mtd = build_running_example(layout)
    apply_mutation(mtd, "drop-tenant-guard")
    rules = set()
    for sql in LOGICAL:
        report = direct_findings(mtd, 17, sql)
        rules |= {f.rule_id for f in report.errors}
    assert "ISO001" in rules, rules


def test_wrong_tenant_literal_is_caught():
    mtd = build_running_example("extension")
    verifier = make_verifier(mtd)
    physical = mtd._physical_select(17, parse_statement(LOGICAL[0]))
    report = verifier.check_statement(
        physical, GuardContext(expected_tenant=35), "cross-tenant"
    )
    assert "ISO005" in {f.rule_id for f in report.errors}


def test_literal_guard_in_shared_statement_is_caught():
    # A statement destined for the shape-shared cache must not pin a
    # tenant id as a literal: every other tenant with the same shape
    # would replay it.
    mtd = build_running_example("extension")
    verifier = make_verifier(mtd)
    physical = mtd._physical_select(17, parse_statement(LOGICAL[0]))
    report = verifier.check_statement(
        physical,
        GuardContext(expected_tenant=17, tenant_param_range=(1, 2)),
        "literal-in-shared",
    )
    assert "ISO003" in {f.rule_id for f in report.errors}


def test_chunk_legacy_tenant_after_online_grant():
    mtd = build_running_example("chunk")
    before = mtd.layout.statement_shape(35)
    mtd.grant_extension(35, "automotive")
    # The tenant's chunks were appended, not repartitioned, so it now
    # keys its cached statements per tenant instead of per shape.
    assert 35 in mtd.layout._legacy_tenants
    after = mtd.layout.statement_shape(35)
    assert after != before
    assert after != mtd.layout.statement_shape(42)
    # And the post-ALTER statements stay fully guarded for everyone.
    for tenant_id in (17, 35, 42):
        for sql in LOGICAL:
            assert direct_findings(mtd, tenant_id, sql).ok
    assert direct_findings(
        mtd, 35, "SELECT aid, dealers FROM account WHERE dealers IS NULL"
    ).ok


@pytest.mark.parametrize("layout", ALL_LAYOUTS)
def test_dml_statements_are_guarded(layout):
    from repro.analysis.runner import record_statements

    mtd = build_running_example(layout)
    verifier = make_verifier(mtd)
    with record_statements(mtd.db) as recorded:
        mtd.execute(
            17, "INSERT INTO account (aid, name) VALUES (?, ?)", (9, "Probe")
        )
        mtd.execute(17, "UPDATE account SET name = 'P2' WHERE aid = ?", (9,))
        mtd.execute(17, "DELETE FROM account WHERE aid = ?", (9,))
    assert recorded
    for stmt in recorded:
        report = verifier.check_statement(
            stmt, GuardContext(expected_tenant=17), "dml"
        )
        assert report.ok, [f.message for f in report.findings]


# -- fused cross-tenant statements (ISO006) -----------------------------------


def cross_groups(mtd, sql, ids):
    from repro.core.transform.crosstenant import CrossTenantTransformer

    transformer = CrossTenantTransformer(
        mtd.schema, mtd.layout_for, mtd._physical_lookup
    )
    return transformer.transform(parse_statement(sql), ids).groups


@pytest.mark.parametrize("layout", ALL_LAYOUTS)
def test_fused_statements_dominated_by_declared_set(layout):
    mtd = build_running_example(layout)
    verifier = make_verifier(mtd)
    declared = (17, 42)
    for group in cross_groups(
        mtd, "SELECT name FROM account FOR TENANTS IN (17, 42)", declared
    ):
        report = verifier.check_statement(
            group.select, GuardContext(tenant_set=declared), "fused"
        )
        assert report.ok, [f.message for f in report.findings]


def test_inlist_beyond_declared_set_is_iso006():
    mtd = build_running_example("extension")
    verifier = make_verifier(mtd)
    # Build the fused statement for {17, 35, 42} but declare only
    # {17, 42}: the tenant IN-list now includes an undeclared tenant.
    for group in cross_groups(
        mtd, "SELECT name FROM account FOR TENANTS IN (17, 35, 42)",
        (17, 35, 42),
    ):
        report = verifier.check_statement(
            group.select, GuardContext(tenant_set=(17, 42)), "widened"
        )
        assert "ISO006" in {f.rule_id for f in report.errors}


def test_literal_equality_outside_set_is_iso006():
    mtd = build_running_example("private")
    verifier = make_verifier(mtd)
    # private fuses per tenant with tenant = <literal> pushdowns; a
    # group built for an undeclared tenant must be refused.
    groups = cross_groups(
        mtd, "SELECT name FROM account FOR TENANTS IN (35)", (35,)
    )
    rules = set()
    for group in groups:
        report = verifier.check_statement(
            group.select, GuardContext(tenant_set=(17, 42)), "wrong-tenant"
        )
        rules |= {f.rule_id for f in report.errors}
    # private tables carry no shared meta columns, so domination is
    # trivially satisfied there; shared layouts carry the check.
    mtd2 = build_running_example("universal")
    verifier2 = make_verifier(mtd2)
    for group in cross_groups(
        mtd2, "SELECT name FROM account FOR TENANTS IN (35)", (35,)
    ):
        report = verifier2.check_statement(
            group.select, GuardContext(tenant_set=(17, 42)), "wrong-tenant"
        )
        rules |= {f.rule_id for f in report.errors}
    assert "ISO006" in rules, rules


def test_parameter_tenant_guard_in_cross_statement_is_iso006():
    mtd = build_running_example("extension")
    verifier = make_verifier(mtd)
    stmt = parse_statement(
        "SELECT name FROM account_ext WHERE tenant = ?"
    )
    report = verifier.check_statement(
        stmt, GuardContext(tenant_set=(17, 42)), "param-guard"
    )
    assert "ISO006" in {f.rule_id for f in report.errors}


def test_negated_or_non_literal_inlist_is_no_guard():
    mtd = build_running_example("extension")
    verifier = make_verifier(mtd)
    context = GuardContext(tenant_set=(17, 42))
    for sql in (
        "SELECT name FROM account_ext WHERE tenant NOT IN (17, 42)",
        "SELECT name FROM account_ext WHERE tenant IN (17, ?)",
    ):
        report = verifier.check_statement(parse_statement(sql), context, sql)
        assert "ISO001" in {f.rule_id for f in report.errors}, sql


def test_inlist_outside_cross_context_is_no_guard():
    # A tenant IN-list only dominates under a declared tenant set;
    # single-tenant disciplines must still refuse it.
    mtd = build_running_example("extension")
    verifier = make_verifier(mtd)
    report = verifier.check_statement(
        parse_statement("SELECT name FROM account_ext WHERE tenant IN (17)"),
        GuardContext(expected_tenant=17),
        "single-tenant-inlist",
    )
    assert "ISO001" in {f.rule_id for f in report.errors}


def test_widen_crosstenant_mutation_is_caught_end_to_end():
    from repro.analysis.runner import AnalysisConfig, run_analysis

    config = AnalysisConfig(
        layouts=("extension",),
        variabilities=(0.0,),
        tenants=2,
        rows_per_table=1,
        admin_ops=False,
        mutate="widen-crosstenant",
    )
    report = run_analysis(config)
    assert not report.ok
    assert "ISO006" in {f.rule_id for f in report.errors}
