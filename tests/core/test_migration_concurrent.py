"""migrate_tenant under concurrent writes to the same tenant.

Two concurrency models, both seeded by ``replay_rng``:

* *Seeded interleaving* — a random schedule of writes with layout
  migrations spliced in at random positions, checked against a shadow
  model.  This explores orderings deterministically (replay with
  ``REPRO_TEST_SEED``).
* *Threaded submitters* — real threads race to enqueue writes and a
  migration onto one shard worker thread (the cluster's concurrency
  model).  The interleaving is scheduler-chosen, but the invariant —
  every acknowledged write survives the migration exactly once — must
  hold for all of them.
"""

import threading

import pytest

from repro.cluster import ShardWorker, ShardOptions

from .conftest import (
    EXTENSIBLE_LAYOUTS,
    account_table,
    automotive_extension,
    build_running_example,
    healthcare_extension,
)

TENANT = 17


def logical_rows(mtd, tenant=TENANT):
    return sorted(
        mtd.execute(
            tenant, "SELECT aid, name, hospital, beds FROM account"
        ).rows
    )


class TestSeededInterleaving:
    def test_random_schedules_with_migrations(self, replay_rng):
        for _schedule in range(3):
            mtd = build_running_example("chunk_folding")
            shadow = {
                aid: (aid, name, hospital, beds)
                for aid, name, hospital, beds in mtd.execute(
                    TENANT, "SELECT aid, name, hospital, beds FROM account"
                ).rows
            }
            next_aid = 100
            ops = []
            for _ in range(30):
                ops.append(("write", None))
            for layout in replay_rng.sample(EXTENSIBLE_LAYOUTS, 2):
                ops.insert(
                    replay_rng.randrange(len(ops) + 1), ("migrate", layout)
                )
            for op, layout in ops:
                if op == "migrate":
                    mtd.migrate_tenant(TENANT, layout)
                    continue
                roll = replay_rng.random()
                if roll < 0.6 or not shadow:
                    values = {
                        "aid": next_aid,
                        "name": f"w{next_aid}",
                        "beds": replay_rng.randrange(500),
                    }
                    mtd.insert(TENANT, "account", values)
                    shadow[next_aid] = (
                        next_aid,
                        values["name"],
                        None,
                        values["beds"],
                    )
                    next_aid += 1
                elif roll < 0.8:
                    aid = replay_rng.choice(list(shadow))
                    mtd.execute(
                        TENANT,
                        f"UPDATE account SET beds = 7 WHERE aid = {aid}",
                    )
                    row = shadow[aid]
                    shadow[aid] = (row[0], row[1], row[2], 7)
                else:
                    aid = replay_rng.choice(list(shadow))
                    mtd.execute(
                        TENANT, f"DELETE FROM account WHERE aid = {aid}"
                    )
                    del shadow[aid]
            assert logical_rows(mtd) == sorted(shadow.values())
            # Other tenants rode through both migrations untouched.
            assert mtd.execute(35, "SELECT COUNT(*) FROM account").rows == [
                (1,)
            ]

    def test_migration_between_every_layout_pair_keeps_writes(
        self, replay_rng
    ):
        source, target = replay_rng.sample(EXTENSIBLE_LAYOUTS, 2)
        mtd = build_running_example(source)
        mtd.insert(TENANT, "account", {"aid": 50, "name": "mid", "beds": 3})
        mtd.migrate_tenant(TENANT, target)
        mtd.insert(TENANT, "account", {"aid": 51, "name": "post", "beds": 4})
        rows = logical_rows(mtd)
        aids = [row[0] for row in rows]
        assert 50 in aids and 51 in aids
        assert len(aids) == len(set(aids)), "duplicated rows after migrate"


class TestThreadedSubmitters:
    @pytest.mark.parametrize("target_layout", ["pivot", "universal"])
    def test_threads_race_migration(self, replay_rng, target_layout):
        shard = ShardWorker(
            "s0", options=ShardOptions(layout="chunk_folding")
        )
        try:
            shard.mtd.define_table(account_table())
            shard.mtd.define_extension(healthcare_extension())
            shard.mtd.define_extension(automotive_extension())
            shard.mtd.create_tenant(TENANT, extensions=("healthcare",))
            shard.adopt(TENANT, 1)
            writers, per_writer = 3, 12
            payloads = [
                [
                    {
                        "aid": 1000 * w + i,
                        "name": f"t{w}-{i}",
                        "beds": replay_rng.randrange(100),
                    }
                    for i in range(per_writer)
                ]
                for w in range(writers)
            ]
            start = threading.Barrier(writers + 1)
            futures = []

            def writer(rows):
                start.wait()
                for values in rows:
                    futures.append(
                        shard.pool.submit(
                            shard._do_insert, TENANT, "account", values
                        )
                    )

            def migrator():
                start.wait()
                futures.append(
                    shard.pool.submit(
                        shard.mtd.migrate_tenant, TENANT, target_layout
                    )
                )

            threads = [
                threading.Thread(target=writer, args=(rows,))
                for rows in payloads
            ] + [threading.Thread(target=migrator)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for future in futures:
                future.result()  # surface any engine error
            aids = sorted(
                aid
                for (aid,) in shard.mtd.execute(
                    TENANT, "SELECT aid FROM account"
                ).rows
            )
            expected = sorted(
                values["aid"] for rows in payloads for values in rows
            )
            assert aids == expected, "writes lost or duplicated"
            # The migration actually happened.
            assert shard.mtd._override_specs[TENANT][0] == target_layout
        finally:
            shard.close()
