"""Universal Table Layout — Figure 4(c).

One giant shared table with Tenant and Table meta-data columns and
``width`` generic VARCHAR data columns; the n-th column of each logical
source table maps to the n-th data column.  Rows are kept whole (no
reconstruction joins) at the price of wide rows, many NULLs, the
VARCHAR type funnel, and no per-tenant indexing ("either all tenants
get an index on a column or none of them do").
"""

from __future__ import annotations

from ...engine.errors import PlanError
from ...engine.values import TypeKind
from ..schema import Extension, LogicalTable, TenantConfig
from .base import ColumnLoc, Fragment, Layout, ROW

#: Read-side casts out of the VARCHAR funnel, per logical type kind.
_CASTS = {
    TypeKind.INTEGER: "TO_INT",
    TypeKind.BIGINT: "TO_INT",
    TypeKind.DOUBLE: "TO_DOUBLE",
    TypeKind.DATE: "TO_DATE",
    TypeKind.BOOLEAN: "TO_BOOL",
    TypeKind.VARCHAR: None,
}


class UniversalTableLayout(Layout):
    name = "universal"
    shares_statements = True
    default_storage = "columnar"

    def __init__(self, db, schema, *, width: int = 60, **kwargs) -> None:
        super().__init__(db, schema, **kwargs)
        if width < 1:
            raise PlanError("universal width must be >= 1")
        self.width = width

    @property
    def physical(self) -> str:
        return "universal"

    def bootstrap(self) -> None:
        columns = [
            "tenant INTEGER NOT NULL",
            "tbl INTEGER NOT NULL",
            f"{ROW} INTEGER NOT NULL",
        ]
        columns += [f"col{i + 1} VARCHAR(255)" for i in range(self.width)]
        ddl = (
            f"CREATE TABLE {self.physical} ("
            + ", ".join(columns)
            + self._alive_ddl()
            + ")"
        )
        indexes = [
            f"CREATE UNIQUE INDEX {self.physical}_ttr ON {self.physical} "
            f"(tenant, tbl, {ROW})"
        ]
        self._ensure_table(self.physical, ddl, indexes)

    def on_table_added(self, table: LogicalTable) -> None:
        super().on_table_added(table)
        if len(table.columns) > self.width:
            raise PlanError(
                f"table {table.name} has {len(table.columns)} columns but the "
                f"Universal Table only has {self.width} data columns"
            )

    def on_extension_granted(self, config: TenantConfig, extension: Extension) -> None:
        logical = self.schema.logical_table(
            config.tenant_id, extension.base_table
        )
        if len(logical.columns) > self.width:
            raise PlanError(
                f"extension {extension.name} overflows the Universal Table "
                f"width ({self.width})"
            )
        super().on_extension_granted(config, extension)

    def on_extension_altered(self, extension: Extension, new_columns) -> None:
        super().on_extension_altered(extension, new_columns)
        base = self.schema.table(extension.base_table)
        total = len(base.columns) + len(extension.columns)
        if total > self.width:
            raise PlanError(
                f"altered extension {extension.name} overflows the "
                f"Universal Table width ({self.width})"
            )

    def fragments(self, tenant_id: int, table_name: str) -> list[Fragment]:
        logical = self.schema.logical_table(tenant_id, table_name)
        if len(logical.columns) > self.width:
            raise PlanError(
                f"{table_name} needs {len(logical.columns)} data columns, "
                f"Universal Table has {self.width}"
            )
        columns = []
        for i, column in enumerate(logical.columns):
            # "The n-th column of each logical source table for each
            # tenant is mapped into the n-th data column."
            columns.append(
                (
                    column.lname,
                    ColumnLoc(
                        physical=f"col{i + 1}",
                        cast=_CASTS[column.type.kind],
                        store=column.type.to_varchar,
                    ),
                )
            )
        return [
            Fragment(
                table=self.physical,
                meta=(
                    ("tenant", tenant_id),
                    ("tbl", self.schema.table_id(table_name)),
                ),
                columns=tuple(columns),
                row_column=ROW,
            )
        ]
