"""Tests for tenant churn: the add/delete-tenant administrative
actions and the churn workload mix."""

import pytest

from repro.core.api import MultiTenantDatabase
from repro.testbed.actions import (
    ACTION_DISTRIBUTION,
    CHURN_DISTRIBUTION,
    ActionClass,
    ActionExecutor,
)
from repro.testbed.crm import crm_tables
from repro.testbed.deck import CardDeck
from repro.testbed.generator import DataGenerator, TenantDataProfile


@pytest.fixture
def executor():
    mtd = MultiTenantDatabase(layout="extension")
    for table in crm_tables():
        mtd.define_table(table)
    profile = TenantDataProfile(default_rows=2)
    generator = DataGenerator(seed=1)
    mtd.create_tenant(1)
    generator.load_tenant(mtd, 1, crm_tables(), profile)
    return ActionExecutor(mtd, profile, generator, {1: 0}, seed=3)


class TestChurnActions:
    def test_tenant_add_creates_and_loads(self, executor):
        executor.run(ActionClass.TENANT_ADD, 1)
        new_tenant = executor._churn_tenants[-1]
        count = executor.mtd.execute(
            new_tenant, "SELECT COUNT(*) FROM account"
        ).rows[0][0]
        assert count == 2

    def test_tenant_delete_removes_latest_churned(self, executor):
        executor.run(ActionClass.TENANT_ADD, 1)
        victim = executor._churn_tenants[-1]
        executor.run(ActionClass.TENANT_DELETE, 1)
        from repro.engine.errors import UnknownObjectError

        with pytest.raises(UnknownObjectError):
            executor.mtd.execute(victim, "SELECT COUNT(*) FROM account")

    def test_delete_without_churned_tenants_is_noop(self, executor):
        executor.run(ActionClass.TENANT_DELETE, 1)
        assert executor.mtd.execute(1, "SELECT COUNT(*) FROM account").rows

    def test_original_tenants_never_deleted(self, executor):
        executor.run(ActionClass.TENANT_ADD, 1)
        executor.run(ActionClass.TENANT_DELETE, 1)
        executor.run(ActionClass.TENANT_DELETE, 1)
        assert executor.mtd.execute(
            1, "SELECT COUNT(*) FROM account"
        ).rows == [(2,)]

    def test_churned_tenant_usable_for_workload(self, executor):
        executor.run(ActionClass.TENANT_ADD, 1)
        new_tenant = executor._churn_tenants[-1]
        executor.run(ActionClass.SELECT_LIGHT, new_tenant)
        executor.run(ActionClass.INSERT_LIGHT, new_tenant)

    def test_churn_sequence(self, executor):
        for _ in range(3):
            executor.run(ActionClass.TENANT_ADD, 1)
        assert len(executor._churn_tenants) == 3
        executor.run(ActionClass.TENANT_DELETE, 1)
        assert len(executor._churn_tenants) == 2


class TestChurnDistribution:
    def test_includes_churn_classes(self):
        assert ActionClass.TENANT_ADD in CHURN_DISTRIBUTION
        assert ActionClass.TENANT_DELETE in CHURN_DISTRIBUTION
        assert ActionClass.TENANT_ADD not in ACTION_DISTRIBUTION

    def test_deck_with_churn_mix(self):
        deck = CardDeck(
            2000, [1, 2], seed=1, distribution=CHURN_DISTRIBUTION
        )
        counts = deck.class_counts()
        assert counts[ActionClass.TENANT_ADD] >= counts[ActionClass.TENANT_DELETE]
        assert counts[ActionClass.TENANT_ADD] > 0

    def test_churn_deck_runs_end_to_end(self, executor):
        deck = CardDeck(
            40, [1], seed=2, distribution=CHURN_DISTRIBUTION
        )
        while True:
            card = deck.deal()
            if card is None:
                break
            executor.run(card.action, card.tenant_id)
        # Original tenant intact, data present.
        assert executor.mtd.execute(
            1, "SELECT COUNT(*) FROM account"
        ).rows[0][0] >= 2
