"""Tenant-sharded cluster layer over the multi-tenant engine.

The SIGMOD 2008 paper's schema-mapping techniques consolidate many
tenants into one database; this package scales that out: many such
databases (shards), a consistent-hash placement catalog, an asyncio
front door speaking a length-prefixed JSON protocol, and online tenant
rebalancing built on the engine's export/insert and WAL machinery.
"""

from .cluster import Cluster
from .errors import (
    ClusterError,
    ProtocolError,
    RebalanceInProgressError,
    ShardClosedError,
    WrongShardError,
)
from .placement import PlacementCatalog
from .rebalance import Rebalancer
from .router import ClusterClient, ClusterServer, Router
from .shard import ShardOptions, ShardWorker

__all__ = [
    "Cluster",
    "ClusterClient",
    "ClusterError",
    "ClusterServer",
    "PlacementCatalog",
    "ProtocolError",
    "Rebalancer",
    "RebalanceInProgressError",
    "Router",
    "ShardClosedError",
    "ShardOptions",
    "ShardWorker",
    "WrongShardError",
]
