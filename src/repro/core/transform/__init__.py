"""Query and DML transformation (Sections 6.1 and 6.3 of the paper)."""

from .query import QueryTransformer, build_reconstruction, used_columns  # noqa: F401
from .dml import DmlTransformer, UpdateMode  # noqa: F401
from .flatten import flatten_transformed, order_predicates, PredicateOrder  # noqa: F401
