"""Durability subsystem: WAL, disk-backed page store, crash recovery.

The in-memory engine simulates physical I/O; this package makes it
real and recoverable:

* :mod:`wal` — an LSN-stamped write-ahead log of logical DML records,
  transaction terminals, DDL, admin-operation markers, and checkpoint
  snapshots, with group-commit fsync batching.
* :mod:`pagestore` — a log-structured disk page store behind
  :class:`~repro.engine.pager.BufferPool`: per-segment append files of
  CRC-framed, LSN-stamped page images.
* :mod:`manager` — ties both together: the WAL rule on dirty-page
  writeback, fuzzy checkpoints, admin-operation atomicity markers.
* :mod:`recovery` — ARIES-lite open-time recovery: load the last
  checkpoint, undo its in-flight transaction if it never terminated,
  then selectively redo the committed log suffix.
* :mod:`faults` — fault injection: named crashpoints, torn page
  writes, short fsyncs, and seeded mutations for testing the tester.
"""

from .faults import FaultInjector, SimulatedCrash
from .manager import DurabilityManager, DurabilityOptions
from .wal import WalStats, WriteAheadLog

__all__ = [
    "DurabilityManager",
    "DurabilityOptions",
    "FaultInjector",
    "SimulatedCrash",
    "WalStats",
    "WriteAheadLog",
]
