"""Single-session transactions with a logical undo log.

The testbed's transaction strategy (Section 4.2) assumes "the maximum
granularity for a transaction is the duration of a single user
request"; the engine supports exactly that: one open transaction per
database, BEGIN / COMMIT / ROLLBACK, undo via logical inverse
operations.  DDL is not transactional (as in many of the paper's
databases, which "cannot perform DDL operations while they are
on-line") — it commits any open transaction first.

RID stability: undoing a delete re-inserts the row at a fresh RID, so
the rollback replays entries newest-first and threads a remap table
through, keeping earlier entries pointed at the row's current location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .errors import EngineError
from .heap import RowId

if TYPE_CHECKING:  # pragma: no cover
    from .catalog import Table


@dataclass
class _InsertEntry:
    table: "Table"
    rid: RowId


@dataclass
class _DeleteEntry:
    table: "Table"
    rid: RowId
    row: tuple


@dataclass
class _UpdateEntry:
    table: "Table"
    old_rid: RowId
    old_row: tuple
    new_rid: RowId


class TransactionManager:
    """Undo-log bookkeeping for one database."""

    def __init__(self, *, metrics=None) -> None:
        self._log: list[object] | None = None
        self.committed = 0
        self.rolled_back = 0
        self._metrics = metrics

    @property
    def active(self) -> bool:
        return self._log is not None

    # -- lifecycle ----------------------------------------------------------

    def begin(self) -> None:
        if self.active:
            raise EngineError("a transaction is already open")
        self._log = []
        if self._metrics is not None:
            self._metrics.counter("txn.begun").inc()

    def commit(self) -> None:
        if not self.active:
            raise EngineError("no open transaction to commit")
        self._log = None
        self.committed += 1
        if self._metrics is not None:
            self._metrics.counter("txn.committed").inc()

    def commit_if_active(self) -> None:
        if self.active:
            self.commit()

    def rollback(self) -> None:
        if self._log is None:
            raise EngineError("no open transaction to roll back")
        log, self._log = self._log, None
        if self._metrics is not None:
            self._metrics.counter("txn.rolled_back").inc()
            self._metrics.histogram("txn.undo_entries").observe(len(log))
        remap: dict[tuple[int, RowId], RowId] = {}

        def resolve(table: "Table", rid: RowId) -> RowId:
            return remap.get((id(table), rid), rid)

        for entry in reversed(log):
            if isinstance(entry, _InsertEntry):
                entry.table.delete_row(resolve(entry.table, entry.rid))
            elif isinstance(entry, _DeleteEntry):
                new_rid = entry.table.insert_row(entry.row)
                remap[(id(entry.table), entry.rid)] = new_rid
            elif isinstance(entry, _UpdateEntry):
                current = resolve(entry.table, entry.new_rid)
                restored = entry.table.update_row(current, entry.old_row)
                if restored != entry.old_rid:
                    remap[(id(entry.table), entry.old_rid)] = restored
        self.rolled_back += 1

    # -- recording (no-ops outside a transaction) -------------------------------

    def record_insert(self, table: "Table", rid: RowId) -> None:
        if self._log is not None:
            self._log.append(_InsertEntry(table, rid))

    def record_delete(self, table: "Table", rid: RowId, row: tuple) -> None:
        if self._log is not None:
            self._log.append(_DeleteEntry(table, rid, row))

    def record_update(
        self, table: "Table", old_rid: RowId, old_row: tuple, new_rid: RowId
    ) -> None:
        if self._log is not None:
            self._log.append(_UpdateEntry(table, old_rid, old_row, new_rid))
