"""The cluster facade: one object owning catalog, shards, router, and
rebalancer.

Directory layout for a durable cluster rooted at ``path``::

    path/
      catalog.json          placement catalog + rebalance journal
      shards/<name>/        one engine directory per shard (WAL, pages)

Schema definition (``define_table`` / ``define_extension``) broadcasts
to every shard — the logical application schema is cluster-wide, as in
the paper's SaaS model — while tenants live on exactly one shard each,
chosen by the placement catalog.

:meth:`Cluster.open` is crash recovery: each shard recovers through its
own WAL, then the rebalance journal is resolved (roll the move back
before its commit point, forward after), then per-shard ownership sets
are rebuilt from the catalog.  A cluster that died mid-rebalance comes
back with the moving tenant on exactly one shard.
"""

from __future__ import annotations

import asyncio
from pathlib import Path

from ..engine.database import Result
from ..engine.durability import DurabilityOptions
from ..engine.durability.faults import FaultInjector
from ..engine.observability import MetricsRegistry
from .errors import ClusterError
from .placement import PlacementCatalog
from .rebalance import Rebalancer
from .router import ClusterServer, Router
from .shard import ShardOptions, ShardWorker

CATALOG_FILE = "catalog.json"
SHARDS_DIR = "shards"


def _shard_names(shards: int | list[str] | tuple[str, ...]) -> list[str]:
    if isinstance(shards, int):
        if shards < 1:
            raise ClusterError("a cluster needs at least one shard")
        return [f"shard{i}" for i in range(shards)]
    names = list(shards)
    if not names:
        raise ClusterError("a cluster needs at least one shard")
    return names


class Cluster:
    """A tenant-sharded multi-tenant database cluster."""

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        shards: int | list[str] | tuple[str, ...] = 2,
        options: ShardOptions | None = None,
        replicas: int = 64,
        faults: FaultInjector | None = None,
        _open: bool = False,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.options = options or ShardOptions()
        self.metrics = MetricsRegistry()
        #: Cluster-level fault injection (rebalance crashpoints); the
        #: per-shard engines have their own injectors via
        #: ``options.durability``.
        self.faults = faults
        self._closed = False
        catalog_path = None
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
            catalog_path = self.path / CATALOG_FILE
        if _open:
            assert catalog_path is not None
            self.catalog = PlacementCatalog.load(catalog_path)
            names = self.catalog.shards
        else:
            names = _shard_names(shards)
            self.catalog = PlacementCatalog(
                names, replicas=replicas, path=catalog_path
            )
        self.shards: dict[str, ShardWorker] = {}
        for name in names:
            shard_path = (
                self.path / SHARDS_DIR / name if self.path is not None else None
            )
            self.shards[name] = ShardWorker(
                name,
                shard_path,
                options=self.options,
                metrics=self.metrics,
                recover=_open,
            )
        if _open:
            self._resolve_journal()
        self._rebuild_ownership()
        self.catalog.save()
        self.router = Router(self.catalog, self.shards, metrics=self.metrics)
        self.rebalancer = Rebalancer(
            self.catalog,
            self.shards,
            self.router,
            metrics=self.metrics,
            faults=self.faults,
        )

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        options: ShardOptions | None = None,
        faults: FaultInjector | None = None,
    ) -> "Cluster":
        """Recover a durable cluster from its directory."""
        return cls(path, options=options, faults=faults, _open=True)

    # -- recovery ------------------------------------------------------------

    def _resolve_journal(self) -> None:
        journal = self.catalog.rebalance
        if journal is None:
            return
        tenant_id = journal["tenant_id"]
        phase = journal["phase"]
        if phase == "purge":
            # Past the commit point: the catalog already pins the
            # tenant to the destination — finish the purge.
            shard = self.shards[journal["source"]]
        else:
            # Before the commit point: the source is authoritative —
            # discard the partial destination copy.
            shard = self.shards[journal["dest"]]
        if tenant_id in shard.mtd.tenant_ids():
            shard.mtd.drop_tenant(tenant_id)
        self.catalog.clear_rebalance()

    def _rebuild_ownership(self) -> None:
        for shard in self.shards.values():
            for tenant_id in shard.mtd.tenant_ids():
                if self.catalog.shard_for(tenant_id) == shard.name:
                    shard.adopt(tenant_id, self.catalog.version)

    # -- schema & tenants (synchronous admin plane) --------------------------

    def define_table(self, table) -> None:
        for shard in self.shards.values():
            shard.mtd.define_table(table)

    def define_extension(self, extension) -> None:
        for shard in self.shards.values():
            shard.mtd.define_extension(extension)

    def create_tenant(
        self, tenant_id: int, extensions: tuple[str, ...] = ()
    ) -> str:
        """Create a tenant on its placed shard; returns the shard name."""
        name = self.catalog.shard_for(tenant_id)
        shard = self.shards[name]
        shard.mtd.create_tenant(tenant_id, extensions)
        shard.adopt(tenant_id, self.catalog.version)
        return name

    def drop_tenant(self, tenant_id: int) -> None:
        name = self.catalog.shard_for(tenant_id)
        shard = self.shards[name]
        shard.mtd.drop_tenant(tenant_id)
        shard.disown(tenant_id, self.catalog.version)
        self.catalog.unpin(tenant_id)
        self.catalog.save()

    async def _scatter(
        self, job_name: str, *, timeout: float | None = None
    ) -> list:
        """Run one admin job on every shard's worker thread concurrently.

        A per-shard timeout bounds how long one stalled shard can hold
        the whole fan-out hostage; on expiry the gather fails with a
        :class:`ClusterError` naming the shard (the job itself keeps
        running on the worker thread — admin reads are side-effect
        free, so abandoning the result is safe)."""

        async def one(shard: ShardWorker):
            job = shard.submit(getattr(shard, job_name))
            if timeout is None:
                return await job
            try:
                return await asyncio.wait_for(job, timeout)
            except asyncio.TimeoutError:
                raise ClusterError(
                    f"shard {shard.name!r} did not answer "
                    f"{job_name.removeprefix('_do_')} within {timeout:g}s"
                ) from None

        return await asyncio.gather(
            *(one(shard) for shard in self.shards.values())
        )

    async def gather_tenant_ids(
        self, *, timeout: float | None = None
    ) -> list[int]:
        """Union of tenant ids across all shards, gathered concurrently."""
        ids: set[int] = set()
        for shard_ids in await self._scatter("_do_tenant_ids", timeout=timeout):
            ids.update(shard_ids)
        return sorted(ids)

    async def gather_tenant_row_counts(
        self, *, timeout: float | None = None
    ) -> dict[int, dict[str, int]]:
        """Per-tenant logical row counts across the whole cluster.

        Each shard counts its own tenants on its worker thread; the
        fan-out overlaps shard work, so the wall-clock cost is the
        slowest shard, not the sum."""
        merged: dict[int, dict[str, int]] = {}
        for counts in await self._scatter(
            "_do_tenant_row_counts", timeout=timeout
        ):
            merged.update(counts)
        return dict(sorted(merged.items()))

    def tenant_ids(self) -> list[int]:
        """Synchronous facade over the concurrent scatter-gather (for
        call sites with no event loop of their own)."""
        return asyncio.run(self.gather_tenant_ids())

    def tenant_row_counts(self) -> dict[int, dict[str, int]]:
        return asyncio.run(self.gather_tenant_row_counts())

    def shard_of(self, tenant_id: int) -> str:
        return self.catalog.shard_for(tenant_id)

    # -- data plane ----------------------------------------------------------

    async def execute(
        self, tenant_id: int, sql: str, params: tuple = ()
    ) -> Result:
        return await self.router.execute(tenant_id, sql, params)

    async def insert(
        self,
        tenant_id: int,
        table: str,
        values: dict,
        *,
        row_id: int | None = None,
    ) -> int:
        return await self.router.insert(tenant_id, table, values, row_id=row_id)

    async def rebalance(self, tenant_id: int, dest: str, **kwargs) -> dict:
        return await self.rebalancer.rebalance(tenant_id, dest, **kwargs)

    def serve(self, *, host: str = "127.0.0.1") -> ClusterServer:
        return ClusterServer(self.router, host=host)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self.shards.values():
            shard.close()
        self.catalog.save()

    def simulate_crash(self) -> None:
        """Power-cut the whole cluster: every shard dies unflushed; the
        catalog file stays as last atomically replaced."""
        if self._closed:
            return
        self._closed = True
        for shard in self.shards.values():
            shard.simulate_crash()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def default_durability(faults: FaultInjector | None = None) -> DurabilityOptions:
    """The shard durability options used unless overridden."""
    return DurabilityOptions(faults=faults)
