"""Logical query blocks and physical plan nodes."""

from .logical import QueryBlock, build_block, conjoin, split_conjuncts  # noqa: F401
