"""Cluster end-to-end: routing, isolation, the TCP front door, and
durable restart."""

import asyncio
import datetime

import pytest

from repro.cluster import Cluster, ClusterClient, ShardOptions
from repro.cluster.errors import ClusterError

from .conftest import build_cluster, other_shard, run, seed_rows


class TestRouting:
    def test_tenants_spread_over_shards(self, mem_cluster):
        homes = {t: mem_cluster.shard_of(t) for t in (17, 35, 42)}
        assert set(homes.values()) <= set(mem_cluster.shards)
        assert len(set(homes.values())) > 1, homes

    def test_execute_routes_to_owning_shard(self, mem_cluster):
        async def go():
            await seed_rows(mem_cluster)
            result = await mem_cluster.execute(
                17, "SELECT name, beds FROM account WHERE aid = 1"
            )
            assert result.rows == [("Acme", 135)]

        run(go())

    def test_tenant_isolation_across_shards(self, mem_cluster):
        async def go():
            await seed_rows(mem_cluster)
            for tenant, name in ((17, "Acme"), (35, "Ball"), (42, "Big")):
                result = await mem_cluster.execute(
                    tenant, "SELECT name FROM account"
                )
                assert result.rows == [(name,)]

        run(go())

    def test_data_lands_on_the_placed_shard_only(self, mem_cluster):
        async def go():
            await seed_rows(mem_cluster)
            home = mem_cluster.shard_of(17)
            for name, shard in mem_cluster.shards.items():
                tenants = shard.mtd.tenant_ids()
                assert (17 in tenants) == (name == home)

        run(go())

    def test_unroutable_placement_fails_fast(self, mem_cluster):
        async def go():
            # A tenant pinned somewhere that doesn't own it: the
            # redirect loop must give up, not spin.
            stranger = other_shard(mem_cluster, 17)
            mem_cluster.catalog.pin(17, stranger)
            with pytest.raises(ClusterError):
                await mem_cluster.execute(17, "SELECT 1 FROM account")
            redirects = mem_cluster.metrics.get(
                "cluster.router.redirects"
            )
            assert redirects.value > 0

        run(go())

    def test_router_metrics_flow(self, mem_cluster):
        async def go():
            await seed_rows(mem_cluster)
            assert (
                mem_cluster.metrics.get("cluster.router.requests").value
                >= 3
            )
            latency = mem_cluster.metrics.get("cluster.router.latency_ms")
            assert latency.count >= 3

        run(go())

    def test_tenant_ids_union(self, mem_cluster):
        assert mem_cluster.tenant_ids() == [17, 35, 42]

    def test_drop_tenant(self, mem_cluster):
        mem_cluster.drop_tenant(35)
        assert mem_cluster.tenant_ids() == [17, 42]


class TestServer:
    def test_wire_round_trip(self, mem_cluster):
        async def go():
            await seed_rows(mem_cluster)
            server = mem_cluster.serve()
            await server.start()
            client = ClusterClient("127.0.0.1", server.port)
            await client.connect()
            try:
                assert await client.ping()
                row_id = await client.insert(
                    35,
                    "account",
                    {
                        "aid": 2,
                        "name": "Cork",
                        "opened": datetime.date(2004, 5, 6),
                    },
                )
                assert isinstance(row_id, int)
                result = await client.execute(
                    35, "SELECT name, opened FROM account ORDER BY aid"
                )
                assert result.rows == [
                    ("Ball", datetime.date(2002, 3, 4)),
                    ("Cork", datetime.date(2004, 5, 6)),
                ]
            finally:
                await client.close()
                await server.stop()

        run(go())

    def test_placement_op_and_errors(self, mem_cluster):
        async def go():
            server = mem_cluster.serve()
            await server.start()
            client = ClusterClient("127.0.0.1", server.port)
            await client.connect()
            try:
                placement = await client.call({"op": "placement"})
                assert placement["version"] == mem_cluster.catalog.version
                assert set(placement["shards"]) == set(mem_cluster.shards)
                unknown_tenant = await client.request(
                    {"op": "execute", "tenant_id": 99, "sql": "SELECT 1 FROM account"}
                )
                assert not unknown_tenant["ok"]
                assert unknown_tenant["error"] == "UnknownObjectError"
                bad_op = await client.request({"op": "explode"})
                assert not bad_op["ok"]
                assert bad_op["error"] == "BadRequest"
                missing_field = await client.request({"op": "execute"})
                assert not missing_field["ok"]
                assert missing_field["error"] == "BadRequest"
            finally:
                await client.close()
                await server.stop()

        run(go())

    def test_garbage_frame_drops_connection_only(self, mem_cluster):
        async def go():
            server = mem_cluster.serve()
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"\xff\xff\xff\xffnonsense")
                await writer.drain()
                assert await reader.read() == b""  # dropped, no frame
                writer.close()
                await writer.wait_closed()
                # The server is still healthy for framed clients.
                client = ClusterClient("127.0.0.1", server.port)
                await client.connect()
                assert await client.ping()
                await client.close()
            finally:
                await server.stop()

        run(go())

    def test_concurrent_sessions_interleave(self, mem_cluster):
        async def session(server, tenant, count):
            client = ClusterClient("127.0.0.1", server.port)
            await client.connect()
            try:
                for i in range(count):
                    await client.insert(
                        tenant, "account", {"aid": 100 + i, "name": f"s{i}"}
                    )
                result = await client.execute(
                    tenant,
                    "SELECT COUNT(*) FROM account WHERE aid >= 100",
                )
                return result.rows[0][0]
            finally:
                await client.close()

        async def go():
            server = mem_cluster.serve()
            await server.start()
            try:
                counts = await asyncio.gather(
                    *(session(server, t, 5) for t in (17, 35, 42))
                )
                assert counts == [5, 5, 5]
            finally:
                await server.stop()

        run(go())


class TestDurability:
    def test_close_reopen_round_trip(self, tmp_path):
        cluster = build_cluster(tmp_path / "c")
        run(seed_rows(cluster))
        version = cluster.catalog.version
        cluster.close()
        reopened = Cluster.open(tmp_path / "c")
        try:
            assert reopened.tenant_ids() == [17, 35, 42]
            assert reopened.catalog.version >= version

            async def check():
                result = await reopened.execute(
                    17, "SELECT name, hospital FROM account"
                )
                assert result.rows == [("Acme", "St. Mary")]

            run(check())
        finally:
            reopened.close()

    def test_crash_reopen_keeps_committed_writes(self, tmp_path):
        cluster = build_cluster(tmp_path / "c")
        run(seed_rows(cluster))
        cluster.simulate_crash()
        reopened = Cluster.open(tmp_path / "c")
        try:
            async def check():
                for tenant, name in ((17, "Acme"), (35, "Ball"), (42, "Big")):
                    result = await reopened.execute(
                        tenant, "SELECT name FROM account"
                    )
                    assert result.rows == [(name,)]

            run(check())
        finally:
            reopened.close()

    def test_double_close_is_safe(self, tmp_path):
        cluster = build_cluster(tmp_path / "c")
        cluster.close()
        cluster.close()

    def test_memory_cluster_cannot_reopen(self, mem_cluster):
        assert mem_cluster.path is None

    def test_storage_latency_option_accepted(self):
        cluster = build_cluster(
            options=ShardOptions(storage_latency_ms=0.1)
        )
        try:
            async def go():
                await cluster.insert(17, "account", {"aid": 9, "name": "z"})
                result = await cluster.execute(
                    17, "SELECT COUNT(*) FROM account"
                )
                assert result.rows == [(1,)]

            run(go())
        finally:
            cluster.close()


class TestScatterGather:
    """The admin plane fans out to shard workers concurrently: the
    wall-clock cost of a cluster-wide read is the slowest shard, not
    the sum of all shards."""

    @staticmethod
    def _slow_down(cluster, delay, shards=None):
        """Make each shard's tenant_ids job sleep on its worker thread."""
        import time

        for name, shard in cluster.shards.items():
            if shards is not None and name not in shards:
                continue
            original = shard.mtd.tenant_ids

            def slowed(original=original):
                time.sleep(delay)
                return original()

            shard.mtd.tenant_ids = slowed

    def test_gather_matches_serial_union(self, mem_cluster):
        assert run(mem_cluster.gather_tenant_ids()) == [17, 35, 42]

    def test_slow_shards_overlap_not_serialize(self):
        import time

        cluster = build_cluster(shards=4)
        try:
            delay = 0.2
            self._slow_down(cluster, delay)
            start = time.perf_counter()
            ids = run(cluster.gather_tenant_ids())
            elapsed = time.perf_counter() - start
            assert ids == [17, 35, 42]
            # Serial fan-out would cost ~4 * delay; concurrent
            # scatter-gather costs ~1 * delay.  Allow generous slack
            # for thread scheduling while staying far under serial.
            assert elapsed < 2.5 * delay, elapsed
        finally:
            cluster.close()

    def test_one_slow_shard_does_not_block_others(self, mem_cluster):
        import time

        slow = next(iter(mem_cluster.shards))
        self._slow_down(mem_cluster, 0.3, shards={slow})

        async def go():
            # The fast shards' results are available while the slow
            # shard is still sleeping; the gather completes in ~one
            # slow-shard delay.
            start = time.perf_counter()
            ids = await mem_cluster.gather_tenant_ids()
            return ids, time.perf_counter() - start

        ids, elapsed = run(go())
        assert ids == [17, 35, 42]
        assert elapsed < 0.75, elapsed

    def test_per_shard_timeout_names_the_shard(self, mem_cluster):
        slow = next(iter(mem_cluster.shards))
        self._slow_down(mem_cluster, 0.5, shards={slow})
        with pytest.raises(ClusterError, match=slow):
            run(mem_cluster.gather_tenant_ids(timeout=0.05))

    def test_gather_tenant_row_counts_merges_shards(self, mem_cluster):
        run(seed_rows(mem_cluster))
        counts = run(mem_cluster.gather_tenant_row_counts())
        assert counts == {
            17: {"account": 1},
            35: {"account": 1},
            42: {"account": 1},
        }
        # The sync facade sees the same cluster-wide view.
        assert mem_cluster.tenant_row_counts() == counts
