"""Pass 1 — semantic analysis of SQL ASTs against a schema.

A name/type resolver over :mod:`repro.engine.sql.ast` nodes: unknown
tables and columns, ambiguous references, duplicate bindings, INSERT
shape mismatches, unknown functions, and type-incompatible comparisons
and assignments.  The checks mirror the engine's (lenient) runtime
coercion rules — ints compare against doubles and booleans, ISO strings
against DATEs — so anything the analyzer rejects would also misbehave
or raise at execution time, just later and less legibly.

Two schema providers exist: :class:`CatalogProvider` resolves against a
physical :class:`~repro.engine.catalog.Catalog` (used by
``Database.prepare``), and :class:`LogicalSchemaProvider` resolves
against one tenant's logical view of a
:class:`~repro.core.schema.MultiTenantSchema`.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any, Protocol

from ..engine.errors import TypeMismatchError
from ..engine.plan.logical import output_name
from ..engine.sql import ast
from ..engine.values import SqlType, TypeKind
from .findings import AnalysisReport, Finding

#: Scalar functions the engine compiles, with (min, max) arity.
SCALAR_FUNCTIONS: dict[str, tuple[int, int | None]] = {
    "LENGTH": (1, 1),
    "UPPER": (1, 1),
    "LOWER": (1, 1),
    "COALESCE": (1, None),
    "ABS": (1, 1),
    "TO_INT": (1, 1),
    "TO_DOUBLE": (1, 1),
    "TO_DATE": (1, 1),
    "TO_BOOL": (1, 1),
    "TO_STR": (1, 1),
}

AGGREGATE_FUNCTIONS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}

#: Kinds that compare against each other without surprises.  Booleans
#: are stored as ints by the generic layouts, and the engine coerces ISO
#: strings to DATEs, so those pairs are compatible by design.
_NUMERIC = {TypeKind.INTEGER, TypeKind.BIGINT, TypeKind.DOUBLE, TypeKind.BOOLEAN}


def comparable(left: SqlType | None, right: SqlType | None) -> bool:
    """Whether a comparison between these types is meaningful."""
    if left is None or right is None:
        return True  # unknown (parameters, unresolved) — stay permissive
    a, b = left.kind, right.kind
    if a == b:
        return True
    if a in _NUMERIC and b in _NUMERIC:
        return True
    pair = {a, b}
    if pair == {TypeKind.DATE, TypeKind.VARCHAR}:
        return True  # engine coerces ISO strings for DATE comparisons
    return False


class SchemaProvider(Protocol):
    """Name resolution surface shared by physical and logical schemas."""

    def has_table(self, name: str) -> bool: ...

    def table_columns(self, name: str) -> list[tuple[str, SqlType, bool]]:
        """``(lname, type, not_null)`` per column, in declaration order."""
        ...


class CatalogProvider:
    """Resolve against the engine's physical catalog."""

    def __init__(self, catalog: Any) -> None:
        self.catalog = catalog

    def has_table(self, name: str) -> bool:
        return self.catalog.has_table(name)

    def table_columns(self, name: str) -> list[tuple[str, SqlType, bool]]:
        table = self.catalog.table(name)
        return [(c.lname, c.type, c.not_null) for c in table.columns]


class LogicalSchemaProvider:
    """Resolve against one tenant's logical view of the shared schema."""

    def __init__(self, schema: Any, tenant_id: int) -> None:
        self.schema = schema
        self.tenant_id = tenant_id

    def has_table(self, name: str) -> bool:
        return self.schema.has_table(name)

    def table_columns(self, name: str) -> list[tuple[str, SqlType, bool]]:
        logical = self.schema.logical_table(self.tenant_id, name)
        return [(c.lname, c.type, c.not_null) for c in logical.columns]


class _Scope:
    """The bindings visible to one SELECT block (plus outer blocks)."""

    def __init__(self, parent: _Scope | None = None) -> None:
        self.parent = parent
        #: binding -> column lname -> type (None for unresolvable types).
        self.bindings: dict[str, dict[str, SqlType | None]] = {}
        #: Bindings whose table was unknown: suppress cascading errors.
        self.opaque: set[str] = set()

    def add(self, binding: str, columns: dict[str, SqlType | None]) -> bool:
        key = binding.lower()
        if key in self.bindings or key in self.opaque:
            return False
        self.bindings[key] = columns
        return True

    def add_opaque(self, binding: str) -> None:
        self.opaque.add(binding.lower())

    def resolve(
        self, ref: ast.ColumnRef
    ) -> tuple[SqlType | None, str | None]:
        """``(type, error)`` where error is a rule id or None."""
        column = ref.column.lower()
        if ref.table is not None:
            binding = ref.table.lower()
            scope: _Scope | None = self
            while scope is not None:
                if binding in scope.opaque:
                    return None, None
                columns = scope.bindings.get(binding)
                if columns is not None:
                    if column in columns:
                        return columns[column], None
                    return None, "SEM002"
                scope = scope.parent
            return None, "SEM002"
        matches: list[SqlType | None] = []
        scope = self
        while scope is not None:
            if scope.opaque:
                return None, None  # could resolve into the unknown table
            for columns in scope.bindings.values():
                if column in columns:
                    matches.append(columns[column])
            if matches:
                # Ambiguity is judged per block; outer blocks only apply
                # when no inner binding matches (correlation).
                break
            scope = scope.parent
        if not matches:
            return None, "SEM002"
        if len(matches) > 1:
            return None, "SEM003"
        return matches[0], None


class SemanticAnalyzer:
    """Resolves and type-checks one statement, producing findings."""

    def __init__(self, provider: SchemaProvider) -> None:
        self.provider = provider

    def analyze(self, stmt: ast.Statement, locus: str = "") -> AnalysisReport:
        report = AnalysisReport(checked=1)
        self._locus = locus
        self._report = report
        if isinstance(stmt, ast.Select):
            self._analyze_select(stmt, None)
        elif isinstance(stmt, ast.Insert):
            self._analyze_insert(stmt)
        elif isinstance(stmt, ast.Update):
            self._analyze_update(stmt)
        elif isinstance(stmt, ast.Delete):
            self._analyze_delete(stmt)
        # DDL is checked by the catalog itself.
        return report

    # -- helpers -----------------------------------------------------------

    def _flag(self, rule_id: str, message: str) -> None:
        self._report.add(Finding(rule_id, message, self._locus))

    def _table_scope_columns(self, name: str) -> dict[str, SqlType | None]:
        return {
            lname: sql_type
            for lname, sql_type, _ in self.provider.table_columns(name)
        }

    def _single_table_scope(self, name: str) -> _Scope | None:
        scope = _Scope()
        if not self.provider.has_table(name):
            self._flag("SEM001", f"unknown table {name!r}")
            return None
        scope.add(name, self._table_scope_columns(name))
        return scope

    # -- SELECT ------------------------------------------------------------

    def _analyze_select(
        self, select: ast.Select, parent: _Scope | None
    ) -> list[tuple[str, SqlType | None]]:
        """Analyze one block; returns its output columns ``(name, type)``."""
        scope = _Scope(parent)
        for source in select.sources:
            if isinstance(source, ast.SubquerySource):
                outputs = self._analyze_select(source.select, parent)
                added = scope.add(source.alias, dict(outputs))
            else:
                binding = source.binding
                if not self.provider.has_table(source.name):
                    self._flag("SEM001", f"unknown table {source.name!r}")
                    scope.add_opaque(binding)
                    continue
                added = scope.add(
                    binding, self._table_scope_columns(source.name)
                )
            if not added:
                self._flag(
                    "SEM004", f"duplicate source binding {source.binding!r}"
                )

        outputs: list[tuple[str, SqlType | None]] = []
        for position, item in enumerate(select.items):
            if isinstance(item.expr, ast.Star):
                if item.expr.table is not None:
                    binding = item.expr.table.lower()
                    columns = scope.bindings.get(binding)
                    if columns is None:
                        if binding not in scope.opaque:
                            self._flag(
                                "SEM002", f"unknown binding {binding!r} in *"
                            )
                        continue
                    outputs.extend(columns.items())
                else:
                    for columns in scope.bindings.values():
                        outputs.extend(columns.items())
                continue
            item_type = self._infer(item.expr, scope, aggregates_ok=True)
            outputs.append((output_name(item, position).lower(), item_type))

        if select.where is not None:
            where_type = self._infer(select.where, scope, aggregates_ok=False)
            self._check_predicate_type(where_type, "WHERE")
        alias_types = dict(outputs)
        for expr in select.group_by:
            self._infer(expr, scope, aggregates_ok=False, aliases=alias_types)
        if select.having is not None:
            having_type = self._infer(
                select.having, scope, aggregates_ok=True, aliases=alias_types
            )
            self._check_predicate_type(having_type, "HAVING")
        for order_item in select.order_by:
            self._infer(
                order_item.expr, scope, aggregates_ok=True, aliases=alias_types
            )
        return outputs

    def _check_predicate_type(self, inferred: SqlType | None, clause: str) -> None:
        if inferred is not None and inferred.kind is not TypeKind.BOOLEAN:
            self._flag(
                "SEM010",
                f"{clause} predicate has type {inferred.kind.value}, "
                "expected BOOLEAN",
            )

    # -- DML ---------------------------------------------------------------

    def _analyze_insert(self, insert: ast.Insert) -> None:
        if not self.provider.has_table(insert.table):
            self._flag("SEM001", f"unknown table {insert.table!r}")
            return
        table_columns = self.provider.table_columns(insert.table)
        by_name = {lname: (sql_type, nn) for lname, sql_type, nn in table_columns}
        if insert.columns:
            targets = []
            seen: set[str] = set()
            for name in insert.columns:
                lname = name.lower()
                if lname not in by_name:
                    self._flag(
                        "SEM002",
                        f"unknown column {name!r} in INSERT INTO {insert.table}",
                    )
                    targets.append((lname, None, False))
                    continue
                if lname in seen:
                    self._flag(
                        "SEM005", f"column {name!r} named twice in INSERT"
                    )
                seen.add(lname)
                sql_type, nn = by_name[lname]
                targets.append((lname, sql_type, nn))
            for lname, _sql_type, nn in table_columns:
                if nn and lname not in seen:
                    self._flag(
                        "SEM008",
                        f"NOT NULL column {lname!r} missing from INSERT "
                        f"INTO {insert.table}",
                    )
        else:
            targets = list(table_columns)
        for row in insert.rows:
            if len(row) != len(targets):
                self._flag(
                    "SEM005",
                    f"INSERT arity mismatch: {len(targets)} column(s), "
                    f"{len(row)} value(s)",
                )
                continue
            scope = _Scope()
            for (lname, sql_type, nn), value in zip(targets, row):
                value_type = self._infer(value, scope, aggregates_ok=False)
                self._check_assignment(insert.table, lname, sql_type, nn, value, value_type)

    def _check_assignment(
        self,
        table: str,
        column: str,
        sql_type: SqlType | None,
        not_null: bool,
        value: ast.Expr,
        value_type: SqlType | None,
    ) -> None:
        if sql_type is None:
            return
        if isinstance(value, ast.Literal):
            if value.value is None:
                if not_null:
                    self._flag(
                        "SEM008",
                        f"NULL assigned to NOT NULL column {table}.{column}",
                    )
                return
            try:
                sql_type.check(value.value)
            except TypeMismatchError as exc:
                self._flag("SEM008", f"{table}.{column}: {exc}")
            return
        if not comparable(sql_type, value_type):
            assert value_type is not None
            self._flag(
                "SEM008",
                f"{table}.{column} is {sql_type.kind.value} but value has "
                f"type {value_type.kind.value}",
            )

    def _analyze_update(self, update: ast.Update) -> None:
        scope = self._single_table_scope(update.table)
        if scope is None:
            return
        by_name = {
            lname: (sql_type, nn)
            for lname, sql_type, nn in self.provider.table_columns(update.table)
        }
        for name, value in update.assignments:
            lname = name.lower()
            value_type = self._infer(value, scope, aggregates_ok=False)
            if lname not in by_name:
                self._flag(
                    "SEM002",
                    f"unknown column {name!r} in UPDATE {update.table}",
                )
                continue
            sql_type, nn = by_name[lname]
            self._check_assignment(update.table, lname, sql_type, nn, value, value_type)
        if update.where is not None:
            where_type = self._infer(update.where, scope, aggregates_ok=False)
            self._check_predicate_type(where_type, "WHERE")

    def _analyze_delete(self, delete: ast.Delete) -> None:
        scope = self._single_table_scope(delete.table)
        if scope is None:
            return
        if delete.where is not None:
            where_type = self._infer(delete.where, scope, aggregates_ok=False)
            self._check_predicate_type(where_type, "WHERE")

    # -- expression typing -------------------------------------------------

    def _infer(
        self,
        expr: ast.Expr,
        scope: _Scope,
        *,
        aggregates_ok: bool,
        aliases: dict[str, SqlType | None] | None = None,
        in_aggregate: bool = False,
    ) -> SqlType | None:
        from ..engine import values

        recur = lambda e, **kw: self._infer(
            e,
            scope,
            aggregates_ok=aggregates_ok,
            aliases=aliases,
            in_aggregate=kw.get("in_aggregate", in_aggregate),
        )
        if isinstance(expr, ast.Literal):
            return _literal_type(expr.value)
        if isinstance(expr, ast.Param):
            return None
        if isinstance(expr, ast.ColumnRef):
            if (
                aliases is not None
                and expr.table is None
                and expr.column.lower() in aliases
            ):
                return aliases[expr.column.lower()]
            inferred, error = scope.resolve(expr)
            if error == "SEM002":
                name = (
                    f"{expr.table}.{expr.column}" if expr.table else expr.column
                )
                self._flag("SEM002", f"unknown column {name!r}")
            elif error == "SEM003":
                self._flag(
                    "SEM003", f"ambiguous column reference {expr.column!r}"
                )
            return inferred
        if isinstance(expr, ast.UnaryOp):
            operand = recur(expr.operand)
            op = expr.op.upper()
            if op == "NOT":
                return values.BOOLEAN
            if operand is not None and operand.kind not in _NUMERIC:
                self._flag(
                    "SEM007",
                    f"unary {op} applied to {operand.kind.value}",
                )
            return operand
        if isinstance(expr, ast.IsNull):
            recur(expr.operand)
            return values.BOOLEAN
        if isinstance(expr, ast.BinaryOp):
            return self._infer_binary(expr, recur)
        if isinstance(expr, ast.FuncCall):
            return self._infer_func(
                expr, recur, aggregates_ok=aggregates_ok, in_aggregate=in_aggregate
            )
        if isinstance(expr, ast.InList):
            operand = recur(expr.operand)
            for item in expr.items:
                item_type = recur(item)
                if not comparable(operand, item_type):
                    self._flag(
                        "SEM007",
                        f"IN list compares {operand.kind.value} with "
                        f"{item_type.kind.value}",
                    )
            return values.BOOLEAN
        if isinstance(expr, ast.InSubquery):
            operand = recur(expr.operand)
            outputs = self._analyze_select(expr.subquery, scope)
            if len(outputs) == 1 and not comparable(operand, outputs[0][1]):
                self._flag(
                    "SEM007",
                    f"IN subquery compares {operand.kind.value} with "
                    f"{outputs[0][1].kind.value}",
                )
            return values.BOOLEAN
        return None

    def _infer_binary(
        self,
        expr: ast.BinaryOp,
        recur: Callable[[Any], SqlType | None],
    ) -> SqlType | None:
        from ..engine import values

        op = expr.op.upper()
        left = recur(expr.left)
        right = recur(expr.right)
        if op in ("AND", "OR"):
            return values.BOOLEAN
        if op == "LIKE":
            if right is not None and right.kind is not TypeKind.VARCHAR:
                self._flag(
                    "SEM007",
                    f"LIKE pattern has type {right.kind.value}, "
                    "expected VARCHAR",
                )
            return values.BOOLEAN
        if op in ("=", "<>", "<", "<=", ">", ">="):
            if not comparable(left, right):
                assert left is not None and right is not None
                self._flag(
                    "SEM007",
                    f"comparison {op} between {left.kind.value} and "
                    f"{right.kind.value}",
                )
            return values.BOOLEAN
        if op == "||":
            return values.varchar(255)
        if op in ("+", "-", "*", "/"):
            for side in (left, right):
                if side is not None and side.kind not in _NUMERIC:
                    self._flag(
                        "SEM007",
                        f"arithmetic {op} applied to {side.kind.value}",
                    )
            if left is None or right is None:
                return None
            if TypeKind.DOUBLE in (left.kind, right.kind):
                return values.DOUBLE
            return values.BIGINT
        return None

    def _infer_func(
        self,
        expr: ast.FuncCall,
        recur: Callable[[Any], SqlType | None],
        *,
        aggregates_ok: bool,
        in_aggregate: bool,
    ) -> SqlType | None:
        from ..engine import values

        name = expr.name.upper()
        if name in AGGREGATE_FUNCTIONS:
            if not aggregates_ok:
                self._flag(
                    "SEM009", f"aggregate {name} not allowed in this clause"
                )
            if in_aggregate:
                self._flag("SEM009", f"nested aggregate {name}")
            if expr.star:
                if name != "COUNT":
                    self._flag("SEM006", f"{name}(*) is not valid")
                return values.BIGINT
            if len(expr.args) != 1:
                self._flag(
                    "SEM006",
                    f"aggregate {name} takes 1 argument, got {len(expr.args)}",
                )
                return None
            arg = recur(expr.args[0], in_aggregate=True)
            if name == "COUNT":
                return values.BIGINT
            if name == "AVG":
                return values.DOUBLE
            if name == "SUM":
                if arg is not None and arg.kind not in _NUMERIC:
                    self._flag(
                        "SEM007", f"SUM over {arg.kind.value} values"
                    )
                return arg
            return arg  # MIN/MAX keep the argument type
        arity = SCALAR_FUNCTIONS.get(name)
        if arity is None:
            self._flag("SEM006", f"unknown function {name}")
            for arg in expr.args:
                recur(arg)
            return None
        low, high = arity
        if len(expr.args) < low or (high is not None and len(expr.args) > high):
            self._flag(
                "SEM006",
                f"function {name} takes "
                f"{low if high == low else f'{low}+'} argument(s), "
                f"got {len(expr.args)}",
            )
        arg_types = [recur(arg) for arg in expr.args]
        if name == "LENGTH":
            return values.BIGINT
        if name in ("UPPER", "LOWER", "TO_STR"):
            return values.varchar(255)
        if name == "COALESCE":
            for arg_type in arg_types:
                if arg_type is not None:
                    return arg_type
            return None
        if name == "ABS":
            return arg_types[0] if arg_types else None
        if name == "TO_INT":
            return values.BIGINT
        if name == "TO_DOUBLE":
            return values.DOUBLE
        if name == "TO_DATE":
            return values.DATE
        if name == "TO_BOOL":
            return values.BOOLEAN
        return None


def _literal_type(value: object) -> SqlType | None:
    import datetime

    from ..engine import values

    if value is None:
        return None
    if isinstance(value, bool):
        return values.BOOLEAN
    if isinstance(value, int):
        return values.BIGINT
    if isinstance(value, float):
        return values.DOUBLE
    if isinstance(value, datetime.date):
        return values.DATE
    if isinstance(value, str):
        return values.varchar(max(len(value), 1))
    return None
