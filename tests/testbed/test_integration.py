"""End-to-end testbed runs at miniature scale."""

import pytest

from repro.testbed import Testbed, TestbedConfig
from repro.testbed.actions import ActionClass
from repro.testbed.generator import TenantDataProfile


@pytest.fixture(scope="module")
def small_run():
    config = TestbedConfig(
        variability=0.5,
        tenants=12,
        sessions=4,
        actions=120,
        memory_bytes=2 * 1024 * 1024,
        data_profile=TenantDataProfile(default_rows=4),
    )
    testbed = Testbed(config)
    testbed.setup()
    results = testbed.run()
    return testbed, results


class TestEndToEnd:
    def test_all_cards_executed(self, small_run):
        _, results = small_run
        # 10% ramp-up stripped from 120 cards.
        assert len(results) == 108

    def test_setup_created_expected_tables(self, small_run):
        testbed, _ = small_run
        # variability 0.5 with 12 tenants -> 6 instances x 10 tables,
        # extension layout: one physical table per logical table.
        assert testbed.mtd.db.catalog.table_count == 60

    def test_data_loaded_for_every_tenant(self, small_run):
        testbed, _ = small_run
        for tenant in (1, 6, 12):
            count = testbed.mtd.execute(
                tenant,
                f"SELECT COUNT(*) FROM "
                f"{self._account_table(testbed, tenant)}",
            ).rows[0][0]
            assert count >= 4

    @staticmethod
    def _account_table(testbed, tenant):
        instance = testbed.tenant_instance[tenant]
        return "account" if instance == 0 else f"account_i{instance}"

    def test_response_times_positive(self, small_run):
        _, results = small_run
        assert all(r.response_ms > 0 for r in results.results)

    def test_multiple_action_classes_appear(self, small_run):
        _, results = small_run
        classes = {r.action for r in results.results}
        assert ActionClass.SELECT_LIGHT in classes
        assert ActionClass.SELECT_HEAVY in classes
        assert len(classes) >= 4

    def test_metrics_computable(self, small_run):
        testbed, results = small_run
        metrics = testbed.metrics(results)
        assert metrics.total_tables == 60
        assert metrics.throughput_per_minute > 0
        assert 0.0 <= metrics.index_hit_ratio <= 1.0

    def test_sessions_share_the_load(self, small_run):
        _, results = small_run
        sessions = {r.session_id for r in results.results}
        assert len(sessions) == 4

    def test_deterministic_rerun(self):
        def run_once():
            config = TestbedConfig(
                variability=0.0,
                tenants=5,
                sessions=2,
                actions=40,
                memory_bytes=2 * 1024 * 1024,
                data_profile=TenantDataProfile(default_rows=3),
            )
            testbed = Testbed(config)
            testbed.setup()
            results = testbed.run()
            return [(r.action, round(r.response_ms, 6)) for r in results.results]

        assert run_once() == run_once()


class TestTransactionalWorker:
    def test_actions_run_inside_transactions(self):
        from repro.testbed.actions import ActionClass, ActionExecutor
        from repro.testbed.crm import crm_tables
        from repro.testbed.generator import DataGenerator, TenantDataProfile
        from repro.testbed.simtime import CostModel
        from repro.testbed.worker import LockOverlap, Session, Worker
        from repro.core.api import MultiTenantDatabase

        mtd = MultiTenantDatabase(layout="extension")
        for table in crm_tables():
            mtd.define_table(table)
        profile = TenantDataProfile(default_rows=2)
        generator = DataGenerator(seed=1)
        mtd.create_tenant(1)
        generator.load_tenant(mtd, 1, crm_tables(), profile)
        executor = ActionExecutor(mtd, profile, generator, {1: 0}, seed=4)
        worker = Worker(
            mtd, executor, CostModel(), LockOverlap(), transactional=True
        )
        session = Session(0)
        for action in (
            ActionClass.SELECT_LIGHT,
            ActionClass.INSERT_LIGHT,
            ActionClass.UPDATE_LIGHT,
            ActionClass.ADMIN,
        ):
            worker.execute(session, action, 1)
        assert not mtd.db.transactions.active
        # Three non-DDL actions committed explicitly; the ADMIN action's
        # DDL committed its transaction implicitly.
        assert mtd.db.transactions.committed >= 3


class TestVariabilityEffect:
    """The Experiment 1 mechanism at miniature scale: higher schema
    variability -> more tables -> less effective buffer pool."""

    @pytest.fixture(scope="class")
    def sweep(self):
        metrics = {}
        for variability in (0.0, 1.0):
            config = TestbedConfig(
                variability=variability,
                tenants=30,
                sessions=4,
                actions=200,
                memory_bytes=1_500_000,
                data_profile=TenantDataProfile(default_rows=4),
            )
            testbed = Testbed(config)
            testbed.setup()
            results = testbed.run()
            metrics[variability] = testbed.metrics(results)
        return metrics

    def test_throughput_degrades_with_variability(self, sweep):
        assert (
            sweep[1.0].throughput_per_minute < sweep[0.0].throughput_per_minute
        )

    def test_index_hit_ratio_degrades(self, sweep):
        assert sweep[1.0].index_hit_ratio < sweep[0.0].index_hit_ratio

    def test_more_tables_at_high_variability(self, sweep):
        assert sweep[1.0].total_tables == 300
        assert sweep[0.0].total_tables == 10
