"""Shared fixtures for the cluster suite: the Figure 4 running example
spread over a tenant-sharded cluster."""

import asyncio

import pytest

from repro.cluster import Cluster, ShardOptions

from ..core.conftest import (
    account_table,
    automotive_extension,
    healthcare_extension,
)

TENANTS = (17, 35, 42)


def run(coro):
    """Drive one coroutine to completion (the suite has no async
    plugin; each test owns a short-lived event loop)."""
    return asyncio.run(coro)


def build_cluster(
    path=None, *, shards=2, options: ShardOptions | None = None, **kwargs
) -> Cluster:
    """A cluster with the running-example schema and three tenants."""
    cluster = Cluster(path, shards=shards, options=options, **kwargs)
    cluster.define_table(account_table())
    cluster.define_extension(healthcare_extension())
    cluster.define_extension(automotive_extension())
    cluster.create_tenant(17, extensions=("healthcare",))
    cluster.create_tenant(35)
    cluster.create_tenant(42, extensions=("automotive",))
    return cluster


async def seed_rows(cluster: Cluster) -> None:
    await cluster.insert(
        17,
        "account",
        {
            "aid": 1,
            "name": "Acme",
            "opened": "2001-02-03",
            "hospital": "St. Mary",
            "beds": 135,
        },
    )
    await cluster.insert(
        35, "account", {"aid": 1, "name": "Ball", "opened": "2002-03-04"}
    )
    await cluster.insert(
        42,
        "account",
        {"aid": 1, "name": "Big", "opened": "2003-04-05", "dealers": 65},
    )


def other_shard(cluster: Cluster, tenant_id: int) -> str:
    """Any shard that does not currently hold ``tenant_id``."""
    home = cluster.shard_of(tenant_id)
    return next(name for name in cluster.shards if name != home)


@pytest.fixture
def mem_cluster():
    cluster = build_cluster()
    yield cluster
    cluster.close()
