"""ARIES-lite crash recovery.

Opening a disk-backed database runs :func:`recover`:

1. **Analysis** — read the WAL.  Its first record (if any) is the last
   checkpoint; everything after it is the redo candidate set.  Classify
   transactions by whether a terminal (commit *or* rollback) record made
   it to disk, and admin operations by whether their end marker did.
2. **Load** — roll the page store back to exactly the checkpoint's page
   versions (``truncate_to``) and rebuild the catalog from the snapshot.
3. **Undo** — the checkpoint may have been fuzzy over an in-flight
   transaction; if that transaction never reached a terminal record it
   is a loser: apply its snapshot-carried undo log, newest first.
4. **Redo** — replay the post-checkpoint log in order, skipping records
   of loser transactions and of incomplete admin operations.  Rolled
   back transactions replay *forward plus their logged compensation*,
   which nets out to nothing while keeping the RID remap coherent.

Replay is logical, so a replayed insert may land at a different
physical RID than the original (skipped loser/incomplete-operation rows
change page fill).  A remap table threads the logged RID to its replay
location, exactly like the runtime rollback path.
"""

from __future__ import annotations

import time

from ..heap import RowId
from .manager import DurabilityManager, restore_snapshot


def recover(db) -> None:
    """Bring ``db`` (freshly constructed over an existing directory) to
    the last durable committed state, then re-anchor with a checkpoint."""
    durability: DurabilityManager = db.durability
    durability.replaying = True
    started = time.perf_counter()
    try:
        records = durability.wal.open()
        snapshot = None
        checkpoint_lsn = 0
        if records and records[0][1].get("t") == "checkpoint":
            checkpoint_lsn, head = records[0]
            snapshot = head["snapshot"]
            records = records[1:]
        # Discard every page version newer than the checkpoint: those
        # writebacks are superseded by logical redo from the snapshot.
        durability.store.truncate_to(checkpoint_lsn)

        restored_txn = None
        completed: list[dict] = []
        if snapshot is not None:
            restored_txn = restore_snapshot(db, snapshot)
            durability.next_txid = snapshot["next_txid"]
            durability.next_admin = snapshot["next_admin"]
            completed.extend(snapshot["admin_ops"])

        # -- analysis -----------------------------------------------------
        terminated: set[int] = set()
        begun_admin: dict[int, dict] = {}
        for _lsn, record in records:
            kind = record.get("t")
            if kind in ("commit", "rollback"):
                terminated.add(record["tx"])
            elif kind == "admin_begin":
                begun_admin[record["id"]] = record
            elif kind == "admin_end":
                begun = begun_admin.pop(record["id"], None)
                completed.append(
                    {
                        "id": record["id"],
                        "op": begun["op"] if begun else None,
                        "payload": begun["payload"] if begun else None,
                        "end": record["end"],
                    }
                )
        incomplete_admin = set(begun_admin)

        # -- undo ---------------------------------------------------------
        losers = 0
        if restored_txn is not None and restored_txn["tx"] not in terminated:
            _apply_undo(db, restored_txn["entries"])
            losers = 1
        # Log-suffix losers (records on disk, no terminal) need no undo —
        # redo simply skips them below — but they are losers all the same.
        open_txns = {
            r["tx"] for _, r in records if r.get("t") in ("ins", "del", "upd")
        } - terminated
        if restored_txn is not None:
            open_txns.discard(restored_txn["tx"])
        losers += len(open_txns)

        # -- redo ---------------------------------------------------------
        remap: dict[tuple[str, tuple[int, int]], RowId] = {}
        replayed = 0
        for _lsn, record in records:
            if record.get("admin") in incomplete_admin:
                continue
            kind = record["t"]
            if kind == "ddl":
                _replay_ddl(db, record)
                replayed += 1
            elif kind in ("ins", "del", "upd"):
                if record["tx"] in terminated:
                    _replay_dml(db, record, remap)
                    replayed += 1

        # -- counters -----------------------------------------------------
        max_txid = max(
            (r["tx"] for _, r in records if "tx" in r), default=0
        )
        durability.next_txid = max(durability.next_txid, max_txid + 1)
        max_admin = max(
            (r["id"] for _, r in records if r.get("t") == "admin_begin"),
            default=0,
        )
        durability.next_admin = max(durability.next_admin, max_admin + 1)
        durability.admin_ops = completed
        db._resize_pool()

        elapsed_ms = (time.perf_counter() - started) * 1000.0
        durability.recovery_info = {
            "checkpoint_restored": snapshot is not None,
            "records_scanned": len(records),
            "records_replayed": replayed,
            "losers": losers,
            "incomplete_admin_ops": len(incomplete_admin),
            "ms": elapsed_ms,
        }
        if db.metrics is not None:
            db.metrics.gauge("db.recovery.records_replayed").set(replayed)
            db.metrics.gauge("db.recovery.losers").set(losers)
            db.metrics.gauge("db.recovery.ms").set(elapsed_ms)
    finally:
        durability.replaying = False
    # Re-anchor: the recovered state becomes the new checkpoint, so a
    # second crash before any new work recovers instantly.  On a fresh
    # directory this writes the initial empty checkpoint.
    durability.checkpoint(db)


def _apply_undo(db, entries: list[tuple]) -> None:
    """Roll back the checkpoint-loser transaction from its serialized
    undo log (same newest-first + RID-remap discipline as the runtime
    rollback path)."""
    remap: dict[tuple[str, RowId], RowId] = {}

    def resolve(name: str, rid: RowId) -> RowId:
        return remap.get((name, rid), rid)

    for entry in reversed(entries):
        kind, name = entry[0], entry[1]
        table = db.catalog.table(name)
        if kind == "ins":
            table.delete_row(resolve(name, RowId(*entry[2])))
        elif kind == "del":
            new_rid = table.insert_row(tuple(entry[3]))
            remap[(name, RowId(*entry[2]))] = new_rid
        else:  # upd: (kind, name, old_rid, old_row, new_rid)
            current = resolve(name, RowId(*entry[4]))
            restored = table.update_row(current, tuple(entry[3]))
            old_rid = RowId(*entry[2])
            if restored != old_rid:
                remap[(name, old_rid)] = restored


def _replay_ddl(db, record: dict) -> None:
    from ..catalog import Column
    from ..values import parse_type

    op = record["op"]
    catalog = db.catalog
    if op == "create_table":
        columns = [
            Column(name, parse_type(type_text), not_null)
            for name, type_text, not_null in record["columns"]
        ]
        # Older WALs predate the storage field; default is heap.
        catalog.create_table(
            record["table"], columns, storage=record.get("storage")
        )
    elif op == "drop_table":
        catalog.drop_table(record["table"])
    elif op == "create_index":
        catalog.create_index(
            record["index"],
            record["table"],
            list(record["columns"]),
            unique=record["unique"],
        )
    elif op == "drop_index":
        catalog.drop_index(record["table"], record["index"])


def _replay_dml(
    db, record: dict, remap: dict[tuple[str, tuple[int, int]], RowId]
) -> None:
    table = db.catalog.table(record["table"])
    key = record["table"].lower()
    kind = record["t"]
    if kind == "ins":
        rid = table.insert_row(tuple(record["row"]))
        remap[(key, tuple(record["rid"]))] = rid
    elif kind == "del":
        logged = tuple(record["rid"])
        table.delete_row(remap.get((key, logged), RowId(*logged)))
    else:  # upd
        logged_old = tuple(record["rid"])
        current = remap.get((key, logged_old), RowId(*logged_old))
        new_rid = table.update_row(current, tuple(record["new_row"]))
        remap[(key, tuple(record["new_rid"]))] = new_rid
