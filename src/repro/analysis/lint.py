"""Repo-specific protocol lint (the ``LNT`` rules).

Generic linters can't know this engine's protocols; these rules encode
them over the :mod:`ast` of the source tree:

* **LNT001** — ``BufferPool.mark_dirty`` may only be called from the
  storage helpers that pair every page mutation with WAL bookkeeping
  (heap, column store, B-tree, and the pool itself).  A ``mark_dirty``
  anywhere else is a page mutation the durability layer never hears
  about.
* **LNT002** — a bare ``except:`` or ``except BaseException:`` without
  a re-``raise`` would swallow :class:`SimulatedCrash`, which
  deliberately subclasses ``BaseException`` so that ``except
  Exception`` *can't* catch it (see ``durability/faults.py``).  A
  handler that catches it and keeps running breaks every crash test
  that relies on the process actually "dying".
* **LNT003** — a crashpoint that no workload ever reaches is worse
  than none: the crash matrix silently stops sampling that instant.
  Every crashpoint name referenced in ``src/`` must appear in a
  dynamic hit census (:func:`run_crashpoint_census` drives the full
  admin-operation surface under an unarmed injector).  Names built
  with f-strings become regex patterns (``admin.{op}.begin`` matches
  any hit named ``admin.<something>.begin``).
* **LNT004** — a metrics-registry lookup (``metrics.counter(...)`` and
  friends) inside a ``for``/``while`` body re-hashes the metric name
  per iteration; hot paths pre-bind counters instead (the rule an
  earlier optimisation pass applied by hand — this makes it stick).

Like the other passes, findings land in an :class:`AnalysisReport`;
``python -m repro.analysis --lint`` gates on it.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass

from .findings import AnalysisReport, Finding

#: Source roots scanned by the static rules (relative to ``src/``).
SRC_ROOT = os.path.join(os.path.dirname(__file__), "..")

#: Modules allowed to call ``mark_dirty`` (repo-relative suffixes):
#: the WAL-coupled storage layer itself.
MARK_DIRTY_ALLOWED: tuple[str, ...] = (
    os.path.join("engine", "heap.py"),
    os.path.join("engine", "columnstore.py"),
    os.path.join("engine", "btree.py"),
    os.path.join("engine", "pager.py"),
)

#: Receiver names that mean "the metrics registry" for LNT004.
METRIC_RECEIVERS = frozenset({"metrics", "_metrics", "registry"})
METRIC_LOOKUPS = frozenset({"counter", "histogram", "gauge"})

#: ``file-suffix:function`` sites waived from LNT004 (registry lookups
#: in loops that are *not* hot: reporting/rendering paths).
LNT004_WAIVERS: frozenset[str] = frozenset()


@dataclass(frozen=True)
class _Module:
    path: str  #: absolute path
    rel: str  #: path relative to the package root (for loci)
    tree: ast.Module


def _modules(root: str) -> list[_Module]:
    modules = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=path)
            modules.append(_Module(path, os.path.relpath(path, root), tree))
    return sorted(modules, key=lambda m: m.rel)


# -- LNT001: mark_dirty outside the storage layer ---------------------------


def _check_mark_dirty(module: _Module, report: AnalysisReport) -> None:
    allowed = module.rel.endswith(MARK_DIRTY_ALLOWED)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "mark_dirty":
            report.checked += 1
            if not allowed:
                report.add(
                    Finding(
                        "LNT001",
                        "page mutation (mark_dirty) outside the WAL-logged "
                        "storage helpers",
                        f"{module.rel}:{node.lineno}",
                    )
                )


# -- LNT002: handlers that would swallow SimulatedCrash ---------------------


def _catches_base_exception(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except:
    nodes = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return any(
        isinstance(n, ast.Name) and n.id == "BaseException" for n in nodes
    )


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


def _check_crash_swallowing(module: _Module, report: AnalysisReport) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _catches_base_exception(node):
            continue
        report.checked += 1
        if not _reraises(node):
            report.add(
                Finding(
                    "LNT002",
                    "handler catches BaseException without re-raising — "
                    "it would swallow SimulatedCrash",
                    f"{module.rel}:{node.lineno}",
                )
            )


# -- LNT003: dead crashpoints ------------------------------------------------


@dataclass(frozen=True)
class CrashpointRef:
    """One static ``crashpoint(...)`` reference: a literal name or, for
    f-strings, a regex the dynamic census is matched against."""

    pattern: str
    literal: bool
    locus: str

    def matches(self, name: str) -> bool:
        if self.literal:
            return name == self.pattern
        return re.fullmatch(self.pattern, name) is not None


def static_crashpoints(root: str = SRC_ROOT) -> list[CrashpointRef]:
    """Every crashpoint name referenced anywhere under ``root``
    (definitions of the ``crashpoint`` methods themselves excluded)."""
    refs = []
    for module in _modules(root):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr == "crashpoint"
            ):
                continue
            if not node.args:
                continue
            arg = node.args[0]
            locus = f"{module.rel}:{node.lineno}"
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                refs.append(CrashpointRef(arg.value, True, locus))
            elif isinstance(arg, ast.JoinedStr):
                parts = []
                for piece in arg.values:
                    if isinstance(piece, ast.Constant):
                        parts.append(re.escape(str(piece.value)))
                    else:
                        parts.append("[^.]+")
                refs.append(CrashpointRef("".join(parts), False, locus))
            # Dynamic non-literal names (variables) can't be checked
            # statically; none exist today.
    return refs


def run_crashpoint_census() -> dict[str, int]:
    """Drive the full durability surface — DML commits, checkpoints,
    extension grants, tenant migration, tenant deletion — under an
    unarmed :class:`FaultInjector` and return its hit counts.  This is
    the dynamic half of LNT003 and of the crashpoint-coverage test."""
    import shutil
    import tempfile

    from ..core import (
        Extension,
        LogicalColumn,
        LogicalTable,
        MultiTenantDatabase,
    )
    from ..engine.database import Database
    from ..engine.durability import DurabilityOptions
    from ..engine.durability.faults import FaultInjector
    from ..engine.values import INTEGER, varchar

    injector = FaultInjector()
    path = tempfile.mkdtemp(prefix="repro-census-")
    try:
        db = Database(
            path=path, durability=DurabilityOptions(faults=injector)
        )
        mtd = MultiTenantDatabase(layout="chunk_folding", db=db)
        mtd.define_table(
            LogicalTable(
                "account",
                (
                    LogicalColumn("aid", INTEGER, indexed=True, not_null=True),
                    LogicalColumn("name", varchar(20)),
                ),
            )
        )
        mtd.define_extension(
            Extension(
                "healthcare",
                "account",
                (LogicalColumn("beds", INTEGER),),
            )
        )
        mtd.create_tenant(1, extensions=("healthcare",))
        mtd.create_tenant(2)
        for tenant, aid in ((1, 1), (1, 2), (2, 1)):
            row = {"aid": aid, "name": f"n{aid}"}
            if tenant == 1:
                row["beds"] = aid * 10
            mtd.insert(tenant, "account", row)
        mtd.grant_extension(2, "healthcare")
        mtd.migrate_tenant(1, "private")
        mtd.drop_tenant(2)
        db.checkpoint()
        db.close()
    finally:
        shutil.rmtree(path, ignore_errors=True)
    return dict(injector.counts)


def _check_dead_crashpoints(
    report: AnalysisReport, census: dict[str, int] | None
) -> None:
    if census is None:
        census = run_crashpoint_census()
    hit_names = [name for name, count in census.items() if count > 0]
    for ref in static_crashpoints():
        report.checked += 1
        if not any(ref.matches(name) for name in hit_names):
            report.add(
                Finding(
                    "LNT003",
                    f"crashpoint {ref.pattern!r} is never exercised by "
                    "the fault census",
                    ref.locus,
                )
            )


# -- LNT004: metrics lookups in hot loops -----------------------------------


def _check_metric_lookups(module: _Module, report: AnalysisReport) -> None:
    if not module.rel.startswith("engine" + os.sep):
        return

    def scan_loops(scope: ast.AST, func_name: str) -> None:
        for node in ast.walk(scope):
            if not isinstance(node, (ast.For, ast.While)):
                continue
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr in METRIC_LOOKUPS
                ):
                    continue
                receiver = func.value
                name = (
                    receiver.attr
                    if isinstance(receiver, ast.Attribute)
                    else receiver.id if isinstance(receiver, ast.Name) else ""
                )
                if name not in METRIC_RECEIVERS:
                    continue
                report.checked += 1
                if f"{module.rel}:{func_name}" in LNT004_WAIVERS:
                    continue
                report.add(
                    Finding(
                        "LNT004",
                        f"metrics registry lookup .{func.attr}(...) inside "
                        "a loop — pre-bind the instrument outside",
                        f"{module.rel}:{call.lineno}",
                    )
                )

    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan_loops(node, node.name)


# -- entry point -------------------------------------------------------------


def analyze_lint(
    root: str = SRC_ROOT, *, census: dict[str, int] | None = None
) -> AnalysisReport:
    """Run every LNT rule over the source tree.  ``census`` supplies
    pre-collected crashpoint hit counts (tests reuse one run); when
    omitted the census workload runs here."""
    report = AnalysisReport()
    for module in _modules(root):
        _check_mark_dirty(module, report)
        _check_crash_swallowing(module, report)
        _check_metric_lookups(module, report)
    _check_dead_crashpoints(report, census)
    return report
