"""Cluster-layer errors.

All derive from the engine's :class:`EngineError` so existing callers
that catch engine failures keep working unchanged.
"""

from __future__ import annotations

from ..engine.errors import EngineError


class ClusterError(EngineError):
    """Base class for cluster-layer failures."""


class WrongShardError(ClusterError):
    """A request reached a shard that does not own the tenant.

    Carries the shard's name and its view of the placement version so a
    router (or smart client) can refresh its placement map and retry.
    """

    def __init__(self, tenant_id: int, shard: str, placement_version: int) -> None:
        super().__init__(
            f"tenant {tenant_id} is not placed on shard {shard!r} "
            f"(placement version {placement_version})"
        )
        self.tenant_id = tenant_id
        self.shard = shard
        self.placement_version = placement_version


class ShardClosedError(ClusterError):
    """The shard worker has been shut down."""


class RebalanceInProgressError(ClusterError):
    """Only one tenant move may be in flight at a time."""


class ProtocolError(ClusterError):
    """A malformed or oversized wire frame."""
