"""Tests for the MultiTenantDatabase facade: validation, profiles,
flattening behaviour, Trashcan purge, and reporting."""

import pytest

from repro import (
    Extension,
    LogicalColumn,
    LogicalTable,
    MultiTenantDatabase,
    OptimizerProfile,
    PredicateOrder,
)
from repro.engine.errors import PlanError, UnknownObjectError
from repro.engine.values import INTEGER, varchar

from .conftest import build_running_example


class TestValidation:
    def test_unknown_tenant_rejected_everywhere(self):
        mtd = build_running_example("chunk")
        with pytest.raises(UnknownObjectError):
            mtd.execute(99, "SELECT 1 FROM account")
        with pytest.raises(UnknownObjectError):
            mtd.insert(99, "account", {"aid": 1})
        with pytest.raises(UnknownObjectError):
            mtd.drop_tenant(99)

    def test_transform_sql_requires_select(self):
        mtd = build_running_example("chunk")
        with pytest.raises(PlanError):
            mtd.transform_sql(17, "DELETE FROM account")

    def test_unsupported_statement_rejected(self):
        mtd = build_running_example("chunk")
        with pytest.raises(PlanError):
            mtd.execute(17, "DROP TABLE account")

    def test_create_table_via_sql_defines_logical_table(self):
        mtd = build_running_example("extension")
        mtd.execute(17, "CREATE TABLE notes (nid INTEGER NOT NULL, body VARCHAR(50))")
        mtd.insert(17, "notes", {"nid": 1, "body": "hello"})
        assert mtd.execute(17, "SELECT body FROM notes").rows == [("hello",)]
        # Other tenants see (their own empty) notes too: base tables are
        # application-wide.
        assert mtd.execute(35, "SELECT COUNT(*) FROM notes").rows == [(0,)]


class TestSimpleProfileIntegration:
    def test_flattening_applied_for_simple_profile(self):
        mtd = build_running_example("pivot")
        mtd.db.profile = OptimizerProfile.SIMPLE
        sql = mtd.transform_sql(17, "SELECT beds FROM account WHERE hospital = 'State'")
        # Flattened: no derived table in FROM.
        assert "(SELECT" not in sql.replace("( SELECT", "(SELECT").upper() or True
        assert sql.upper().count("FROM") == 1

    def test_flattening_can_be_disabled(self):
        mtd = build_running_example("pivot", flatten_for_simple=False)
        mtd.db.profile = OptimizerProfile.SIMPLE
        sql = mtd.transform_sql(17, "SELECT beds FROM account")
        assert sql.upper().count("SELECT") == 2  # nested form kept

    def test_simple_profile_same_answers(self):
        mtd = build_running_example("chunk_folding")
        expected = mtd.execute(
            17, "SELECT name FROM account ORDER BY aid"
        ).rows
        mtd.db.profile = OptimizerProfile.SIMPLE
        assert (
            mtd.execute(17, "SELECT name FROM account ORDER BY aid").rows
            == expected
        )

    def test_predicate_order_setting_respected(self):
        mtd = build_running_example("pivot", predicate_order=PredicateOrder.METADATA_FIRST)
        mtd.db.profile = OptimizerProfile.SIMPLE
        sql = mtd.transform_sql(
            17, "SELECT beds FROM account WHERE hospital = 'State'"
        )
        where = sql.split("WHERE", 1)[1]
        # Flattened: the original predicate is now over the physical
        # value column; metadata-first puts tenant/tbl/col before it.
        assert where.find("tenant") < where.find("'State'")


class TestTrashcanPurge:
    def test_purge_physically_removes(self):
        mtd = build_running_example("chunk", width=1, soft_delete=True)
        mtd.execute(17, "DELETE FROM account WHERE aid = 1")
        physical_before = sum(
            t.row_count
            for t in mtd.db.catalog.tables()
            if t.name.startswith("chunk_")
        )
        purged = mtd.purge_trashcan(17, "account")
        assert purged == 1
        physical_after = sum(
            t.row_count
            for t in mtd.db.catalog.tables()
            if t.name.startswith("chunk_")
        )
        assert physical_after < physical_before
        # Live data untouched.
        assert mtd.execute(17, "SELECT COUNT(*) FROM account").rows == [(1,)]

    def test_purged_rows_cannot_be_restored(self):
        mtd = build_running_example("chunk", soft_delete=True)
        mtd.execute(17, "DELETE FROM account WHERE aid = 1")
        mtd.purge_trashcan(17, "account")
        mtd.restore(17, "account", [0])
        assert mtd.execute(17, "SELECT COUNT(*) FROM account").rows == [(1,)]

    def test_purge_requires_soft_delete(self):
        mtd = build_running_example("chunk")
        with pytest.raises(PlanError):
            mtd.purge_trashcan(17, "account")

    def test_purge_only_touches_one_tenant(self):
        mtd = build_running_example("extension", soft_delete=True)
        mtd.execute(17, "DELETE FROM account WHERE aid = 1")
        mtd.execute(42, "DELETE FROM account WHERE aid = 1")
        mtd.purge_trashcan(17, "account")
        # Tenant 42's trashed row is still restorable.
        mtd.restore(42, "account", [0])
        assert mtd.execute(42, "SELECT COUNT(*) FROM account").rows == [(1,)]


class TestIntrospection:
    def test_report_counts(self):
        mtd = build_running_example("chunk_folding")
        report = mtd.report()
        assert report.layout == "chunk_folding"
        assert report.physical_tables == mtd.db.catalog.table_count
        assert report.metadata_bytes > 0

    def test_explain_via_api(self):
        mtd = build_running_example("chunk_folding")
        text = mtd.explain(17, "SELECT beds FROM account WHERE aid = 1")
        assert "RETURN" in text
        assert "IXSCAN" in text

    def test_transform_sql_reexecutable(self):
        mtd = build_running_example("universal")
        sql = mtd.transform_sql(
            17, "SELECT name FROM account WHERE beds > 100"
        )
        rows = mtd.db.execute(sql).rows
        assert sorted(rows) == [("Acme",), ("Gump",)]


class TestTenantIntrospection:
    """The public enumeration surface the cluster rebalancer rides on."""

    def test_tenant_ids_sorted(self, any_layout_mtd):
        assert any_layout_mtd.tenant_ids() == [17, 35, 42]

    def test_tenant_ids_track_churn(self):
        mtd = build_running_example("chunk")
        mtd.drop_tenant(35)
        mtd.create_tenant(7)
        assert mtd.tenant_ids() == [7, 17, 42]

    def test_row_counts_per_table(self, any_layout_mtd):
        assert any_layout_mtd.tenant_row_counts(17) == {"account": 2}
        assert any_layout_mtd.tenant_row_counts(35) == {"account": 1}

    def test_row_counts_respect_trashcan(self):
        mtd = build_running_example("extension", soft_delete=True)
        mtd.execute(17, "DELETE FROM account WHERE aid = 1")
        assert mtd.tenant_row_counts(17) == {"account": 1}
        mtd.restore(17, "account", [0])
        assert mtd.tenant_row_counts(17) == {"account": 2}

    def test_row_counts_unknown_tenant(self):
        mtd = build_running_example("chunk")
        with pytest.raises(UnknownObjectError):
            mtd.tenant_row_counts(99)

    def test_export_rows_round_trips(self, any_layout_mtd):
        exported = any_layout_mtd.export_rows(17, "account")
        assert len(exported) == 2
        by_aid = {values["aid"]: values for _, values in exported}
        assert by_aid[1]["name"] == "Acme"
        assert by_aid[1]["beds"] == 135
        assert by_aid[2]["hospital"] == "State"

    def test_export_reinsert_reproduces_tenant(self):
        source = build_running_example("chunk_folding")
        target = build_running_example("pivot")
        target.drop_tenant(17)
        target.create_tenant(17, extensions=("healthcare",))
        for row_id, values in source.export_rows(17, "account"):
            target.insert(17, "account", values, row_id=row_id)
        want = source.execute(
            17, "SELECT aid, name, hospital, beds FROM account ORDER BY aid"
        ).rows
        got = target.execute(
            17, "SELECT aid, name, hospital, beds FROM account ORDER BY aid"
        ).rows
        assert got == want
