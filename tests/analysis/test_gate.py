"""End-to-end analysis gate: the CLI must pass clean testbeds and fail
seeded defects — the acceptance criterion for ``--strict``."""

from repro.analysis.__main__ import main
from repro.analysis.runner import AnalysisConfig, run_analysis

SMALL = [
    "--tenants", "2",
    "--rows", "1",
    "--variability", "0.0",
    "--no-admin-ops",
]


def test_rules_listing(capsys):
    assert main(["--rules"]) == 0
    out = capsys.readouterr().out
    assert "SEM001" in out and "ISO001" in out and "LAY001" in out


def test_clean_gate_passes(capsys):
    assert main(["--strict", "--layouts", "extension", "pivot", *SMALL]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_gate_fails_on_dropped_tenant_guard(capsys):
    code = main(
        ["--strict", "--mutate", "drop-tenant-guard",
         "--layouts", "extension", *SMALL]
    )
    assert code == 1
    assert "ISO0" in capsys.readouterr().out


def test_gate_fails_on_dropped_casts(capsys):
    code = main(
        ["--strict", "--mutate", "drop-read-casts",
         "--layouts", "universal", *SMALL]
    )
    assert code == 1
    assert "LAY003" in capsys.readouterr().out


def test_findings_flow_into_metrics():
    config = AnalysisConfig(
        layouts=("extension",),
        variabilities=(0.0,),
        tenants=2,
        rows_per_table=1,
        admin_ops=False,
    )
    report = run_analysis(config)
    assert report.ok
    assert report.checked > 0


def test_admin_ops_replay_is_clean():
    config = AnalysisConfig(
        layouts=("chunk",),
        variabilities=(0.0,),
        tenants=2,
        rows_per_table=1,
        admin_ops=True,
    )
    report = run_analysis(config)
    assert report.ok, [f.message for f in report.findings]


def test_gate_fails_on_widened_cross_tenant_set(capsys):
    code = main(
        ["--strict", "--mutate", "widen-crosstenant",
         "--layouts", "extension", "universal", *SMALL]
    )
    assert code == 1
    assert "ISO006" in capsys.readouterr().out
