"""Columnar storage — wall-clock, column pages vs row-major heap.

Not a paper figure: this benchmark records what the :class:`ColumnStore`
buys on the paper's chunk-table workloads.  The paper's "Additional
Tests" found grouping queries on chunk tables ~2x slower than on
conventional tables; late-materializing column scans plus the
vectorized engine are this repo's answer, and the gates here pin that
answer down on chunk width 6 (the paper's most fragmented plotted
layout):

* **grouping microbench** — full child-table scan feeding GROUP BY with
  COUNT/MAX aggregates; the columnar stack must be **>= 2x** the
  row-major tuple baseline;
* **Figure 9 warm harness** — Q2 at scale 30 swept over parent ids with
  a warm buffer pool; the columnar stack must be **>= 1.5x**.

Every (storage x engine) cell runs the same queries over identically
loaded databases; timing rounds are *interleaved* across cells so
machine noise hits every cell equally, and each cell reports its best
round.  A parity test asserts rows and warm logical reads are identical
across all four cells — the columnar format changes how fast pages are
processed, never which pages are touched or what comes back.

Results land in ``benchmarks/results/BENCH_columnar.json``; CI uploads
all ``BENCH_*.json`` files as artifacts, so the perf trajectory is
recorded run over run.
"""

import json
import pathlib
import time

import pytest

from repro.experiments.chunkqueries import (
    ChunkQueryConfig,
    ChunkQueryExperiment,
    TENANT,
    q2_sql,
)

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_columnar.json"
)

#: Paper-faithful child cardinality (Experiment 2 loads 100 children
#: per parent); the per-query probe work then dominates fixed per-query
#: cost, which is what the Fig 9 gate measures.
CONFIG = ChunkQueryConfig(parents=30, children_per_parent=100)

#: Q2 scale factor for the warm harness (middle of the paper's sweep,
#: same as bench_vectorized).
Q2_SCALE = 30
#: Parent ids swept per harness pass.
Q2_PARENTS = 20

WARMUP = 2
ROUNDS = 5

#: Same grouping query as bench_vectorized: GROUP BY the foreign key
#: with COUNT plus MAX aggregates over two data columns, so the
#: scan/accumulation loop is the measured cost.
GROUPING_SQL = (
    "SELECT c.parent, COUNT(*) AS n, MAX(c.col1) AS m1, MAX(c.col4) AS m4 "
    "FROM child c GROUP BY c.parent ORDER BY n DESC"
)

#: (storage, engine) cells measured per layout.  The gate compares the
#: PR's default stack (columnar pages + vectorized engine) against the
#: row-major tuple-at-a-time baseline; the off-diagonal cells isolate
#: how much each half contributes.
CELLS = (
    ("heap", "tuple"),
    ("heap", "vectorized"),
    ("columnar", "tuple"),
    ("columnar", "vectorized"),
)


def _build(layout: str, storage: str, **options) -> ChunkQueryExperiment:
    exp = ChunkQueryExperiment(layout, CONFIG, storage=storage, **options)
    exp.load()
    return exp


def _runners(exp: ChunkQueryExperiment, engine: str):
    """(grouping, fig9) timing thunks for one storage x engine cell."""
    db = exp.mtd.db
    grouping_sql = exp.mtd.transform_sql(TENANT, GROUPING_SQL)
    q2 = exp.mtd.transform_sql(TENANT, q2_sql(Q2_SCALE))

    def run_grouping() -> float:
        db.execution = engine
        start = time.perf_counter()
        db.execute(grouping_sql)
        return time.perf_counter() - start

    def run_fig9() -> float:
        db.execution = engine
        start = time.perf_counter()
        for parent_id in range(1, Q2_PARENTS + 1):
            db.execute(q2, [parent_id])
        return time.perf_counter() - start

    return run_grouping, run_fig9


def measure_layout(layout: str, **options) -> dict:
    """All four storage x engine cells, interleaved best-of timing."""
    experiments = {
        storage: _build(layout, storage, **options)
        for storage in ("heap", "columnar")
    }
    runners = {
        (storage, engine): _runners(experiments[storage], engine)
        for storage, engine in CELLS
    }
    best: dict[tuple, list[float]] = {
        cell: [float("inf"), float("inf")] for cell in CELLS
    }
    for round_no in range(WARMUP + ROUNDS):
        for cell, (run_grouping, run_fig9) in runners.items():
            grouping_s = run_grouping()
            fig9_s = run_fig9()
            if round_no >= WARMUP:
                best[cell][0] = min(best[cell][0], grouping_s)
                best[cell][1] = min(best[cell][1], fig9_s)
    result: dict = {
        storage: {
            engine: {
                "grouping_s": best[(storage, engine)][0],
                "fig9_s": best[(storage, engine)][1],
            }
            for s2, engine in CELLS
            if s2 == storage
        }
        for storage in ("heap", "columnar")
    }
    baseline = result["heap"]["tuple"]
    stack = result["columnar"]["vectorized"]
    result["speedup_grouping"] = (
        baseline["grouping_s"] / stack["grouping_s"]
    )
    result["speedup_fig9"] = baseline["fig9_s"] / stack["fig9_s"]
    result["_experiments"] = experiments
    return result


@pytest.fixture(scope="module")
def measurements():
    results = {
        "config": {
            "parents": CONFIG.parents,
            "children_per_parent": CONFIG.children_per_parent,
            "q2_scale": Q2_SCALE,
            "q2_parents_swept": Q2_PARENTS,
            "rounds": ROUNDS,
        },
        "chunk6": measure_layout("chunk", width=6),
        "conventional": measure_layout("private"),
    }
    recorded = {
        label: {
            key: value
            for key, value in section.items()
            if not key.startswith("_")
        }
        if isinstance(section, dict)
        else section
        for label, section in results.items()
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(recorded, indent=2) + "\n")
    return results


class TestColumnarSpeedup:
    def test_report(self, benchmark, measurements, report):
        benchmark.pedantic(lambda: None, rounds=1)
        lines = [
            "Columnar vs row-major storage, wall clock (best of "
            f"{ROUNDS} interleaved), "
            f"{CONFIG.parents}x{CONFIG.children_per_parent}",
            f"{'layout':>14} {'storage':>9} {'engine':>11} "
            f"{'grouping ms':>12} {'fig9 ms':>9}",
        ]
        for label in ("chunk6", "conventional"):
            section = measurements[label]
            for storage, engine in CELLS:
                cell = section[storage][engine]
                lines.append(
                    f"{label:>14} {storage:>9} {engine:>11} "
                    f"{cell['grouping_s'] * 1000:>12.2f} "
                    f"{cell['fig9_s'] * 1000:>9.2f}"
                )
            lines.append(
                f"{label:>14} columnar+vectorized over heap+tuple: "
                f"grouping {section['speedup_grouping']:.2f}x, "
                f"fig9 {section['speedup_fig9']:.2f}x"
            )
        report("BENCH_columnar", "\n".join(lines))

    def test_chunk6_grouping_gate(self, measurements):
        """Columnar + vectorized must be >= 2x the row-major tuple
        baseline on the chunk6 grouping microbench."""
        assert measurements["chunk6"]["speedup_grouping"] >= 2.0

    def test_chunk6_fig9_gate(self, measurements):
        """... and >= 1.5x on the chunk6 Figure 9 warm harness."""
        assert measurements["chunk6"]["speedup_fig9"] >= 1.5

    def test_rows_and_logical_read_parity(self, measurements):
        """Every storage x engine cell returns identical rows and touches
        identical warm page counts — the format changes speed only."""
        experiments = measurements["chunk6"]["_experiments"]
        grouping_rows: list = []
        q2_rows: list = []
        q2_logical: list = []
        for storage, engine in CELLS:
            exp = experiments[storage]
            db = exp.mtd.db
            db.execution = engine
            grouping_sql = exp.mtd.transform_sql(TENANT, GROUPING_SQL)
            q2 = exp.mtd.transform_sql(TENANT, q2_sql(Q2_SCALE))
            grouping_rows.append(sorted(db.execute(grouping_sql).rows))
            db.execute(q2, [3])  # warm every page the trace will touch
            trace = db.trace(q2, [3], analyze=False)
            q2_rows.append(sorted(trace.rows))
            q2_logical.append(trace.logical_reads)
        assert all(rows == grouping_rows[0] for rows in grouping_rows[1:])
        assert all(rows == q2_rows[0] for rows in q2_rows[1:])
        assert all(count == q2_logical[0] for count in q2_logical[1:])

    def test_json_artifact(self, measurements):
        recorded = json.loads(RESULTS_PATH.read_text())
        for label in ("chunk6", "conventional"):
            assert recorded[label]["speedup_grouping"] > 0
            assert recorded[label]["speedup_fig9"] > 0
        assert "_experiments" not in recorded["chunk6"]
