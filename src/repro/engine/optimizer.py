"""Query planner with two optimizer profiles.

The paper's Test 1 (Section 6.2) contrasts a *sophisticated* optimizer
(DB2) with a *less-sophisticated* one (MySQL).  We model both as
profiles of one planner:

* :attr:`OptimizerProfile.ADVANCED` — unnests FROM-subqueries
  (Fegaras–Maier rule N8), propagates equality predicates transitively
  (so a constant bound to ``p.id`` also restricts ``c.parent``, as DB2
  does in Figure 8), picks the index with the longest usable equality
  prefix, and orders joins greedily by estimated cardinality.

* :attr:`OptimizerProfile.SIMPLE` — materializes FROM-subqueries before
  applying outer predicates, keeps the textual FROM order (except that
  the driving table is the one named by the *textually first* indexable
  constant predicate), and selects indexes by first-come predicate
  order.  Predicate order in the SQL text therefore changes the plan,
  reproducing the ~5x effect the paper reports for MySQL.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from .catalog import Catalog, Table
from .errors import EngineError, PlanError, UnknownObjectError
from .expr import (
    ExprCompiler,
    Schema,
    Slot,
    referenced_bindings,
)
from .plan.logical import (
    QueryBlock,
    build_block,
    flatten_block,
    output_name,
    qualify_block,
)
from .plan import physical as phys
from .sql import ast


class OptimizerProfile(enum.Enum):
    SIMPLE = "simple"
    ADVANCED = "advanced"


#: Work units per row for one sequential scan, by storage format.  A
#: columnar scan evaluates residual predicates as comprehensions over
#: native column lists and assembles only surviving rows, so its
#: per-row unit is well under the heap's tuple-at-a-time unit; 0.25 is
#: calibrated against the bench_columnar microbenchmarks (selective
#: meta-predicate scans over chunk tables).
_SCAN_UNITS = {"columnar": 0.25}


def _seq_scan_cost(table: Table) -> float:
    """Work units for one full sequential scan of ``table``."""
    unit = _SCAN_UNITS.get(table.storage, 1.0)
    return float(max(1, table.row_count)) * unit


@dataclass(frozen=True)
class PlanDirectives:
    """Pin parts of a plan, for plan-space enumeration.

    Positions index the top-level FROM list *after* profile-dependent
    flattening (see :meth:`Planner.source_count`), in textual order —
    binding names are not stable across planning calls (flattening
    renames shadowed inner bindings with a global counter), positions
    are.  ``None`` entries leave the planner's own choice in place, so
    ``PlanDirectives()`` reproduces the default plan.  Directives apply
    to the outermost query block only; derived tables plan normally.
    """

    #: Permutation of FROM positions to join in, or None for the
    #: profile's own ordering.
    join_order: tuple[int, ...] | None = None
    #: Per-position access forcing: "scan" forbids index access,
    #: "index"/None keep the default selection.
    access_paths: tuple[str | None, ...] = ()
    #: Per-position join method forcing for non-driving sources:
    #: "nl" or "hash"; None keeps the cost-based choice.
    join_methods: tuple[str | None, ...] = ()

    def access_for(self, position: int) -> str | None:
        if position < len(self.access_paths):
            return self.access_paths[position]
        return None

    def join_for(self, position: int) -> str | None:
        if position < len(self.join_methods):
            return self.join_methods[position]
        return None


# ---------------------------------------------------------------------------
# helpers on expressions
# ---------------------------------------------------------------------------


def _is_constant(expr: ast.Expr) -> bool:
    """True when the expression references no table at all."""
    return not referenced_bindings(expr)


def _eq_sides(conjunct: ast.Expr) -> tuple[ast.Expr, ast.Expr] | None:
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
        return conjunct.left, conjunct.right
    return None


#: Operators that neither add nor drop rows — they inherit their child's
#: cardinality estimate so EXPLAIN shows an estimate on every
#: row-preserving operator.  GRPBY/DISTINCT reduce by an unknown factor
#: and deliberately stay unestimated.
_PASS_THROUGH = (phys.PReturn, phys.PSort, phys.PProject, phys.PMaterialize)


def _inherit_estimates(root: phys.PNode) -> None:
    def visit(node: phys.PNode) -> None:
        for child in node.children():
            visit(child)
        if node.est_rows is not None:
            return
        if isinstance(node, _PASS_THROUGH):
            kids = node.children()
            if kids:
                node.est_rows = kids[0].est_rows
        elif isinstance(node, phys.PLimit):
            child_est = node.child.est_rows
            if child_est is not None:
                node.est_rows = min(float(node.limit), child_est)

    visit(root)


@dataclass
class _Entry:
    """One FROM source being planned."""

    binding: str
    schema: Schema
    table: Table | None = None  # None for derived tables
    derived_plan: phys.PNode | None = None
    est_rows: float = 1.0
    #: Index into the block's FROM list (what PlanDirectives key on).
    position: int = 0


@dataclass
class _Conjunct:
    expr: ast.Expr
    order: int  # textual position
    bindings: frozenset[str] = frozenset()
    derived: bool = False  # added by transitive propagation

    @property
    def sql(self) -> str:
        return self.expr.sql()


class Planner:
    """Plans SELECT statements into physical trees."""

    def __init__(
        self,
        catalog: Catalog,
        profile: OptimizerProfile = OptimizerProfile.ADVANCED,
        subquery_executor: Callable[[ast.Select], set] | None = None,
        feedback=None,
    ) -> None:
        self._catalog = catalog
        self.profile = profile
        self._subquery_executor = subquery_executor
        #: Optional :class:`~repro.engine.feedback.CardinalityFeedback`
        #: consulted by :meth:`_estimate_access` before static guesses.
        self.feedback = feedback
        #: Directives for the block currently being planned (top of
        #: stack); derived tables push None so directives never leak
        #: into inner blocks.
        self._directive_stack: list[PlanDirectives | None] = []

    # -- public entry ------------------------------------------------------

    def plan_select(
        self,
        select: ast.Select,
        directives: PlanDirectives | None = None,
    ) -> phys.PReturn:
        if select.tenants is not None:
            raise PlanError(
                "FOR TENANTS is a multi-tenant dialect clause; execute it "
                "through MultiTenantDatabase.execute_cross, not the raw engine"
            )
        block = qualify_block(build_block(select), self._column_lookup)
        if self.profile is OptimizerProfile.ADVANCED:
            block = flatten_block(block)
        self._directive_stack.append(directives)
        try:
            root = self._plan_block(block)
        finally:
            self._directive_stack.pop()
        ret = phys.PReturn(schema=root.schema, child=root)
        _inherit_estimates(ret)
        return ret

    def source_count(self, select: ast.Select) -> int:
        """How many FROM sources the outermost block has after this
        profile's flattening — the position space
        :class:`PlanDirectives` index into."""
        block = qualify_block(build_block(select), self._column_lookup)
        if self.profile is OptimizerProfile.ADVANCED:
            block = flatten_block(block)
        return len(block.sources)

    @property
    def _directives(self) -> PlanDirectives | None:
        if self._directive_stack:
            return self._directive_stack[-1]
        return None

    def _column_lookup(self, table_name: str) -> list[str]:
        return [c.lname for c in self._catalog.table(table_name).columns]

    # -- block planning -------------------------------------------------------

    def _plan_block(self, block: QueryBlock) -> phys.PNode:
        entries = [
            self._make_entry(source, position)
            for position, source in enumerate(block.sources)
        ]
        if not entries:
            raise PlanError("SELECT without FROM is not supported")
        conjuncts = self._classify(block.conjuncts, entries)
        if self.profile is OptimizerProfile.ADVANCED:
            conjuncts = self._propagate_equalities(conjuncts)
        needed = self._needed_columns(block)

        order = self._order_entries(entries, conjuncts)
        consumed: set[int] = set()
        placed: set[str] = {order[0].binding}
        node = self._access(
            order[0], conjuncts, Schema([]), None, consumed, needed
        )
        if node.est_rows is None:
            node.est_rows = self._estimate_access(
                order[0],
                list(self._eq_map(order[0], conjuncts, set()).keys()),
            )
        # The access node's annotation is feedback-aware (it may carry a
        # learned post-residual cardinality), so the running estimate
        # reads it rather than re-deriving the static guess.
        outer_est = node.est_rows
        node = self._apply_filters(node, conjuncts, placed, consumed)
        if node.est_rows is not None:
            outer_est = node.est_rows
        for entry in order[1:]:
            entry_est = self._estimate_access(
                entry,
                list(self._eq_map(entry, conjuncts, placed).keys()),
            )
            node = self._join(
                node, entry, conjuncts, placed, consumed, needed, outer_est
            )
            outer_est *= max(1.0, entry_est)
            node.est_rows = outer_est
            placed.add(entry.binding)
            node = self._apply_filters(node, conjuncts, placed, consumed)
            if node.est_rows is not None:
                outer_est = node.est_rows

        leftover = [c for c in conjuncts if id(c) not in consumed and not c.derived]
        if leftover:
            raise PlanError(
                f"unplaced predicates: {[c.sql for c in leftover]}"
            )  # pragma: no cover - indicates a planner bug

        if block.is_aggregating:
            node = self._plan_group(node, block)
            node = self._plan_order(node, block, grouped=True)
        else:
            node = self._plan_order(node, block, grouped=False)
        if block.distinct:
            node = phys.PDistinct(schema=node.schema, child=node)
        if block.limit is not None:
            node = phys.PLimit(schema=node.schema, child=node, limit=block.limit)
        return node

    # -- entries ----------------------------------------------------------------

    def _make_entry(self, source: ast.Source, position: int = 0) -> _Entry:
        binding = source.binding.lower()
        if isinstance(source, ast.TableSource):
            table = self._catalog.table(source.name)
            schema = Schema([Slot(binding, c.lname) for c in table.columns])
            return _Entry(
                binding=binding,
                schema=schema,
                table=table,
                est_rows=float(max(1, table.row_count)),
                position=position,
            )
        # Derived tables plan with no directives in scope — directives
        # describe the outermost block only.
        self._directive_stack.append(None)
        try:
            inner = self._plan_block(self._qualified_inner(source.select))
        finally:
            self._directive_stack.pop()
        names = []
        inner_block = build_block(source.select)
        for i, item in enumerate(inner_block.items):
            names.append(output_name(item, i))
        schema = Schema([Slot(binding, n) for n in names])
        return _Entry(
            binding=binding,
            schema=schema,
            derived_plan=inner,
            est_rows=1000.0,
            position=position,
        )

    def _qualified_inner(self, select: ast.Select) -> QueryBlock:
        block = qualify_block(build_block(select), self._column_lookup)
        if self.profile is OptimizerProfile.ADVANCED:
            block = flatten_block(block)
        return block

    # -- conjunct classification ---------------------------------------------------

    def _classify(
        self, exprs: list[ast.Expr], entries: list[_Entry]
    ) -> list[_Conjunct]:
        known = {e.binding for e in entries}
        out = []
        for order, expr in enumerate(exprs):
            bindings = frozenset(b for b in referenced_bindings(expr) if b != "?")
            unknown = bindings - known
            if unknown:
                raise PlanError(f"predicate references unknown bindings {unknown}")
            out.append(_Conjunct(expr, order, bindings))
        return out

    def _propagate_equalities(self, conjuncts: list[_Conjunct]) -> list[_Conjunct]:
        """Derive constant restrictions through equality classes.

        From ``p.id = c.parent`` and ``p.id = ?`` derive ``c.parent = ?``
        — the pushdown the paper observed in DB2's plan (Figure 8,
        region 1).
        """
        parent: dict[tuple[str, str], tuple[str, str]] = {}

        def find(x):
            while parent.get(x, x) != x:
                parent[x] = parent.get(parent[x], parent[x])
                x = parent[x]
            return x

        def union(a, b):
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        col_eq_col: list[tuple[tuple[str, str], tuple[str, str]]] = []
        const_binds: dict[tuple[str, str], tuple[ast.Expr, int]] = {}
        for conjunct in conjuncts:
            sides = _eq_sides(conjunct.expr)
            if sides is None:
                continue
            left, right = sides
            l_col = isinstance(left, ast.ColumnRef)
            r_col = isinstance(right, ast.ColumnRef)
            if l_col and r_col:
                a = (left.table, left.column)
                b = (right.table, right.column)
                union(a, b)
                col_eq_col.append((a, b))
            elif l_col and _is_constant(right):
                const_binds[(left.table, left.column)] = (right, conjunct.order)
            elif r_col and _is_constant(left):
                const_binds[(right.table, right.column)] = (left, conjunct.order)

        existing = {
            (col, rhs.sql())
            for col, (rhs, _) in const_binds.items()
        }
        derived: list[_Conjunct] = []
        for col, (rhs, order) in list(const_binds.items()):
            root = find(col)
            for other in list(parent.keys()) + [root]:
                if other == col:
                    continue
                if find(other) != root:
                    continue
                key = (other, rhs.sql())
                if key in existing or other in const_binds:
                    continue
                existing.add(key)
                expr = ast.BinaryOp("=", ast.ColumnRef(other[0], other[1]), rhs)
                derived.append(
                    _Conjunct(expr, order, frozenset({other[0]}), derived=True)
                )
        return conjuncts + derived

    def _needed_columns(self, block: QueryBlock) -> dict[str, set[str]]:
        """Per-binding referenced columns; the ``""`` key marks the map
        *incomplete* (an unqualified reference or an expression shape the
        walk does not enumerate) — consumers that need a proven-complete
        set (column pruning) must then stand down.  The per-binding sets
        stay usable either way for cost heuristics (index-only covering
        checks re-verify against residuals separately)."""
        needed: dict[str, set[str]] = {}

        def walk(expr) -> None:
            if isinstance(expr, ast.ColumnRef):
                if expr.table is not None:
                    needed.setdefault(expr.table.lower(), set()).add(
                        expr.column.lower()
                    )
                else:
                    needed[""] = set()
            elif isinstance(expr, ast.BinaryOp):
                walk(expr.left)
                walk(expr.right)
            elif isinstance(expr, (ast.UnaryOp, ast.IsNull)):
                walk(expr.operand)
            elif isinstance(expr, ast.FuncCall):
                for a in expr.args:
                    walk(a)
            elif isinstance(expr, ast.InList):
                walk(expr.operand)
                for i in expr.items:
                    walk(i)
            elif isinstance(expr, ast.InSubquery):
                walk(expr.operand)
            elif not isinstance(expr, (ast.Literal, ast.Param)):
                needed[""] = set()

        for item in block.items:
            walk(item.expr)
        for conjunct in block.conjuncts:
            walk(conjunct)
        for expr in block.group_by:
            walk(expr)
        if block.having is not None:
            walk(block.having)
        for order_item in block.order_by:
            walk(order_item.expr)
        return needed

    # -- join ordering -----------------------------------------------------------

    def _order_entries(
        self, entries: list[_Entry], conjuncts: list[_Conjunct]
    ) -> list[_Entry]:
        directives = self._directives
        if directives is not None and directives.join_order is not None:
            by_position = {e.position: e for e in entries}
            if sorted(directives.join_order) != sorted(by_position):
                raise PlanError(
                    f"join_order {directives.join_order} does not cover "
                    f"FROM positions {sorted(by_position)}"
                )
            return [by_position[p] for p in directives.join_order]
        if len(entries) == 1:
            return entries
        if self.profile is OptimizerProfile.SIMPLE:
            return self._order_simple(entries, conjuncts)
        return self._order_advanced(entries, conjuncts)

    def _order_simple(
        self, entries: list[_Entry], conjuncts: list[_Conjunct]
    ) -> list[_Entry]:
        by_binding = {e.binding: e for e in entries}
        driver: _Entry | None = None
        for conjunct in sorted(conjuncts, key=lambda c: c.order):
            sides = _eq_sides(conjunct.expr)
            if sides is None:
                continue
            for left, right in (sides, sides[::-1]):
                if (
                    isinstance(left, ast.ColumnRef)
                    and left.table
                    and _is_constant(right)
                ):
                    entry = by_binding.get(left.table.lower())
                    if entry is None:
                        continue
                    if entry.table is not None and entry.table.find_index(
                        (left.column,)
                    ):
                        driver = entry
                        break
                    if entry.table is None:
                        driver = entry
                        break
            if driver is not None:
                break
        ordered = list(entries)
        if driver is not None:
            ordered.remove(driver)
            ordered.insert(0, driver)
        return ordered

    def _order_advanced(
        self, entries: list[_Entry], conjuncts: list[_Conjunct]
    ) -> list[_Entry]:
        remaining = list(entries)
        ordered: list[_Entry] = []
        placed: set[str] = set()

        def start_cost(entry: _Entry) -> float:
            eq_map = self._eq_map(entry, conjuncts, placed_bindings=set())
            return self._estimate_access(entry, list(eq_map.keys()))

        def next_cost(entry: _Entry) -> tuple[int, float]:
            eq_map = self._eq_map(entry, conjuncts, placed_bindings=placed)
            connected = any(
                entry.binding in c.bindings and c.bindings & placed
                for c in conjuncts
            )
            rows = self._estimate_access(entry, list(eq_map.keys()))
            return (0 if connected else 1, rows)

        first = min(remaining, key=start_cost)
        ordered.append(first)
        placed.add(first.binding)
        remaining.remove(first)
        while remaining:
            best = min(remaining, key=next_cost)
            ordered.append(best)
            placed.add(best.binding)
            remaining.remove(best)
        return ordered

    def _eq_map(
        self,
        entry: _Entry,
        conjuncts: list[_Conjunct],
        placed_bindings: set[str],
    ) -> dict[str, tuple[ast.Expr, _Conjunct]]:
        """Columns of ``entry`` bound by equality to expressions that are
        evaluable from ``placed_bindings`` (plus constants/params).
        Textual order decides ties; first bind wins."""
        eq_map: dict[str, tuple[ast.Expr, _Conjunct]] = {}
        allowed = placed_bindings
        for conjunct in sorted(conjuncts, key=lambda c: (c.derived, c.order)):
            sides = _eq_sides(conjunct.expr)
            if sides is None:
                continue
            for left, right in (sides, sides[::-1]):
                if not (
                    isinstance(left, ast.ColumnRef)
                    and left.table
                    and left.table.lower() == entry.binding
                ):
                    continue
                rhs_bindings = {
                    b for b in referenced_bindings(right) if b != "?"
                }
                if rhs_bindings - allowed:
                    continue
                if rhs_bindings and entry.binding in rhs_bindings:
                    continue
                column = left.column.lower()
                if column not in eq_map:
                    eq_map[column] = (right, conjunct)
                break
        return eq_map

    @staticmethod
    def _literal_inlist(expr: ast.Expr) -> tuple[str, frozenset] | None:
        """``(column, values)`` for a non-negated all-literal IN-list on a
        column, else ``None``.  Fused cross-tenant statements push their
        tenant-set predicate down as exactly this shape."""
        if (
            isinstance(expr, ast.InList)
            and not expr.negated
            and isinstance(expr.operand, ast.ColumnRef)
            and expr.items
            and all(isinstance(i, ast.Literal) for i in expr.items)
        ):
            values = frozenset(i.value for i in expr.items)
            return expr.operand.column.lower(), values
        return None

    def _residual_fp(self, conjunct: _Conjunct) -> str:
        """Feedback fingerprint for a residual conjunct.

        Literal IN-lists normalize to ``<column> in#<k>`` so feedback
        learned for one tenant set transfers to every other set of the
        same size — a per-literal fingerprint would mint one feedback
        key per tenant combination and never be seen twice."""
        inlist = self._literal_inlist(conjunct.expr)
        if inlist is not None:
            column, values = inlist
            return f"res:{column} in#{len(values)}"
        return f"res:{conjunct.sql}"

    def _inlist_cap(
        self, entry: _Entry, residuals: list[_Conjunct]
    ) -> float | None:
        """Static cardinality cap from literal IN-list residuals.

        ``col IN (v1..vk)`` matches at most k times the rows one
        equality on ``col`` would — so a fused cross-tenant scan's
        estimate scales with |tenant set| instead of collapsing to the
        bare table cardinality (pruning 2 of 50 tenants should look 25x
        cheaper, and the join order should react accordingly)."""
        cap = None
        for conjunct in residuals:
            inlist = self._literal_inlist(conjunct.expr)
            if inlist is None:
                continue
            column, values = inlist
            per_value = self._estimate_access(entry, [column])
            estimate = len(values) * per_value
            cap = estimate if cap is None else min(cap, estimate)
        return cap

    def _estimate_access(self, entry: _Entry, bound_columns: list[str]) -> float:
        if entry.table is None:
            return entry.est_rows
        table = entry.table
        rows = float(max(1, table.row_count))
        if not bound_columns:
            return rows
        if self.feedback is not None:
            learned = self.feedback.estimate(table.name, bound_columns)
            if learned is not None:
                # Observed rows-per-access overrides the static guess.
                return max(0.1, learned)
        info = table.find_index(tuple(bound_columns))
        if info is None:
            return rows * (0.5 ** len(bound_columns))
        matched = 0
        bound = {c.lower() for c in bound_columns}
        for col in info.column_names:
            if col.lower() in bound:
                matched += 1
            else:
                break
        if matched == len(info.column_names) and info.unique:
            return 1.0
        # Rows per matched prefix, from the index's incremental
        # distinct-prefix statistics.
        distinct = info.btree.prefix_distinct(matched)
        return max(1.0, rows / max(1, distinct))

    # -- access paths -------------------------------------------------------------

    def _access(
        self,
        entry: _Entry,
        conjuncts: list[_Conjunct],
        outer_schema: Schema,
        placed: set[str] | None,
        consumed: set[int],
        needed: dict[str, set[str]],
    ) -> phys.PNode:
        placed_bindings = placed or set()
        if entry.table is None:
            return self._derived_access(entry, conjuncts, consumed)
        table = entry.table
        eq_map = self._eq_map(entry, conjuncts, placed_bindings)
        directives = self._directives
        forced_access = (
            directives.access_for(entry.position)
            if directives is not None
            else None
        )
        range_low = range_high = None
        range_sql: list[str] = []
        range_col: str | None = None
        index_info, prefix = self._choose_index(entry, eq_map, conjuncts)

        # Range bounds on the column right after the equality prefix
        # narrow the scan; the original (possibly exclusive)
        # predicates stay in the residual, so bounds are
        # correctness-neutral.
        if index_info is None:
            index_info, range_low, range_high, range_sql = self._range_index(
                entry, conjuncts, placed_bindings
            )
            prefix = []
            if index_info is not None:
                range_col = index_info.column_names[0].lower()
        elif len(prefix) < len(index_info.column_names):
            next_col = index_info.column_names[len(prefix)].lower()
            range_low, range_high, range_sql = self._range_bounds(
                entry, conjuncts, placed_bindings, next_col
            )
            if range_low is not None or range_high is not None:
                range_col = next_col
        if forced_access == "scan":
            # Directive: no index access at all.  Join equalities that
            # would have driven an index probe fall through to the
            # post-join FILTER, so the plan stays correct — just
            # (usually) worse, which is the point of enumerating it.
            # range_col survives so the scan's feedback key matches the
            # index path's key for the same (eq, range) shape.
            index_info, prefix = None, []
            range_low = range_high = None
            range_sql = []

        # Equality columns this access node itself enforces (via index
        # keys or single-binding residuals) — what an analyzed run's
        # actual rows can legitimately teach the feedback store about.
        single_eq_cols = {
            col
            for col, (_, cj) in eq_map.items()
            if cj.bindings == frozenset({entry.binding})
        }
        # Range restrictions get a pseudo-column in the *pre-residual*
        # feedback key ("id:range") — how many index entries the range
        # matches is learned per (table, shape), not per constant.
        range_marker = {f"{range_col}:range"} if range_col is not None else set()
        # Non-equality residuals (ranges, IN lists, <>…) each contribute
        # a fingerprint to the *result* key.  Without them, an access
        # whose residual filters rows would teach its pure eq-column key
        # a too-small cardinality and poison every other query that
        # binds the same columns without those residuals.
        eq_conjunct_ids = {id(cj) for _, cj in eq_map.values()}
        single = [
            c
            for c in conjuncts
            if id(c) not in consumed
            and c.bindings == frozenset({entry.binding})
        ]
        non_eq_residuals = [c for c in single if id(c) not in eq_conjunct_ids]
        residual_fps = {self._residual_fp(c) for c in non_eq_residuals}
        # Literal IN-lists (tenant-set pushdowns) bound the estimate
        # statically: k values match at most k single-value probes.
        inlist_cap = self._inlist_cap(entry, non_eq_residuals)

        def annotate(
            node: phys.PNode,
            enforced: set[str],
            extra_key: set[str] | None = None,
        ) -> phys.PNode:
            key_cols = set(enforced) | set(extra_key or ())
            learned = (
                self.feedback.estimate(table.name, sorted(key_cols))
                if self.feedback is not None and key_cols
                else None
            )
            if learned is not None:
                # The full (eq ∪ residual-shape) key was observed: use
                # the measured result cardinality directly.
                node.est_rows = max(0.1, learned)
            else:
                node.est_rows = self._estimate_access(entry, sorted(enforced))
                if inlist_cap is not None:
                    node.est_rows = max(
                        0.1, min(node.est_rows, inlist_cap)
                    )
            if key_cols:
                node.feedback_key = (
                    table.name.lower(),
                    tuple(sorted(key_cols)),
                )
            return node

        # Feedback-driven access demotion: once an analyzed run has
        # taught us how many index entries this (prefix, range shape)
        # access matches, compare a B+-tree descent plus per-entry work
        # against one sequential scan and demote wide index ranges to
        # TBSCAN.  Join probes (prefix columns bound by another table)
        # are exempt — their per-probe cost is the join method's call.
        if (
            index_info is not None
            and forced_access is None
            and self.feedback is not None
            and set(prefix) <= single_eq_cols
        ):
            learned = self.feedback.estimate(
                table.name, sorted(set(prefix) | range_marker)
            )
            if learned is not None:
                index_cols = {c.lower() for c in index_info.column_names}
                covers = set(needed.get(entry.binding, set())) <= index_cols
                per_entry = 1.0 if covers else 2.5
                index_cost = 3.0 + per_entry * max(0.1, learned)
                if _seq_scan_cost(table) < index_cost:
                    index_info, prefix = None, []
                    range_low = range_high = None
                    range_sql = []

        usable_range = range_low is not None or range_high is not None
        if index_info is None or not (prefix or usable_range):
            residual_conjuncts = single
            compiler = ExprCompiler(entry.schema, self._subquery_executor)
            node: phys.PNode = phys.PTableScan(
                schema=entry.schema,
                table_name=table.name,
                binding=entry.binding,
                residual=[compiler.compile(c.expr) for c in residual_conjuncts],
                residual_sql=[c.sql for c in residual_conjuncts],
                used_columns=self._used_slots(entry, needed, residual_conjuncts),
            )
            consumed.update(id(c) for c in residual_conjuncts)
            self._consume_derived_duplicates(conjuncts, consumed, placed_bindings | {entry.binding})
            # A (possibly demoted) scan's result key matches the index
            # path's: same eq columns, same residual fingerprints.
            return annotate(node, single_eq_cols, residual_fps)

        key_compiler = ExprCompiler(outer_schema, self._subquery_executor)
        key_exprs, key_sql = [], []
        for column in prefix:
            rhs, conjunct = eq_map[column]
            key_exprs.append(key_compiler.compile(rhs))
            key_sql.append(f"{entry.binding}.{column} = {rhs.sql()}")
            consumed.add(id(conjunct))

        needed_cols = set(needed.get(entry.binding, set()))
        index_cols = {c.lower() for c in index_info.column_names}
        residual_conjuncts = [
            c
            for c in single
            if id(c) not in consumed
        ]
        residual_ok_index_only = all(
            self._columns_of_binding(c.expr, entry.binding) <= index_cols
            for c in residual_conjuncts
        )
        index_only = needed_cols <= index_cols and residual_ok_index_only

        compiler = ExprCompiler(entry.schema, self._subquery_executor)
        bound_compiler = ExprCompiler(outer_schema, self._subquery_executor)
        ixscan = phys.PIndexScan(
            schema=entry.schema,
            table_name=table.name,
            binding=entry.binding,
            index_name=index_info.name,
            key_exprs=key_exprs,
            key_sql=key_sql,
            index_only=index_only,
            residual=[compiler.compile(c.expr) for c in residual_conjuncts],
            residual_sql=[c.sql for c in residual_conjuncts],
            range_low=bound_compiler.compile(range_low)
            if range_low is not None
            else None,
            range_high=bound_compiler.compile(range_high)
            if range_high is not None
            else None,
            range_sql=range_sql,
        )
        consumed.update(id(c) for c in residual_conjuncts)
        self._consume_derived_duplicates(conjuncts, consumed, placed_bindings | {entry.binding})
        enforced = set(prefix) | single_eq_cols
        if index_only:
            return annotate(ixscan, enforced, residual_fps)
        # The IXSCAN's own stats count prefix/range matches *before*
        # residuals — exactly the per-entry cost the demotion decision
        # needs — so it carries the pre-residual key; the FETCH above it
        # carries the post-residual result key.
        ixscan.est_rows = self._estimate_access(entry, sorted(set(prefix)))
        pre_key = set(prefix) | range_marker
        if pre_key:
            ixscan.feedback_key = (table.name.lower(), tuple(sorted(pre_key)))
        fetch = phys.PFetch(
            schema=entry.schema, child=ixscan, table_name=table.name
        )
        return annotate(fetch, enforced, residual_fps)

    _RANGE_OPS = {"<", "<=", ">", ">="}
    _FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}

    def _range_bounds(
        self,
        entry: _Entry,
        conjuncts: list[_Conjunct],
        placed_bindings: set[str],
        column: str,
    ) -> tuple[ast.Expr | None, ast.Expr | None, list[str]]:
        """Range restrictions on one column, evaluable from the outer
        context.  The first usable lower and upper bound win; the
        original conjuncts stay in the residual (not consumed)."""
        low = high = None
        sqls: list[str] = []
        for conjunct in sorted(conjuncts, key=lambda c: c.order):
            if conjunct.derived:
                continue
            expr = conjunct.expr
            if not (
                isinstance(expr, ast.BinaryOp) and expr.op in self._RANGE_OPS
            ):
                continue
            for lhs, rhs, op in (
                (expr.left, expr.right, expr.op),
                (expr.right, expr.left, self._FLIP[expr.op]),
            ):
                if not (
                    isinstance(lhs, ast.ColumnRef)
                    and lhs.table
                    and lhs.table.lower() == entry.binding
                    and lhs.column.lower() == column
                ):
                    continue
                rhs_bindings = {
                    b for b in referenced_bindings(rhs) if b != "?"
                }
                if rhs_bindings - placed_bindings:
                    continue
                if op in (">", ">=") and low is None:
                    low = rhs
                    sqls.append(f"{entry.binding}.{column} >= {rhs.sql()}")
                elif op in ("<", "<=") and high is None:
                    high = rhs
                    sqls.append(f"{entry.binding}.{column} <= {rhs.sql()}")
                break
        return low, high, sqls

    def _range_index(
        self,
        entry: _Entry,
        conjuncts: list[_Conjunct],
        placed_bindings: set[str],
    ):
        """When no equality prefix exists, try an index whose leading
        column carries a range restriction."""
        table = entry.table
        assert table is not None
        for info in table.indexes.values():
            leading = info.column_names[0].lower()
            low, high, sqls = self._range_bounds(
                entry, conjuncts, placed_bindings, leading
            )
            if low is not None or high is not None:
                return info, low, high, sqls
        return None, None, None, []

    def _consume_derived_duplicates(
        self, conjuncts: list[_Conjunct], consumed: set[int], available: set[str]
    ) -> None:
        """Derived (propagated) equalities never need re-checking: they are
        implied by the originals.  Mark available ones consumed."""
        for conjunct in conjuncts:
            if conjunct.derived and conjunct.bindings <= available:
                consumed.add(id(conjunct))

    def _used_slots(
        self,
        entry: "_Entry",
        needed: dict[str, set[str]],
        residuals: list["_Conjunct"],
    ) -> list[int] | None:
        """Slot positions a table scan provably needs, or ``None``.

        ``None`` (prune nothing) whenever the block's reference map is
        incomplete, a residual's columns cannot be proven, a name fails
        to resolve, or pruning would not drop anything.  Residuals are
        re-walked strictly rather than trusted to appear in ``needed``:
        derived (pushed-down) conjuncts are not part of the block's own
        conjunct list.
        """
        if "" in needed:
            return None
        names = set(needed.get(entry.binding, set()))
        for conjunct in residuals:
            cols = self._strict_columns(conjunct.expr, entry.binding)
            if cols is None:
                return None
            names |= cols
        schema = entry.schema
        if len(names) >= len(schema.slots):
            return None
        try:
            return sorted(
                schema.resolve(entry.binding, name) for name in names
            )
        except (UnknownObjectError, PlanError):
            return None

    @staticmethod
    def _strict_columns(expr: ast.Expr, binding: str) -> set[str] | None:
        """Columns of ``binding`` referenced in ``expr``, or ``None``
        when the set cannot be proven complete (an unqualified reference
        or an unenumerated expression shape)."""
        cols: set[str] = set()
        ok = True

        def walk(node):
            nonlocal ok
            if isinstance(node, ast.ColumnRef):
                if node.table is None:
                    ok = False
                elif node.table.lower() == binding:
                    cols.add(node.column.lower())
            elif isinstance(node, ast.BinaryOp):
                walk(node.left)
                walk(node.right)
            elif isinstance(node, (ast.UnaryOp, ast.IsNull)):
                walk(node.operand)
            elif isinstance(node, ast.FuncCall):
                for a in node.args:
                    walk(a)
            elif isinstance(node, ast.InList):
                walk(node.operand)
                for i in node.items:
                    walk(i)
            elif isinstance(node, ast.InSubquery):
                walk(node.operand)
            elif not isinstance(node, (ast.Literal, ast.Param)):
                ok = False

        walk(expr)
        return cols if ok else None

    @staticmethod
    def _columns_of_binding(expr: ast.Expr, binding: str) -> set[str]:
        cols: set[str] = set()

        def walk(node):
            if isinstance(node, ast.ColumnRef):
                if node.table and node.table.lower() == binding:
                    cols.add(node.column.lower())
            elif isinstance(node, ast.BinaryOp):
                walk(node.left)
                walk(node.right)
            elif isinstance(node, (ast.UnaryOp, ast.IsNull)):
                walk(node.operand)
            elif isinstance(node, ast.FuncCall):
                for a in node.args:
                    walk(a)
            elif isinstance(node, ast.InList):
                walk(node.operand)
                for i in node.items:
                    walk(i)

        walk(expr)
        return cols

    def _choose_index(
        self,
        entry: _Entry,
        eq_map: dict[str, tuple[ast.Expr, _Conjunct]],
        conjuncts: list[_Conjunct],
    ):
        table = entry.table
        assert table is not None
        if not eq_map:
            return None, []
        if self.profile is OptimizerProfile.ADVANCED:
            info = table.find_index(tuple(eq_map.keys()))
            if info is None:
                return None, []
            prefix = []
            for col in info.column_names:
                if col.lower() in eq_map:
                    prefix.append(col.lower())
                else:
                    break
            return info, prefix
        # SIMPLE: the index whose leading column is bound by the textually
        # first predicate wins, even if another index would match longer.
        ordered_cols = [
            col
            for col, (_, conjunct) in sorted(
                eq_map.items(), key=lambda kv: kv[1][1].order
            )
        ]
        for col in ordered_cols:
            candidates = [
                info
                for info in table.indexes.values()
                if info.column_names[0].lower() == col
            ]
            if not candidates:
                continue
            best, best_prefix = None, []
            for info in candidates:
                prefix = []
                for c in info.column_names:
                    if c.lower() in eq_map:
                        prefix.append(c.lower())
                    else:
                        break
                if len(prefix) > len(best_prefix):
                    best, best_prefix = info, prefix
            if best is not None:
                return best, best_prefix
        return None, []

    def _derived_access(
        self, entry: _Entry, conjuncts: list[_Conjunct], consumed: set[int]
    ) -> phys.PNode:
        single = [
            c
            for c in conjuncts
            if id(c) not in consumed and c.bindings == frozenset({entry.binding})
        ]
        compiler = ExprCompiler(entry.schema, self._subquery_executor)
        node = phys.PMaterialize(
            schema=entry.schema,
            child=entry.derived_plan,
            binding=entry.binding,
            residual=[compiler.compile(c.expr) for c in single],
            residual_sql=[c.sql for c in single],
        )
        consumed.update(id(c) for c in single)
        node.est_rows = entry.est_rows * (0.5 ** len(single))
        return node

    # -- joins --------------------------------------------------------------------

    def _join(
        self,
        outer: phys.PNode,
        entry: _Entry,
        conjuncts: list[_Conjunct],
        placed: set[str],
        consumed: set[int],
        needed: dict[str, set[str]],
        outer_est: float = 100.0,
    ) -> phys.PNode:
        combined = outer.schema.extend(entry.schema)
        directives = self._directives
        forced_join = (
            directives.join_for(entry.position)
            if directives is not None
            else None
        )
        if entry.table is not None:
            if forced_join == "hash":
                return self._hash_join(
                    outer, entry, conjuncts, placed, consumed, needed, combined
                )
            if forced_join == "nl":
                inner = self._access(
                    entry, conjuncts, outer.schema, placed, consumed, needed
                )
                return phys.PNLJoin(schema=combined, outer=outer, inner=inner)
            eq_with_outer = self._eq_map(entry, conjuncts, placed)
            join_cols = [
                col
                for col, (rhs, _) in eq_with_outer.items()
                if referenced_bindings(rhs) & placed
            ]
            _, prefix = self._choose_index(entry, eq_with_outer, conjuncts)
            use_nl = any(col in join_cols for col in prefix)
            # Constant-only restrictions (including transitively derived
            # ones like c.parent = ? from p.id = c.parent AND p.id = ?).
            const_only = self._eq_map(entry, conjuncts, placed_bindings=set())
            if self.profile is OptimizerProfile.ADVANCED and join_cols:
                # Cost-based choice (Figure 8's shape), in the same work
                # units the quality harness measures: an index probe is
                # ~3 units of B+-tree descent plus ~2.5 per fetched row
                # (fetch + data page); a scan is ~1 per row.  NLJOIN
                # pays a probe per outer row; HSJOIN pays the inner
                # access once (constant-restricted when an index
                # matches, a full scan otherwise), materializes the
                # build, then probes per outer row.
                est_full = self._estimate_access(
                    entry, list(eq_with_outer.keys())
                )
                est_const = self._estimate_access(
                    entry, list(const_only.keys())
                )
                _, const_prefix = self._choose_index(entry, const_only, conjuncts)
                if const_prefix:
                    inner_access = 3.0 + 2.5 * est_const
                    if entry.table.storage == "columnar":
                        # Hash-build scans are cheaper per row on
                        # columnar tables (predicates run as column
                        # comprehensions before row assembly), so the
                        # build may beat even a const-prefix index
                        # access; ADVANCED plans shift toward hash
                        # joins over columnar inners.  Heap costing is
                        # deliberately untouched — the optimizer-quality
                        # harness pins conventional-layout plans.
                        inner_access = min(
                            inner_access, _seq_scan_cost(entry.table)
                        )
                else:
                    inner_access = _seq_scan_cost(entry.table)
                nl_cost = outer_est * (3.0 + 2.5 * est_full)
                hs_cost = inner_access + est_const + outer_est
                if not use_nl or hs_cost < nl_cost:
                    return self._hash_join(
                        outer,
                        entry,
                        conjuncts,
                        placed,
                        consumed,
                        needed,
                        combined,
                    )
            if use_nl:
                inner = self._access(
                    entry, conjuncts, outer.schema, placed, consumed, needed
                )
                return phys.PNLJoin(schema=combined, outer=outer, inner=inner)
            if join_cols:
                return self._hash_join(
                    outer, entry, conjuncts, placed, consumed, needed, combined
                )
            # No join predicate: cross join via nested loop re-scan.
            inner = self._access(
                entry, conjuncts, outer.schema, placed, consumed, needed
            )
            return phys.PNLJoin(schema=combined, outer=outer, inner=inner)
        # Derived table inner: hash join if possible, else NL over cache.
        join_conjuncts = self._joinable_eqs(entry, conjuncts, placed, consumed)
        inner = self._derived_access(entry, conjuncts, consumed)
        if forced_join == "nl":
            # Join equalities stay unconsumed and land in the post-join
            # FILTER.
            return phys.PNLJoin(schema=combined, outer=outer, inner=inner)
        if join_conjuncts:
            return self._build_hsjoin(
                outer, inner, entry, join_conjuncts, consumed, combined
            )
        return phys.PNLJoin(schema=combined, outer=outer, inner=inner)

    def _joinable_eqs(
        self,
        entry: _Entry,
        conjuncts: list[_Conjunct],
        placed: set[str],
        consumed: set[int],
    ) -> list[tuple[ast.Expr, ast.Expr, _Conjunct]]:
        """(outer_expr, inner_expr, conjunct) equality pairs."""
        pairs = []
        for conjunct in conjuncts:
            if id(conjunct) in consumed:
                continue
            sides = _eq_sides(conjunct.expr)
            if sides is None:
                continue
            left, right = sides
            lb = {b for b in referenced_bindings(left) if b != "?"}
            rb = {b for b in referenced_bindings(right) if b != "?"}
            # A true join pair needs the outer side to reference at least
            # one placed binding; constant = column restrictions belong
            # to the inner access path instead.
            if lb and lb <= placed and rb == {entry.binding}:
                pairs.append((left, right, conjunct))
            elif rb and rb <= placed and lb == {entry.binding}:
                pairs.append((right, left, conjunct))
        return pairs

    def _hash_join(
        self,
        outer: phys.PNode,
        entry: _Entry,
        conjuncts: list[_Conjunct],
        placed: set[str],
        consumed: set[int],
        needed: dict[str, set[str]],
        combined: Schema,
    ) -> phys.PNode:
        join_pairs = self._joinable_eqs(entry, conjuncts, placed, consumed)
        inner = self._access(
            entry, conjuncts, Schema([]), set(), consumed, needed
        )
        return self._build_hsjoin(outer, inner, entry, join_pairs, consumed, combined)

    def _build_hsjoin(
        self,
        outer: phys.PNode,
        inner: phys.PNode,
        entry: _Entry,
        join_pairs: list[tuple[ast.Expr, ast.Expr, _Conjunct]],
        consumed: set[int],
        combined: Schema,
    ) -> phys.PNode:
        outer_compiler = ExprCompiler(outer.schema, self._subquery_executor)
        inner_compiler = ExprCompiler(entry.schema, self._subquery_executor)
        left_keys, right_keys, key_sql = [], [], []
        for outer_expr, inner_expr, conjunct in join_pairs:
            left_keys.append(outer_compiler.compile(outer_expr))
            right_keys.append(inner_compiler.compile(inner_expr))
            key_sql.append(f"{outer_expr.sql()} = {inner_expr.sql()}")
            consumed.add(id(conjunct))
        if not left_keys:
            return phys.PNLJoin(schema=combined, outer=outer, inner=inner)
        return phys.PHSJoin(
            schema=combined,
            left=outer,
            right=inner,
            left_keys=left_keys,
            right_keys=right_keys,
            key_sql=key_sql,
        )

    def _apply_filters(
        self,
        node: phys.PNode,
        conjuncts: list[_Conjunct],
        placed: set[str],
        consumed: set[int],
    ) -> phys.PNode:
        pending = [
            c
            for c in conjuncts
            if id(c) not in consumed and c.bindings <= placed and not c.derived
        ]
        self._consume_derived_duplicates(conjuncts, consumed, placed)
        if not pending:
            return node
        compiler = ExprCompiler(node.schema, self._subquery_executor)
        predicates = [compiler.compile(c.expr) for c in pending]
        consumed.update(id(c) for c in pending)
        filt = phys.PFilter(
            schema=node.schema,
            child=node,
            predicates=predicates,
            predicate_sql=[c.sql for c in pending],
        )
        if node.est_rows is not None:
            filt.est_rows = node.est_rows * (0.5 ** len(pending))
        return filt

    # -- grouping / projection / ordering -------------------------------------------

    def _plan_group(self, node: phys.PNode, block: QueryBlock) -> phys.PNode:
        child_compiler = ExprCompiler(node.schema, self._subquery_executor)
        group_exprs = [child_compiler.compile(e) for e in block.group_by]

        aggs: list[phys.AggSpec] = []
        agg_index: dict[ast.FuncCall, int] = {}

        def register_aggs(expr: ast.Expr) -> None:
            if isinstance(expr, ast.FuncCall) and expr.is_aggregate:
                if expr not in agg_index:
                    if expr.star:
                        spec = phys.AggSpec("COUNT_STAR", None)
                    else:
                        if len(expr.args) != 1:
                            raise PlanError(
                                f"{expr.name} takes exactly one argument"
                            )
                        spec = phys.AggSpec(
                            expr.name.upper(),
                            child_compiler.compile(expr.args[0]),
                            expr.distinct,
                        )
                    agg_index[expr] = len(aggs)
                    aggs.append(spec)
                return
            if isinstance(expr, ast.BinaryOp):
                register_aggs(expr.left)
                register_aggs(expr.right)
            elif isinstance(expr, (ast.UnaryOp, ast.IsNull)):
                register_aggs(expr.operand)
            elif isinstance(expr, ast.FuncCall):
                for a in expr.args:
                    register_aggs(a)

        for item in block.items:
            register_aggs(item.expr)
        if block.having is not None:
            register_aggs(block.having)
        for order_item in block.order_by:
            register_aggs(order_item.expr)

        # Pseudo-schema over (group keys ..., agg values ...).
        pseudo_slots = [Slot(None, f"__g{i}") for i in range(len(block.group_by))]
        pseudo_slots += [Slot(None, f"__a{i}") for i in range(len(aggs))]
        pseudo = Schema(pseudo_slots)
        pseudo_compiler = ExprCompiler(pseudo, self._subquery_executor)

        def to_pseudo(expr: ast.Expr) -> ast.Expr:
            for i, g in enumerate(block.group_by):
                if expr == g:
                    return ast.ColumnRef(None, f"__g{i}")
            if isinstance(expr, ast.FuncCall) and expr.is_aggregate:
                return ast.ColumnRef(None, f"__a{agg_index[expr]}")
            if isinstance(expr, ast.BinaryOp):
                return ast.BinaryOp(
                    expr.op, to_pseudo(expr.left), to_pseudo(expr.right)
                )
            if isinstance(expr, ast.UnaryOp):
                return ast.UnaryOp(expr.op, to_pseudo(expr.operand))
            if isinstance(expr, ast.IsNull):
                return ast.IsNull(to_pseudo(expr.operand), expr.negated)
            if isinstance(expr, ast.FuncCall):
                return ast.FuncCall(
                    expr.name,
                    tuple(to_pseudo(a) for a in expr.args),
                    expr.star,
                    expr.distinct,
                )
            if isinstance(expr, ast.ColumnRef):
                raise PlanError(
                    f"column {expr.sql()} must appear in GROUP BY or an aggregate"
                )
            return expr

        outputs = []
        for item in block.items:
            outputs.append(
                phys.OutputSpec(post=pseudo_compiler.compile(to_pseudo(item.expr)))
            )
        having = (
            pseudo_compiler.compile(to_pseudo(block.having))
            if block.having is not None
            else None
        )
        out_schema = Schema(
            [Slot(None, name) for name in block.output_names()]
        )
        grp = phys.PGroup(
            schema=out_schema,
            child=node,
            group_exprs=group_exprs,
            aggs=aggs,
            outputs=outputs,
            having=having,
        )
        # ORDER BY for grouped queries is handled against the pseudo rows
        # by storing compiled order keys on the node via _plan_order.
        grp._pseudo_compiler = pseudo_compiler  # type: ignore[attr-defined]
        grp._to_pseudo = to_pseudo  # type: ignore[attr-defined]
        return grp

    @staticmethod
    def _output_position(
        block: QueryBlock, expr: ast.Expr
    ) -> int | None:
        """The output column an ORDER BY key denotes, if any.

        Matching is by exact expression text against a select item, or
        by a (unique) unqualified reference to an output name.  Name
        matching alone is NOT sound for qualified refs: after subquery
        flattening, a physical column (``f0.val``) can collide with an
        output name (``val``) that projects a *different* expression,
        and the schema resolver's name-only fallback would silently
        sort on the wrong column."""
        rendered = expr.sql()
        for position, item in enumerate(block.items):
            if item.expr.sql() == rendered:
                return position
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            lowered = [n.lower() for n in block.output_names()]
            name = expr.column.lower()
            if lowered.count(name) == 1:
                return lowered.index(name)
        return None

    def _plan_order(
        self, node: phys.PNode, block: QueryBlock, *, grouped: bool
    ) -> phys.PNode:
        if grouped:
            out_schema = node.schema
            if not block.order_by:
                return node
            out_compiler = ExprCompiler(out_schema, self._subquery_executor)
            pseudo_compiler = node._pseudo_compiler  # type: ignore[attr-defined]
            to_pseudo = node._to_pseudo  # type: ignore[attr-defined]
            output_width = len(out_schema.slots)
            keys: list[tuple] = []
            hidden = 0
            for order_item in block.order_by:
                expr = order_item.expr
                out_position = self._output_position(block, expr)
                qualified = (
                    isinstance(expr, ast.ColumnRef) and expr.table is not None
                )
                compiled = None
                if out_position is not None:
                    compiled = (
                        lambda row, params, i=out_position: row[i]
                    )
                elif not qualified:
                    try:
                        # Expressions over aliases / output columns sort
                        # on the visible row.
                        compiled = out_compiler.compile(expr)
                    except EngineError:
                        compiled = None
                if compiled is None:
                    # Anything else (ORDER BY COUNT(*), ORDER BY a group
                    # expression not in the select list) becomes a hidden
                    # output computed from the pseudo (keys+aggs) row.
                    try:
                        post = pseudo_compiler.compile(to_pseudo(expr))
                    except EngineError:
                        raise PlanError(
                            f"ORDER BY {expr.sql()} must reference output "
                            "columns, GROUP BY expressions, or aggregates"
                        ) from None
                    position = output_width + hidden
                    hidden += 1
                    node.outputs.append(phys.OutputSpec(post=post))
                    node.schema.slots.append(Slot(None, f"__ord{position}"))
                    compiled = (
                        lambda row, params, position=position: row[position]
                    )
                keys.append((compiled, order_item.descending))
            sort = phys.PSort(schema=node.schema, child=node, keys=keys)
            if hidden == 0:
                return sort
            # Strip the hidden sort keys.
            visible = Schema(node.schema.slots[:output_width])
            return phys.PProject(
                schema=visible,
                child=sort,
                exprs=[
                    (lambda row, params, i=i: row[i])
                    for i in range(output_width)
                ],
                labels=[slot.name for slot in visible.slots],
            )

        # Non-aggregated: decide sort placement (before or after project).
        out_names = block.output_names()
        out_schema = Schema([Slot(None, n) for n in out_names])
        child_compiler = ExprCompiler(node.schema, self._subquery_executor)
        exprs = [child_compiler.compile(i.expr) for i in block.items]
        project = phys.PProject(
            schema=out_schema,
            child=node,
            exprs=exprs,
            labels=[i.sql() for i in block.items],
        )
        if not block.order_by:
            return project
        # Post-projection sort when every key denotes an output column
        # (by position — see _output_position for why name matching
        # alone is unsound after flattening).
        post_keys, ok = [], True
        for order_item in block.order_by:
            position = self._output_position(block, order_item.expr)
            if position is None:
                ok = False
                break
            post_keys.append(
                (
                    lambda row, params, i=position: row[i],
                    order_item.descending,
                )
            )
        if ok:
            return phys.PSort(schema=out_schema, child=project, keys=post_keys)
        try:
            pre_keys = [
                (child_compiler.compile(o.expr), o.descending)
                for o in block.order_by
            ]
        except EngineError:
            # Expressions over output aliases (ORDER BY alias + 1): only
            # the projected row can evaluate them.
            out_compiler = ExprCompiler(out_schema, self._subquery_executor)
            post_keys = [
                (out_compiler.compile(o.expr), o.descending)
                for o in block.order_by
            ]
            return phys.PSort(
                schema=out_schema, child=project, keys=post_keys
            )
        sort = phys.PSort(schema=node.schema, child=node, keys=pre_keys)
        return phys.PProject(
            schema=out_schema,
            child=sort,
            exprs=exprs,
            labels=[i.sql() for i in block.items],
        )
