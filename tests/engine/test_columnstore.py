"""Tests for column-major storage: pages, batches, DDL, and recovery.

The :class:`ColumnStore` must behave exactly like a :class:`HeapFile`
observed through any public surface — same rows, same placement, same
counters — while holding values column-major with per-column null
bitmaps.  These tests pin that equivalence (property-tested against a
shadow heap), the null bitmap maintenance across batch boundaries, the
``USING columnar`` DDL surface, and WAL/checkpoint recovery of columnar
tables.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.columnstore import ColumnBatch, ColumnPage, ColumnStore
from repro.engine.database import Database
from repro.engine.errors import ExecutionError, UnknownObjectError
from repro.engine.heap import HeapFile, InsertStrategy
from repro.engine.pager import BufferPool
from repro.engine.sql.parser import parse_statement


def make_store(ncols=3, strategy=InsertStrategy.FIRST_FIT, capacity=64):
    pool = BufferPool(capacity_pages=capacity)
    store = ColumnStore(pool, segment_id=1, strategy=strategy, ncols=ncols)
    return store, pool


def make_pair(ncols=3, capacity=64):
    """A ColumnStore and a HeapFile over separate pools — apply the same
    operations to both and their observable behaviour must match."""
    store, _ = make_store(ncols=ncols, capacity=capacity)
    pool = BufferPool(capacity_pages=capacity)
    heap = HeapFile(pool, segment_id=1, strategy=InsertStrategy.FIRST_FIT)
    return store, heap


class TestBasicOperations:
    def test_roundtrip(self):
        store, _ = make_store()
        rid = store.insert(("a", 1, None), width=10)
        assert store.fetch(rid) == ("a", 1, None)

    def test_scan_preserves_rows_and_order(self):
        store, _ = make_store(ncols=2)
        rows = [(i, f"r{i}") for i in range(20)]
        for row in rows:
            store.insert(row, width=20)
        assert [r for _rid, r in store.scan()] == rows

    def test_update_in_place_and_fetch_sees_new_value(self):
        store, _ = make_store(ncols=2)
        rid = store.insert((1, "old"), width=10)
        assert store.fetch(rid) == (1, "old")  # populates the row cache
        new_rid = store.update(rid, (1, "new"), width=10)
        assert new_rid == rid
        assert store.fetch(new_rid) == (1, "new")

    def test_delete_then_fetch_raises(self):
        store, _ = make_store()
        rid = store.insert((1, 2, 3), width=10)
        store.delete(rid)
        with pytest.raises(ExecutionError):
            store.fetch(rid)
        with pytest.raises(ExecutionError):
            store.delete(rid)

    def test_tombstone_slot_reuse(self):
        store, _ = make_store(ncols=1)
        rids = [store.insert((i,), width=10) for i in range(5)]
        store.delete(rids[2])
        replacement = store.insert((99,), width=10)
        assert replacement == rids[2]  # same page, same slot
        assert sorted(v for _rid, (v,) in store.scan()) == [0, 1, 3, 4, 99]


class TestNullBitmaps:
    def test_bitmap_tracks_nulls_per_column(self):
        store, pool = make_store(ncols=3)
        store.insert((None, 1, "x"), width=10)
        store.insert((2, None, None), width=10)
        page = pool.read(store.page_ids()[0])
        payload: ColumnPage = page.payload
        assert payload.nulls[0] == 0b01
        assert payload.nulls[1] == 0b10
        assert payload.nulls[2] == 0b10

    def test_bitmap_cleared_on_delete_and_rewrite(self):
        store, pool = make_store(ncols=2)
        rid = store.insert((None, "x"), width=10)
        store.delete(rid)
        payload = pool.read(rid.page_id).payload
        assert payload.nulls == [0, 0]
        store.insert((1, None), width=10)  # reuses the tombstone slot
        assert payload.nulls == [0, 1]

    @pytest.mark.parametrize("batch_rows", (1, 2, 3, 7, 64))
    def test_nulls_survive_batch_boundaries(self, batch_rows):
        """NULLs must come back as NULLs whichever batch they land in."""
        store, _ = make_store(ncols=2)
        rows = [
            (i if i % 3 else None, None if i % 5 == 0 else f"s{i}")
            for i in range(50)
        ]
        for row in rows:
            store.insert(row, width=12)
        flattened = [
            tuple(r)
            for batch in store.scan_batches(batch_rows)
            for r in batch
        ]
        assert flattened == rows


class TestScanBatches:
    @pytest.mark.parametrize("batch_rows", (1, 2, 5, 16, 100, 10_000))
    def test_batch_sizes_and_contents(self, batch_rows):
        store, _ = make_store(ncols=2)
        rows = [(i, f"r{i}") for i in range(137)]
        for row in rows:
            store.insert(row, width=16)
        batches = list(store.scan_batches(batch_rows))
        assert [tuple(r) for b in batches for r in b] == rows
        # Full batches except possibly the last — identical carving to
        # the heap's scan_batches.
        assert all(len(b) == batch_rows for b in batches[:-1])
        assert 0 < len(batches[-1]) <= batch_rows

    def test_empty_table_yields_nothing(self):
        store, _ = make_store()
        assert list(store.scan_batches(64)) == []
        assert list(store.scan()) == []

    def test_skips_tombstones(self):
        store, _ = make_store(ncols=1)
        rids = [store.insert((i,), width=10) for i in range(10)]
        for rid in rids[::2]:
            store.delete(rid)
        values = [v for b in store.scan_batches(4) for (v,) in b]
        assert values == [1, 3, 5, 7, 9]

    def test_yielded_batches_are_insert_isolated(self):
        """Batches handed downstream must not alias page internals:
        later inserts cannot mutate a batch already yielded."""
        store, _ = make_store(ncols=1)
        for i in range(8):
            store.insert((i,), width=10)
        gen = store.scan_batches(4)
        first = next(gen)
        head = [tuple(r) for r in first]
        store.insert((99,), width=10)
        assert [tuple(r) for r in first] == head

    def test_page_accounting_matches_scan(self):
        store, pool = make_store(ncols=2)
        for i in range(200):
            store.insert((i, "x" * 20), width=30)
        before = pool.stats.snapshot()
        list(store.scan())
        via_scan = pool.stats.delta(before).logical_total
        before = pool.stats.snapshot()
        list(store.scan_batches(64))
        assert pool.stats.delta(before).logical_total == via_scan


class TestColumnBatch:
    def test_mixed_type_columns_round_trip(self):
        batch = ColumnBatch([[1, None, 3], ["a", "b", None], [1.5, 2.5, 3.5]])
        assert len(batch) == 3
        assert batch.width == 3
        assert list(batch) == [(1, "a", 1.5), (None, "b", 2.5), (3, None, 3.5)]

    def test_take_composes_selections_lazily(self):
        batch = ColumnBatch([[0, 1, 2, 3, 4], ["a", "b", "c", "d", "e"]])
        narrowed = batch.take([1, 3, 4]).take([0, 2])
        assert narrowed.col(1) == ["b", "e"]
        assert narrowed.rows() == [(1, "b"), (4, "e")]

    def test_empty_batch(self):
        batch = ColumnBatch([[], []])
        assert len(batch) == 0
        assert not batch
        assert batch.rows() == []


class TestHeapParityProperty:
    """The same operation sequence applied to a ColumnStore and a
    HeapFile must be observationally identical: rows, row_count, page
    placement, and free-space accounting."""

    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "update", "delete"]),
                st.integers(min_value=0, max_value=30),
                st.one_of(st.none(), st.integers(), st.text(max_size=8)),
            ),
            max_size=40,
        )
    )
    def test_operation_sequences_match(self, ops):
        store, heap = make_pair(ncols=2)
        rids_s: list = []
        rids_h: list = []
        for kind, pick, value in ops:
            if kind == "insert" or not rids_s:
                row = (value, pick)
                width = 8 + len(str(value))
                rids_s.append(store.insert(row, width))
                rids_h.append(heap.insert(row, width))
            elif kind == "update":
                i = pick % len(rids_s)
                row = (value, pick * 2)
                width = 8 + len(str(value))
                rids_s[i] = store.update(rids_s[i], row, width)
                rids_h[i] = heap.update(rids_h[i], row, width)
            else:
                i = pick % len(rids_s)
                store.delete(rids_s.pop(i))
                heap.delete(rids_h.pop(i))
        assert rids_s == rids_h  # identical placement decisions
        assert store.row_count == heap.row_count
        assert [r for _rid, r in store.scan()] == [
            r for _rid, r in heap.scan()
        ]
        assert store.free_map() == heap.free_map()
        assert store.page_ids() == heap.page_ids()


class TestHeapScanBatchesNoCopy:
    """Micro-assertions for the heap's copy-free batch scan: yielded
    lists are fresh objects the generator never touches again."""

    def _heap_with(self, n):
        pool = BufferPool(capacity_pages=64)
        heap = HeapFile(pool, segment_id=1, strategy=InsertStrategy.FIRST_FIT)
        for i in range(n):
            heap.insert((i,), width=10)
        return heap

    def test_yielded_batches_are_independent_objects(self):
        heap = self._heap_with(64)
        batches = list(heap.scan_batches(8))
        assert len({id(b) for b in batches}) == len(batches)

    def test_consumer_may_mutate_yielded_batches(self):
        heap = self._heap_with(40)
        gen = heap.scan_batches(16)
        first = next(gen)
        first.clear()  # a consumer-side mutation...
        rest = [v for batch in gen for (v,) in batch]
        # ...must not disturb what the generator yields next.
        assert rest == list(range(16, 40))
        assert [v for _rid, (v,) in heap.scan()] == list(range(40))

    def test_batch_carving_unchanged(self):
        heap = self._heap_with(37)
        for batch_rows in (1, 5, 16, 64):
            batches = list(heap.scan_batches(batch_rows))
            assert [v for b in batches for (v,) in b] == list(range(37))
            assert all(len(b) == batch_rows for b in batches[:-1])


class TestUsingColumnarDDL:
    def test_parse_and_sql_round_trip(self):
        stmt = parse_statement("CREATE TABLE t (id INTEGER, v VARCHAR(10)) USING columnar")
        assert stmt.storage == "columnar"
        assert stmt.sql().endswith("USING columnar")
        assert parse_statement(stmt.sql()) == stmt

    def test_default_storage_is_heap(self):
        stmt = parse_statement("CREATE TABLE t (id INTEGER)")
        assert stmt.storage is None
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER)")
        assert db.catalog.table("t").storage == "heap"

    def test_create_columnar_table_and_query(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER, v VARCHAR(20)) USING columnar")
        table = db.catalog.table("t")
        assert table.storage == "columnar"
        assert isinstance(table.heap, ColumnStore)
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?, ?)", [i, f"v{i}"])
        db.execute("UPDATE t SET v = 'changed' WHERE id = 3")
        db.execute("DELETE FROM t WHERE id = 7")
        rows = db.execute("SELECT id, v FROM t ORDER BY id").rows
        assert len(rows) == 9
        assert rows[3] == (3, "changed")
        assert all(row[0] != 7 for row in rows)

    def test_unknown_storage_rejected(self):
        db = Database()
        with pytest.raises(UnknownObjectError):
            db.execute("CREATE TABLE t (id INTEGER) USING parquet")

    def test_both_engines_agree_on_columnar_tables(self):
        results = []
        for execution in ("tuple", "vectorized"):
            db = Database(execution=execution)
            db.execute(
                "CREATE TABLE t (g INTEGER, v INTEGER) USING columnar"
            )
            for i in range(100):
                db.execute(
                    "INSERT INTO t VALUES (?, ?)",
                    [i % 7, None if i % 11 == 0 else i],
                )
            results.append(
                db.execute(
                    "SELECT g, COUNT(*), COUNT(v), AVG(v), MAX(v) "
                    "FROM t GROUP BY g ORDER BY g"
                ).rows
            )
        assert results[0] == results[1]


class TestColumnarRecovery:
    def test_columnar_table_survives_crash(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path=path)
        db.execute("CREATE TABLE t (id INTEGER, v VARCHAR(10)) USING columnar")
        for i in range(20):
            db.execute("INSERT INTO t VALUES (?, ?)", [i, f"v{i}"])
        del db  # crash: no close(), recovery replays the WAL
        recovered = Database(path=path)
        table = recovered.catalog.table("t")
        assert table.storage == "columnar"
        assert isinstance(table.heap, ColumnStore)
        rows = recovered.execute("SELECT id, v FROM t ORDER BY id").rows
        assert rows == [(i, f"v{i}") for i in range(20)]

    def test_checkpoint_snapshot_restores_columnar_store(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path=path)
        db.execute("CREATE TABLE t (id INTEGER, v INTEGER) USING columnar")
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?, ?)", [i, None if i % 2 else i])
        db.checkpoint()
        for i in range(10, 15):
            db.execute("INSERT INTO t VALUES (?, ?)", [i, i])
        del db  # crash after the checkpoint: snapshot restore + tail replay
        recovered = Database(path=path)
        table = recovered.catalog.table("t")
        assert isinstance(table.heap, ColumnStore)
        rows = recovered.execute("SELECT id, v FROM t ORDER BY id").rows
        assert rows == [
            (i, None if i % 2 else i) for i in range(10)
        ] + [(i, i) for i in range(10, 15)]


class TestOptimizerColumnarCosting:
    def test_columnar_scan_is_discounted(self):
        from repro.engine.optimizer import _seq_scan_cost

        db = Database()
        db.execute("CREATE TABLE h (id INTEGER)")
        db.execute("CREATE TABLE c (id INTEGER) USING columnar")
        for i in range(50):
            db.execute("INSERT INTO h VALUES (?)", [i])
            db.execute("INSERT INTO c VALUES (?)", [i])
        heap_cost = _seq_scan_cost(db.catalog.table("h"))
        col_cost = _seq_scan_cost(db.catalog.table("c"))
        assert col_cost < heap_cost
        # Heap costing itself is pinned by the optimizer-quality gate:
        # one work unit per row.
        assert heap_cost == 50.0
