"""The placement catalog: which shard owns which tenant.

Placement is decided by a consistent-hash ring (CRC32 of
``"{shard}#{replica}"`` virtual points, :mod:`bisect` lookup) so adding
or removing a shard only moves the tenants that land on the affected
arc.  Individual tenants can be *pinned* to a shard, which is how a
finished rebalance records its cut-over: the ring answer stays stable
while the pin overrides it.

Every mutation bumps ``version``.  Shards remember the version under
which they were told they own a tenant; a router seeing
``WrongShardError`` refreshes its placement view and retries, so a
stale map is a performance problem, never a correctness one.

The catalog also persists the *rebalance journal* — at most one tenant
move may be in flight, and its current phase is recorded in the same
atomically-replaced JSON file as the placement itself.  That makes the
cut-over (flip pin + advance phase) a single ``os.replace``, which is
the atomicity anchor for crash recovery in
:mod:`repro.cluster.rebalance`.
"""

from __future__ import annotations

import bisect
import json
import os
import zlib
from pathlib import Path
from typing import Any

from .errors import ClusterError, RebalanceInProgressError

FORMAT = "repro-placement-v1"


def _hash(key: str) -> int:
    return zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF


class PlacementCatalog:
    """Maps ``tenant_id`` to a shard name; optionally file-backed."""

    def __init__(
        self,
        shards: list[str] | tuple[str, ...] = (),
        *,
        replicas: int = 64,
        path: str | Path | None = None,
    ) -> None:
        if replicas < 1:
            raise ClusterError("replicas must be positive")
        self.replicas = replicas
        self.path = Path(path) if path is not None else None
        self.version = 0
        self.pins: dict[int, str] = {}
        self.rebalance: dict[str, Any] | None = None
        self._shards: list[str] = []
        self._points: list[int] = []
        self._owners: list[str] = []
        for shard in shards:
            self.add_shard(shard)

    # -- ring maintenance ----------------------------------------------------

    @property
    def shards(self) -> list[str]:
        return list(self._shards)

    def _rebuild_ring(self) -> None:
        ring = []
        for shard in self._shards:
            for replica in range(self.replicas):
                ring.append((_hash(f"{shard}#{replica}"), shard))
        ring.sort()
        self._points = [point for point, _ in ring]
        self._owners = [owner for _, owner in ring]

    def add_shard(self, name: str) -> None:
        if name in self._shards:
            raise ClusterError(f"shard {name!r} already registered")
        self._shards.append(name)
        self._rebuild_ring()
        self.version += 1

    def remove_shard(self, name: str) -> None:
        if name not in self._shards:
            raise ClusterError(f"unknown shard {name!r}")
        pinned_here = [t for t, s in self.pins.items() if s == name]
        if pinned_here:
            raise ClusterError(
                f"shard {name!r} still has pinned tenants {sorted(pinned_here)}"
            )
        self._shards.remove(name)
        self._rebuild_ring()
        self.version += 1

    # -- lookup --------------------------------------------------------------

    def shard_for(self, tenant_id: int) -> str:
        pin = self.pins.get(tenant_id)
        if pin is not None:
            return pin
        if not self._points:
            raise ClusterError("placement catalog has no shards")
        index = bisect.bisect_right(self._points, _hash(f"tenant:{tenant_id}"))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    # -- pins ----------------------------------------------------------------

    def pin(self, tenant_id: int, shard: str) -> None:
        if shard not in self._shards:
            raise ClusterError(f"unknown shard {shard!r}")
        self.pins[tenant_id] = shard
        self.version += 1

    def unpin(self, tenant_id: int) -> None:
        if self.pins.pop(tenant_id, None) is not None:
            self.version += 1

    # -- rebalance journal ---------------------------------------------------

    def begin_rebalance(self, tenant_id: int, source: str, dest: str) -> None:
        if self.rebalance is not None:
            raise RebalanceInProgressError(
                f"rebalance of tenant {self.rebalance['tenant_id']} "
                f"already in flight"
            )
        for shard in (source, dest):
            if shard not in self._shards:
                raise ClusterError(f"unknown shard {shard!r}")
        self.rebalance = {
            "tenant_id": tenant_id,
            "source": source,
            "dest": dest,
            "phase": "copy",
        }
        self.version += 1
        self.save()

    def update_phase(self, phase: str, *, pin_dest: bool = False) -> None:
        if self.rebalance is None:
            raise ClusterError("no rebalance in flight")
        self.rebalance["phase"] = phase
        if pin_dest:
            # The cut-over: the pin flip and the phase advance land in
            # the same atomic file replace.
            self.pins[self.rebalance["tenant_id"]] = self.rebalance["dest"]
        self.version += 1
        self.save()

    def clear_rebalance(self) -> None:
        if self.rebalance is not None:
            self.rebalance = None
            self.version += 1
            self.save()

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": FORMAT,
            "version": self.version,
            "replicas": self.replicas,
            "shards": list(self._shards),
            "pins": {str(t): s for t, s in self.pins.items()},
            "rebalance": self.rebalance,
        }

    def save(self) -> None:
        if self.path is None:
            return
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    @classmethod
    def load(cls, path: str | Path) -> PlacementCatalog:
        path = Path(path)
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("format") != FORMAT:
            raise ClusterError(f"not a placement catalog: {path}")
        catalog = cls(replicas=data["replicas"], path=path)
        catalog._shards = list(data["shards"])
        catalog._rebuild_ring()
        catalog.pins = {int(t): s for t, s in data["pins"].items()}
        catalog.rebalance = data["rebalance"]
        catalog.version = data["version"]
        return catalog

    # -- in-memory snapshots (for tests and crash simulation) ----------------

    def snapshot(self) -> dict[str, Any]:
        return json.loads(json.dumps(self.to_dict()))

    def restore(self, snapshot: dict[str, Any]) -> None:
        self._shards = list(snapshot["shards"])
        self.replicas = snapshot["replicas"]
        self._rebuild_ring()
        self.pins = {int(t): s for t, s in snapshot["pins"].items()}
        self.rebalance = snapshot["rebalance"]
        self.version = snapshot["version"]
