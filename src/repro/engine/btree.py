"""B+-tree indexes over the buffer pool.

Every descent reads one index page per level through the buffer pool, so
index hit ratios and logical index reads fall out of the structure, as in
the paper's Table 2 and Figure 10.

Fan-out is driven by key *byte widths*: each entry charges the byte size
of its key plus a fixed pointer.  With ``prefix_compression`` enabled
(the default, after Graefe's partitioned B-trees which Section 6.1 cites)
leading key columns that repeat the in-order predecessor's values are
charged one marker byte instead of their full width.  Meta-data indexes
such as ``(Tenant, Table, Chunk, Row)`` are highly redundant in their
leading columns, so compression keeps them small — exactly the paper's
argument for why these indexes stay cheap.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .errors import UniqueViolation
from .heap import RowId
from .pager import BufferPool, PageKind
from .values import sort_key

#: Bytes per child/RID pointer in a node entry.
POINTER_WIDTH = 8
#: Per-entry slot overhead.
ENTRY_OVERHEAD = 4
#: Bytes charged for a prefix-compressed (repeated) key column.
COMPRESSED_COLUMN_WIDTH = 1


def _key_order(key: tuple) -> tuple:
    return tuple(sort_key(v) for v in key)


def _head_matches(key: tuple, prefix: tuple) -> bool:
    """Whether ``key``'s leading columns equal ``prefix`` under
    ``sort_key`` semantics, without building decorated tuples: raw
    equality plus a bool/number guard (``sort_key`` segregates bools
    from numbers; raw ``==`` treats ``False == 0``)."""
    for a, b in zip(key, prefix):
        if a != b or (isinstance(a, bool) != isinstance(b, bool)):
            return False
    return True


def _value_width(value: object) -> int:
    """Byte width of a key column value (schema widths are unknown here,
    so we charge the value's natural storage width)."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 4 if -(2**31) <= value < 2**31 else 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value) + 2
    return 4  # dates and anything else fixed-width


@dataclass
class _Leaf:
    keys: list[tuple] = field(default_factory=list)
    rid_lists: list[list[RowId]] = field(default_factory=list)
    next_page: int | None = None


@dataclass
class _Internal:
    # children[i] holds keys < separators[i] <= children[i+1] ...
    separators: list[tuple] = field(default_factory=list)
    children: list[int] = field(default_factory=list)


class BTreeIndex:
    """A B+-tree mapping key tuples to one or more heap RIDs."""

    def __init__(
        self,
        pool: BufferPool,
        segment_id: int,
        *,
        unique: bool = False,
        prefix_compression: bool = True,
        metrics=None,
    ) -> None:
        self._pool = pool
        self.segment_id = segment_id
        self.unique = unique
        self.prefix_compression = prefix_compression
        self.entry_count = 0
        self.distinct_keys = 0
        # Per-structure access counters; engine-wide totals additionally
        # land in the shared registry under btree.*.
        self.descents = 0
        self.searches = 0
        self.prefix_scans = 0
        self.range_scans = 0
        self.inserts = 0
        self.deletes = 0
        self._metrics = metrics
        # Distinct-count per key prefix length, maintained incrementally
        # (approximate at leaf boundaries).  Drives the optimizer's
        # rows-per-prefix selectivity estimates.
        self._prefix_distinct: list[int] = []
        # key tuple -> decorated sort order.  ``_key_order`` is a pure
        # function of the key, so the memo never goes stale; it is the
        # in-memory stand-in for storing normalized keys on the page.
        self._order_cache: dict[tuple, tuple] = {}
        # page_id -> decorated key list for that node (separators of an
        # internal node, keys of a leaf).  Spares every descent the
        # per-comparison ``_order`` memo hits; each mutation pops only
        # the nodes whose key lists it changes, so bulk loads keep the
        # hot upper levels decorated.  Runtime-only, never pickled with
        # the page payloads (re-reading an evicted page reproduces the
        # same keys, so entries survive eviction).
        self._node_dec: dict[int, list[tuple]] = {}
        # search()/_descend() run per index probe; resolve their
        # registry counters once instead of by name per call.
        self._c_searches = (
            metrics.counter("btree.searches") if metrics is not None else None
        )
        self._c_descents = (
            metrics.counter("btree.descents") if metrics is not None else None
        )
        root = pool.allocate(segment_id, PageKind.INDEX)
        root.payload = _Leaf()
        self._root_id = root.page_id
        self.height = 1

    @classmethod
    def attach(
        cls,
        pool: BufferPool,
        segment_id: int,
        *,
        unique: bool,
        prefix_compression: bool,
        metrics=None,
        root_id: int,
        height: int,
        entry_count: int,
        distinct_keys: int,
        prefix_distinct: list[int],
    ) -> "BTreeIndex":
        """Re-attach to an existing tree whose pages are already in the
        page store (recovery) — bypasses the constructor so no fresh
        root page is allocated."""
        index = cls.__new__(cls)
        index._pool = pool
        index.segment_id = segment_id
        index.unique = unique
        index.prefix_compression = prefix_compression
        index.entry_count = entry_count
        index.distinct_keys = distinct_keys
        index.descents = 0
        index.searches = 0
        index.prefix_scans = 0
        index.range_scans = 0
        index.inserts = 0
        index.deletes = 0
        index._metrics = metrics
        index._prefix_distinct = list(prefix_distinct)
        index._order_cache = {}
        index._node_dec = {}
        index._c_searches = (
            metrics.counter("btree.searches") if metrics is not None else None
        )
        index._c_descents = (
            metrics.counter("btree.descents") if metrics is not None else None
        )
        index._root_id = root_id
        index.height = height
        return index

    @property
    def root_id(self) -> int:
        return self._root_id

    def prefix_distinct_counts(self) -> list[int]:
        """Copy of the per-prefix-length distinct counts (snapshots)."""
        return list(self._prefix_distinct)

    def _count(self, attribute: str, metric: str) -> None:
        setattr(self, attribute, getattr(self, attribute) + 1)
        if self._metrics is not None:
            self._metrics.counter(metric).inc()

    def _order(self, key: tuple) -> tuple:
        """Memoized ``_key_order``.  Binary searches probe O(log n) keys
        per lookup and every probe used to decorate the key from
        scratch; hashing the tuple is far cheaper than re-running
        ``sort_key`` per column.  Bounded by the distinct keys touched
        (with a clear-out safety valve against probe-key churn)."""
        cache = self._order_cache
        order = cache.get(key)
        if order is None:
            if len(cache) > 4 * self.entry_count + 1024:
                cache.clear()
            order = cache[key] = _key_order(key)
        return order

    # -- sizing ---------------------------------------------------------

    def _entry_width(self, key: tuple, predecessor: tuple | None) -> int:
        width = ENTRY_OVERHEAD + POINTER_WIDTH
        for i, value in enumerate(key):
            repeated = (
                self.prefix_compression
                and predecessor is not None
                and i < len(predecessor)
                and all(predecessor[j] == key[j] for j in range(i + 1))
            )
            width += COMPRESSED_COLUMN_WIDTH if repeated else _value_width(value)
        return width

    def _leaf_used(self, leaf: _Leaf) -> int:
        used, prev = 0, None
        for key, rids in zip(leaf.keys, leaf.rid_lists):
            used += self._entry_width(key, prev)
            used += POINTER_WIDTH * (len(rids) - 1)
            prev = key
        return used

    def _internal_used(self, node: _Internal) -> int:
        used, prev = POINTER_WIDTH, None
        for key in node.separators:
            used += self._entry_width(key, prev)
            prev = key
        return used

    # -- search -----------------------------------------------------------

    def _descend(
        self, key: tuple, order: tuple | None = None
    ) -> tuple[list[int], _Leaf]:
        """Page ids root→leaf for ``key``, plus the leaf payload (each
        level costs exactly one logical index-page read).  ``order``
        lets callers that already decorated the key skip the memo hit."""
        self.descents += 1
        if self._c_descents is not None:
            self._c_descents.inc()
        path = [self._root_id]
        node = self._pool.read(self._root_id).payload
        if order is None:
            order = self._order(key)
        node_dec = self._node_dec
        while isinstance(node, _Internal):
            # First child whose separator exceeds the key (bisect over
            # the node's cached decorated separators — internal nodes
            # hold hundreds of them).
            dec = node_dec.get(path[-1])
            if dec is None:
                dec = node_dec[path[-1]] = [
                    self._order(k) for k in node.separators
                ]
            child = node.children[bisect_right(dec, order)]
            path.append(child)
            node = self._pool.read(child).payload
        return path, node

    def search(self, key: tuple) -> list[RowId]:
        """Exact-match lookup; [] when absent."""
        self.searches += 1
        if self._c_searches is not None:
            self._c_searches.inc()
        order = self._order(key)
        path, leaf = self._descend(key, order)
        keys = leaf.keys
        dec = self._node_dec.get(path[-1])
        if dec is None:
            dec = self._node_dec[path[-1]] = [self._order(k) for k in keys]
        lo = bisect_left(dec, order)
        if lo < len(keys) and dec[lo] == order:
            return list(leaf.rid_lists[lo])
        return []

    def search_one(self, key: tuple) -> RowId | None:
        """Exact-match lookup on a *unique* index; the RID or ``None``.

        Counter- and page-read-identical to :meth:`search` (one search,
        one descent, one logical read per level) but allocation-free on
        the hot path: no root→leaf path list, no RID-list copy.  The
        vectorized executor's fused probe closures call this once per
        outer row in reconstruction joins.
        """
        self.searches += 1
        if self._c_searches is not None:
            self._c_searches.inc()
        self.descents += 1
        if self._c_descents is not None:
            self._c_descents.inc()
        order = self._order(key)
        node_dec = self._node_dec
        read = self._pool.read
        pid = self._root_id
        node = read(pid).payload
        while isinstance(node, _Internal):
            dec = node_dec.get(pid)
            if dec is None:
                dec = node_dec[pid] = [
                    self._order(k) for k in node.separators
                ]
            pid = node.children[bisect_right(dec, order)]
            node = read(pid).payload
        keys = node.keys
        dec = node_dec.get(pid)
        if dec is None:
            dec = node_dec[pid] = [self._order(k) for k in keys]
        lo = bisect_left(dec, order)
        if lo < len(keys) and dec[lo] == order:
            return node.rid_lists[lo][0]
        return None

    def scan_prefix(self, prefix: tuple) -> Iterator[tuple[tuple, RowId]]:
        """Yield (key, rid) for every key whose leading columns equal
        ``prefix``, in key order.  An empty prefix scans everything."""
        self._count("prefix_scans", "btree.prefix_scans")
        n = len(prefix)
        if not n:
            page_id: int | None = self._leftmost_leaf()
            leaf = self._pool.read(page_id).payload
            while page_id is not None:
                for key, rids in zip(list(leaf.keys), list(leaf.rid_lists)):
                    for rid in rids:
                        yield key, rid
                page_id = leaf.next_page
                if page_id is not None:
                    leaf = self._pool.read(page_id).payload
            return
        prefix_order = self._order(prefix)
        path, leaf = self._descend(prefix)
        page_id = path[-1]
        while page_id is not None:
            keys = list(leaf.keys)
            rid_lists = list(leaf.rid_lists)
            # Matching entries are contiguous: binary-search the start,
            # then a cheap per-entry head check — no decorated tuples
            # per entry (the historical hot spot of every index lookup).
            for i in range(self._position(keys, prefix_order), len(keys)):
                key = keys[i]
                if not _head_matches(key, prefix):
                    return
                for rid in rid_lists[i]:
                    yield key, rid
            page_id = leaf.next_page
            if page_id is not None:
                leaf = self._pool.read(page_id).payload

    def scan_range(
        self, low: tuple | None, high: tuple | None
    ) -> Iterator[tuple[tuple, RowId]]:
        """Yield entries with low <= key-prefix <= high (inclusive)."""
        self._count("range_scans", "btree.range_scans")
        if low:
            path, leaf = self._descend(low)
            page_id: int | None = path[-1]
        else:
            page_id = self._leftmost_leaf()
            leaf = self._pool.read(page_id).payload
        low_order = self._order(low) if low else None
        high_order = self._order(high) if high else None
        hn = len(high_order) if high_order is not None else 0
        while page_id is not None:
            keys = list(leaf.keys)
            rid_lists = list(leaf.rid_lists)
            # The in-range entries are one contiguous run per leaf
            # (key-prefix comparisons are monotone in key order), so
            # binary-search both boundaries instead of decorating every
            # entry.
            start = (
                self._position(keys, low_order)
                if low_order is not None
                else 0
            )
            end = len(keys)
            if high_order is not None:
                lo, hi = start, len(keys)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if self._order(keys[mid])[:hn] > high_order:
                        hi = mid
                    else:
                        lo = mid + 1
                end = lo
            for i in range(start, end):
                key = keys[i]
                for rid in rid_lists[i]:
                    yield key, rid
            if end < len(keys):
                return
            page_id = leaf.next_page
            if page_id is not None:
                leaf = self._pool.read(page_id).payload

    def _leftmost_leaf(self) -> int:
        page_id = self._root_id
        node = self._pool.read(page_id).payload
        while isinstance(node, _Internal):
            page_id = node.children[0]
            node = self._pool.read(page_id).payload
        return page_id

    # -- mutation ------------------------------------------------------------

    def insert(self, key: tuple, rid: RowId) -> None:
        self._count("inserts", "btree.inserts")
        path, leaf = self._descend(key)
        leaf_id = path[-1]
        order = self._order(key)
        idx = self._position(leaf.keys, order)
        if idx < len(leaf.keys) and self._order(leaf.keys[idx]) == order:
            if self.unique:
                raise UniqueViolation(f"duplicate key {key!r}")
            leaf.rid_lists[idx].append(rid)
        else:
            predecessor = leaf.keys[idx - 1] if idx > 0 else None
            successor = leaf.keys[idx] if idx < len(leaf.keys) else None
            leaf.keys.insert(idx, key)
            leaf.rid_lists.insert(idx, [rid])
            self._node_dec.pop(leaf_id, None)
            self.distinct_keys += 1
            self._count_prefixes(key, predecessor, successor, +1)
        self.entry_count += 1
        self._pool.mark_dirty(leaf_id)
        self._maybe_split(path)

    def delete(self, key: tuple, rid: RowId) -> bool:
        """Remove one (key, rid) pairing; True if something was removed."""
        self._count("deletes", "btree.deletes")
        path, leaf = self._descend(key)
        leaf_id = path[-1]
        order = self._order(key)
        idx = self._position(leaf.keys, order)
        if idx >= len(leaf.keys) or self._order(leaf.keys[idx]) != order:
            return False
        rids = leaf.rid_lists[idx]
        if rid not in rids:
            return False
        rids.remove(rid)
        if not rids:
            del leaf.keys[idx]
            del leaf.rid_lists[idx]
            self._node_dec.pop(leaf_id, None)
            self.distinct_keys -= 1
            predecessor = leaf.keys[idx - 1] if idx > 0 else None
            successor = leaf.keys[idx] if idx < len(leaf.keys) else None
            self._count_prefixes(key, predecessor, successor, -1)
        self.entry_count -= 1
        self._pool.mark_dirty(leaf_id)
        return True

    def _count_prefixes(
        self,
        key: tuple,
        predecessor: tuple | None,
        successor: tuple | None,
        delta: int,
    ) -> None:
        """Adjust per-prefix distinct counts around an insert/remove.

        A prefix of length L is new (or dying) when neither in-leaf
        neighbour shares it.  Neighbours in adjacent leaves are not
        consulted, so counts drift slightly high at leaf boundaries —
        good enough for selectivity estimation.
        """
        if len(self._prefix_distinct) < len(key):
            self._prefix_distinct.extend(
                [0] * (len(key) - len(self._prefix_distinct))
            )
        for length in range(1, len(key) + 1):
            prefix = key[:length]
            if predecessor is not None and predecessor[:length] == prefix:
                continue
            if successor is not None and successor[:length] == prefix:
                continue
            self._prefix_distinct[length - 1] = max(
                0, self._prefix_distinct[length - 1] + delta
            )

    def prefix_distinct(self, length: int) -> int:
        """Approximate number of distinct key prefixes of this length."""
        if length <= 0:
            return 1
        if length > len(self._prefix_distinct):
            return max(1, self.distinct_keys)
        return max(1, self._prefix_distinct[length - 1])

    def _position(self, keys: list[tuple], order: tuple) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._order(keys[mid]) < order:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # -- splits ------------------------------------------------------------------

    def _maybe_split(self, path: list[int]) -> None:
        # The leaf is pinned across the sibling allocation: allocating
        # may evict, and evicting a page we are still mutating would
        # write back (and later re-read) a half-split node.
        page = self._pool.read(path[-1], pin=True)
        leaf: _Leaf = page.payload
        page.used = self._leaf_used(leaf)
        if page.used <= page.capacity or len(leaf.keys) < 2:
            self._pool.unpin(path[-1])
            return
        mid = len(leaf.keys) // 2
        self._node_dec.pop(path[-1], None)
        right = _Leaf(leaf.keys[mid:], leaf.rid_lists[mid:], leaf.next_page)
        right_page = self._pool.allocate(self.segment_id, PageKind.INDEX)
        right_page.payload = right
        right_page.used = self._leaf_used(right)
        del leaf.keys[mid:]
        del leaf.rid_lists[mid:]
        leaf.next_page = right_page.page_id
        page.used = self._leaf_used(leaf)
        self._pool.unpin(path[-1])
        separator = right.keys[0]
        self._insert_separator(path[:-1], separator, page.page_id, right_page.page_id)

    def _insert_separator(
        self, path: list[int], separator: tuple, left_id: int, right_id: int
    ) -> None:
        if not path:
            new_root = self._pool.allocate(self.segment_id, PageKind.INDEX)
            new_root.payload = _Internal([separator], [left_id, right_id])
            new_root.used = self._internal_used(new_root.payload)
            self._root_id = new_root.page_id
            self.height += 1
            return
        parent_id = path[-1]
        # Same pin discipline as the leaf split: the parent stays pinned
        # while its new sibling is allocated.
        page = self._pool.read(parent_id, pin=True)
        node: _Internal = page.payload
        idx = node.children.index(left_id)
        node.separators.insert(idx, separator)
        node.children.insert(idx + 1, right_id)
        self._node_dec.pop(parent_id, None)
        page.used = self._internal_used(node)
        self._pool.mark_dirty(parent_id)
        if page.used <= page.capacity or len(node.separators) < 3:
            self._pool.unpin(parent_id)
            return
        mid = len(node.separators) // 2
        up_key = node.separators[mid]
        right = _Internal(node.separators[mid + 1 :], node.children[mid + 1 :])
        right_page = self._pool.allocate(self.segment_id, PageKind.INDEX)
        right_page.payload = right
        right_page.used = self._internal_used(right)
        del node.separators[mid:]
        del node.children[mid + 1 :]
        page.used = self._internal_used(node)
        self._pool.unpin(parent_id)
        self._insert_separator(path[:-1], up_key, parent_id, right_page.page_id)

    # -- bulk / admin ----------------------------------------------------------------

    def bulk_load(self, entries: Sequence[tuple[tuple, RowId]]) -> None:
        """Insert many entries (sorted input is fastest but not required)."""
        for key, rid in sorted(entries, key=lambda e: _key_order(e[0])):
            self.insert(key, rid)

    @property
    def page_count(self) -> int:
        return len(self._pool.pages_in_segment(self.segment_id))

    def drop(self) -> None:
        self._pool.free_segment(self.segment_id)
