"""Fault injection for crash-recovery testing.

A :class:`FaultInjector` is threaded through the WAL, the page store,
and the engine's admin operations.  Durability-relevant code paths call
``crashpoint(name)`` at the instants where dying would be most
interesting (mid-writeback, between an admin operation's begin and end
markers, after a checkpoint flushed pages but before it installed the
new log, ...).  Tests arm the injector to die at the *k*-th crashpoint
hit, at the *n*-th occurrence of one named point, or with physically
corrupted I/O (a torn page write, a short WAL fsync).

``SimulatedCrash`` deliberately subclasses :class:`BaseException`, not
``Exception``: the engine and the analysis harness suppress ordinary
exceptions in several places (a statement failing must not kill a
testbed run), but a simulated power cut must never be swallowed by an
``except Exception`` — nothing after it may run, exactly like a real
crash.
"""

from __future__ import annotations


class SimulatedCrash(BaseException):
    """The process "died" here.  Only the test harness catches this."""


class FaultInjector:
    """Deterministic crash scheduling for one engine instance.

    An unarmed injector (the default) only counts crashpoint hits —
    running a workload once with it yields the crashpoint space a
    property test can then sample with ``crash_after``.
    """

    def __init__(
        self,
        *,
        crash_after: int | None = None,
        crash_at: tuple[str, int] | None = None,
        torn_page_write: int | None = None,
        short_fsync: int | None = None,
    ) -> None:
        #: Die on the k-th crashpoint hit (1-based), whatever its name.
        self.crash_after = crash_after
        #: Die on the n-th hit (1-based) of one named crashpoint.
        self.crash_at = crash_at
        #: Tear the k-th page-store write: only a prefix of the frame
        #: reaches the file, then the process dies.
        self.torn_page_write = torn_page_write
        #: Cut the k-th WAL flush short: only a prefix of the buffered
        #: log reaches the file, then the process dies.
        self.short_fsync = short_fsync
        self.hits = 0
        self.counts: dict[str, int] = {}
        self._page_writes = 0
        self._wal_flushes = 0

    # -- crashpoints ------------------------------------------------------

    def crashpoint(self, name: str) -> None:
        """Count a named crashpoint; die here if armed for it."""
        self.hits += 1
        self.counts[name] = self.counts.get(name, 0) + 1
        if self.crash_after is not None and self.hits >= self.crash_after:
            raise SimulatedCrash(f"crashpoint #{self.hits}: {name}")
        if self.crash_at is not None:
            at_name, nth = self.crash_at
            if name == at_name and self.counts[name] >= nth:
                raise SimulatedCrash(f"crashpoint {name} (hit {nth})")

    # -- physical corruption ----------------------------------------------

    def torn_write_length(self, frame_length: int) -> int | None:
        """Bytes of the next page-store frame that reach disk, or
        ``None`` for a full write.  A non-None return means the caller
        must write that prefix and then raise :class:`SimulatedCrash`."""
        self._page_writes += 1
        if self.torn_page_write is not None and (
            self._page_writes >= self.torn_page_write
        ):
            return max(1, frame_length // 2)
        return None

    def short_fsync_length(self, flush_length: int) -> int | None:
        """Bytes of the next WAL flush that reach disk, or ``None``."""
        if flush_length <= 0:
            return None
        self._wal_flushes += 1
        if self.short_fsync is not None and (
            self._wal_flushes >= self.short_fsync
        ):
            return max(1, flush_length // 2)
        return None
