"""The MTD testbed: a simulated multi-tenant hosted CRM service
(Section 4 of the paper)."""

from .actions import ActionClass, ACTION_DISTRIBUTION  # noqa: F401
from .controller import Controller, TestbedConfig, Testbed  # noqa: F401
from .crm import CRM_TABLE_NAMES, crm_tables, crm_extensions  # noqa: F401
from .deck import CardDeck, Card  # noqa: F401
from .generator import DataGenerator, TenantDataProfile  # noqa: F401
from .results import ActionResult, ResultSet, RunMetrics  # noqa: F401
from .simtime import CostModel  # noqa: F401
from .variability import VariabilityConfig, distribute_tenants  # noqa: F401
