"""The shared query corpus: one schema, one dataset, one generator.

Everything that replays queries — the vs-SQLite differential suite, the
cross-engine parity suite, and the optimizer-quality harness — builds
the same two-table parent/child schema with the same deterministic data
and draws queries from the same seeded generator, so a plan regression
found by the harness reproduces directly in the differential tests.

The generator covers projections, conjunctive predicates (comparison,
``IN`` lists, ``BETWEEN``), two- and three-way joins, ``GROUP BY`` with
aggregates and ``HAVING``, and ``ORDER BY`` over columns or expressions.
Queries are literal-only (no parameters) so they can be replayed through
:meth:`MultiTenantDatabase.transform_sql
<repro.core.api.MultiTenantDatabase.transform_sql>` unchanged.
"""

from __future__ import annotations

import random

from ..engine import Database
from ..engine.values import INTEGER, varchar

#: (column, is_numeric) pools per table.
P_COLUMNS = [("id", True), ("grp", True), ("amount", True), ("name", False)]
C_COLUMNS = [("id", True), ("parent", True), ("val", True), ("tag", False)]

#: Raw-engine ("conventional" layout) DDL.
ENGINE_DDL = [
    "CREATE TABLE p (id INTEGER NOT NULL, grp INTEGER, amount INTEGER, "
    "name VARCHAR(30))",
    "CREATE TABLE c (id INTEGER NOT NULL, parent INTEGER, val INTEGER, "
    "tag VARCHAR(10))",
]
ENGINE_INDEXES = [
    "CREATE UNIQUE INDEX p_pk ON p (id)",
    "CREATE INDEX c_fk ON c (parent, id)",
]


def corpus_rows() -> tuple[list[tuple], list[tuple]]:
    """The deterministic dataset: 60 parents, 3 children each."""
    rows_p, rows_c = [], []
    for i in range(1, 61):
        rows_p.append((i, i % 7, i * 13 % 101, f"name{i % 9}"))
        for j in range(3):
            rows_c.append((i * 10 + j, i, (i * j) % 17, f"t{j}"))
    return rows_p, rows_c


def build_engine_database(db: Database | None = None) -> Database:
    """A raw engine database (no schema mapping) with the corpus data —
    the harness's "conventional" layout."""
    db = db if db is not None else Database()
    for sql in ENGINE_DDL:
        db.execute(sql)
    for sql in ENGINE_INDEXES:
        db.execute(sql)
    rows_p, rows_c = corpus_rows()
    for row in rows_p:
        db.execute("INSERT INTO p VALUES (?, ?, ?, ?)", list(row))
    for row in rows_c:
        db.execute("INSERT INTO c VALUES (?, ?, ?, ?)", list(row))
    return db


def build_multitenant(layout: str, *, primary_tenant: int = 1):
    """A :class:`MultiTenantDatabase` on ``layout`` holding the corpus.

    The primary tenant gets the full dataset; a second tenant gets a
    one-third slice so shared layouts (universal/pivot/chunk) carry
    genuinely multi-tenant physical tables — exactly the situation where
    tenant-predicate selectivity misleads a static cost model.
    """
    from ..core import LogicalColumn, LogicalTable, MultiTenantDatabase

    options = {"width": 2} if layout in ("chunk", "chunk_folding") else {}
    mtd = MultiTenantDatabase(layout=layout, **options)
    mtd.define_table(
        LogicalTable(
            "p",
            (
                LogicalColumn("id", INTEGER, indexed=True, not_null=True),
                LogicalColumn("grp", INTEGER),
                LogicalColumn("amount", INTEGER),
                LogicalColumn("name", varchar(30)),
            ),
        )
    )
    mtd.define_table(
        LogicalTable(
            "c",
            (
                LogicalColumn("id", INTEGER, indexed=True, not_null=True),
                LogicalColumn("parent", INTEGER, indexed=True),
                LogicalColumn("val", INTEGER),
                LogicalColumn("tag", varchar(10)),
            ),
        )
    )
    other = primary_tenant + 1
    mtd.create_tenant(primary_tenant)
    mtd.create_tenant(other)
    rows_p, rows_c = corpus_rows()
    for i, (pid, grp, amount, name) in enumerate(rows_p):
        mtd.insert(
            primary_tenant,
            "p",
            {"id": pid, "grp": grp, "amount": amount, "name": name},
        )
        if i % 3 == 0:
            mtd.insert(
                other,
                "p",
                {"id": pid, "grp": grp, "amount": amount, "name": name},
            )
    for i, (cid, parent, val, tag) in enumerate(rows_c):
        mtd.insert(
            primary_tenant,
            "c",
            {"id": cid, "parent": parent, "val": val, "tag": tag},
        )
        if i % 3 == 0:
            mtd.insert(
                other,
                "c",
                {"id": cid, "parent": parent, "val": val, "tag": tag},
            )
    return mtd


# -- seeded whole-query generator ---------------------------------------------

_OPS = ["=", "<", ">", "<=", ">=", "<>"]
_AGGS = ["COUNT(*)", "SUM", "MIN", "MAX"]


def _value_pool(column: str) -> list[str]:
    if column == "name":
        return [f"'name{i}'" for i in range(9)]
    return [f"'t{i}'" for i in range(3)]


def _predicate(rng: random.Random, alias: str, columns) -> str:
    """One restriction: plain comparison, IN list, or BETWEEN."""
    column, numeric = rng.choice(columns)
    kind = rng.random()
    if numeric and kind < 0.18:
        values = sorted(rng.sample(range(-5, 120), rng.randrange(2, 5)))
        items = ", ".join(str(v) for v in values)
        return f"{alias}.{column} IN ({items})"
    if not numeric and kind < 0.18:
        pool = _value_pool(column)
        picked = rng.sample(pool, min(2, len(pool)))
        return f"{alias}.{column} IN ({', '.join(picked)})"
    if numeric and kind < 0.36:
        low = rng.randrange(-5, 100)
        return f"{alias}.{column} BETWEEN {low} AND {low + rng.randrange(5, 40)}"
    op = rng.choice(_OPS)
    if numeric:
        return f"{alias}.{column} {op} {rng.randrange(-5, 120)}"
    return f"{alias}.{column} {op} {rng.choice(_value_pool(column))}"


def generate_query(seed: int) -> str:
    """One deterministic random SELECT.

    Shapes: single table, two-way join (``p, c``), or three-way join
    (``p, c, c AS d`` — two child streams under one parent); optional
    GROUP BY with aggregates and HAVING; optional ORDER BY over columns
    or an arithmetic expression; 0-2 extra conjuncts per query.
    """
    rng = random.Random(seed)
    shape = rng.random()
    grouped = rng.random() < 0.35

    if shape < 0.40:
        alias = rng.choice(["p", "c"])
        tables = alias
        conjuncts = []
        scope = [
            (alias, c, n)
            for c, n in (P_COLUMNS if alias == "p" else C_COLUMNS)
        ]
    elif shape < 0.75:
        tables = "p, c"
        conjuncts = ["p.id = c.parent"]
        scope = [("p", c, n) for c, n in P_COLUMNS] + [
            ("c", c, n) for c, n in C_COLUMNS
        ]
    else:
        tables = "p, c, c AS d"
        conjuncts = ["p.id = c.parent", "d.parent = p.id"]
        scope = (
            [("p", c, n) for c, n in P_COLUMNS]
            + [("c", c, n) for c, n in C_COLUMNS]
            + [("d", c, n) for c, n in C_COLUMNS]
        )
    for _ in range(rng.randrange(3)):
        alias = rng.choice(sorted({a for a, _, _ in scope}))
        columns = P_COLUMNS if alias == "p" else C_COLUMNS
        conjuncts.append(_predicate(rng, alias, columns))

    order_tail = ""
    if grouped:
        g_alias, g_column, _ = rng.choice(scope)
        group_expr = f"{g_alias}.{g_column}"
        numeric = [
            f"{a}.{c}" for a, c, n in scope if n and f"{a}.{c}" != group_expr
        ]
        selects = [group_expr]
        agg_exprs = []
        for _ in range(rng.randrange(1, 3)):
            agg = rng.choice(_AGGS)
            expr = (
                "COUNT(*)"
                if agg == "COUNT(*)"
                else f"{agg}({rng.choice(numeric)})"
            )
            selects.append(expr)
            agg_exprs.append(expr)
        tail = f" GROUP BY {group_expr}"
        if rng.random() < 0.45:
            if rng.random() < 0.5:
                tail += f" HAVING COUNT(*) > {rng.randrange(1, 4)}"
            else:
                having = rng.choice(agg_exprs)
                if having == "COUNT(*)":
                    tail += f" HAVING COUNT(*) >= {rng.randrange(1, 4)}"
                else:
                    tail += f" HAVING {having} >= {rng.randrange(0, 60)}"
        if rng.random() < 0.4:
            order_tail = f" ORDER BY {group_expr}"
    else:
        count = rng.randrange(1, min(4, len(scope)) + 1)
        selects = [f"{a}.{c}" for a, c, _ in rng.sample(scope, count)]
        tail = ""
        if rng.random() < 0.5:
            numeric = [f"{a}.{c}" for a, c, n in scope if n]
            if rng.random() < 0.45 and len(numeric) >= 2:
                left, right = rng.sample(numeric, 2)
                order_tail = f" ORDER BY {left} + {right}"
            else:
                order_tail = f" ORDER BY {rng.choice(numeric)}"

    where = f" WHERE {' AND '.join(conjuncts)}" if conjuncts else ""
    return f"SELECT {', '.join(selects)} FROM {tables}{where}{tail}{order_tail}"
