"""Capacity planning: how many tenants fit one database (Figure 2).

Figure 2 plots the number of tenants per database against application
complexity and host size: ~10,000 email tenants on a blade, ~100 CRM
tenants, down to ~10 for ERP — and 100x more on "big iron".  The paper
derives these from the same mechanism Experiment 1 measures: each table
costs fixed meta-data memory (4 KB in DB2 V9.1) plus buffer-pool space
for its working set, so the table count the host can afford bounds
consolidation.

:class:`CapacityModel` makes that arithmetic explicit and reusable for
provisioning decisions: given a host's memory and an application
profile (tables, indexes, and working set per tenant; how tables are
shared), estimate the supportable tenant count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.catalog import INDEX_METADATA_COST, TABLE_METADATA_COST
from ..engine.errors import PlanError
from ..engine.pager import DEFAULT_PAGE_SIZE


@dataclass(frozen=True)
class ApplicationProfile:
    """How one tenant of an application class loads the database."""

    name: str
    #: Logical tables the application schema has.
    tables: int
    #: Indexes per table (primary + compound + reporting).
    indexes_per_table: float
    #: Hot working-set bytes per tenant the buffer pool must hold for
    #: acceptable response times.
    working_set_bytes: int
    #: Fraction of tenants needing private (unshared) tables — complex
    #: applications favour extensibility/isolation (Section 1.1).
    private_fraction: float = 0.0


#: Application classes along Figure 2's complexity axis.  Working sets
#: and sharing follow the paper's narrative: simple apps share
#: everything; ERP-class apps effectively demand private schemas.
FIGURE2_PROFILES = (
    ApplicationProfile("email", tables=5, indexes_per_table=1,
                       working_set_bytes=24 * 1024, private_fraction=0.0),
    ApplicationProfile("collaboration", tables=10, indexes_per_table=2,
                       working_set_bytes=96 * 1024, private_fraction=0.0),
    ApplicationProfile("crm_srm", tables=10, indexes_per_table=3,
                       working_set_bytes=1_400 * 1024, private_fraction=0.1),
    ApplicationProfile("hcm", tables=25, indexes_per_table=3,
                       working_set_bytes=4_000 * 1024, private_fraction=0.4),
    ApplicationProfile("erp", tables=60, indexes_per_table=4,
                       working_set_bytes=16_000 * 1024, private_fraction=1.0),
)

#: Host classes (memory) along Figure 2's other axis.
BLADE_MEMORY = 1 * 1024 * 1024 * 1024
BIG_IRON_MEMORY = 100 * 1024 * 1024 * 1024


@dataclass(frozen=True)
class CapacityModel:
    """Meta-data-budget capacity arithmetic."""

    memory_bytes: int
    page_size: int = DEFAULT_PAGE_SIZE
    table_metadata_cost: int = TABLE_METADATA_COST
    index_metadata_cost: int = INDEX_METADATA_COST
    #: Fraction of memory that must remain for the buffer pool after
    #: meta-data; beyond this the Experiment 1 collapse begins.
    min_buffer_fraction: float = 0.5

    def table_cost(self, profile: ApplicationProfile) -> float:
        """Meta-data bytes one table (plus its indexes) consumes."""
        return (
            self.table_metadata_cost
            + profile.indexes_per_table * self.index_metadata_cost
        )

    def max_tables(self) -> int:
        """Tables affordable before meta-data eats into the reserved
        buffer fraction (the ~50,000-table knee on a 1 GB blade)."""
        budget = self.memory_bytes * (1.0 - self.min_buffer_fraction)
        return int(budget // self.table_metadata_cost)

    def max_tenants(self, profile: ApplicationProfile) -> int:
        """Supportable tenants for an application profile.

        Two resources bound the count:

        * meta-data — private tenants add ``tables`` tables each, shared
          tenants amortize one schema instance across everyone;
        * buffer pool — every tenant's working set must fit in what the
          meta-data leaves over.
        """
        if not 0.0 <= profile.private_fraction <= 1.0:
            raise PlanError("private_fraction must be in [0, 1]")
        budget = self.memory_bytes * (1.0 - self.min_buffer_fraction)
        shared_schema_cost = profile.tables * self.table_cost(profile)
        per_private_tenant = profile.private_fraction * shared_schema_cost
        metadata_budget = budget - shared_schema_cost
        if metadata_budget <= 0:
            return 0
        if per_private_tenant > 0:
            metadata_bound = metadata_budget / per_private_tenant
        else:
            metadata_bound = float("inf")
        pool_bytes = self.memory_bytes * self.min_buffer_fraction
        buffer_bound = pool_bytes / max(1, profile.working_set_bytes)
        return max(0, int(min(metadata_bound, buffer_bound)))


def figure2_estimates(
    profiles=FIGURE2_PROFILES,
    hosts=(("blade", BLADE_MEMORY), ("big_iron", BIG_IRON_MEMORY)),
) -> list[tuple[str, str, int]]:
    """(application, host, max tenants) rows — Figure 2's grid."""
    rows = []
    for host_name, memory in hosts:
        model = CapacityModel(memory_bytes=memory)
        for profile in profiles:
            rows.append((profile.name, host_name, model.max_tenants(profile)))
    return rows
