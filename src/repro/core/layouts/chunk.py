"""Chunk Table Layout — Figure 4(e).

A Chunk Table is a Pivot Table generalized to a set of typed data
columns: logical tables are partitioned into chunks of at most
``width`` columns, each chunk identified by (Tenant, Table, Chunk) and
re-aligned on Row.  Varying ``width`` spans the spectrum from Pivot
Tables (width 1) to Universal Tables (width = table width) — the axis
Figures 9–12 sweep.

``folded=False`` gives plain vertical partitioning (each chunk in its
own physical table, identified by table name instead of a Chunk
column) — the comparison baseline of Figure 12/Test 6.
"""

from __future__ import annotations

from ...engine.errors import PlanError
from ..folding import (
    ChunkAssignment,
    ChunkShape,
    assign_cover,
    chunk_table_ddl,
    partition_columns,
)
from ..schema import Extension, TenantConfig
from .base import (
    ColumnLoc,
    Fragment,
    Layout,
    ROW,
    SLOT_DDL,
    slot_cast,
    slot_store,
)


class ChunkTableLayout(Layout):
    name = "chunk"
    shares_statements = True
    # Shared chunk tables co-locate every tenant and are scanned with
    # selective tenant/tbl/chunk meta predicates: column-major pages let
    # those predicates run before row assembly.
    default_storage = "columnar"

    def __init__(
        self,
        db,
        schema,
        *,
        width: int = 6,
        folded: bool = True,
        cover_shapes: list[ChunkShape] | None = None,
        **kwargs,
    ) -> None:
        super().__init__(db, schema, **kwargs)
        if width < 1:
            raise PlanError("chunk width must be >= 1")
        self.width = width
        self.folded = folded
        #: Optional pre-planned shape covers (see
        #: :func:`repro.core.folding.select_cover_shapes`): each chunk is
        #: stored in the cheapest cover table that fits it, bounding the
        #: number of distinct Chunk Tables at the price of NULL padding.
        self.cover_shapes = cover_shapes
        self._partitions: dict[tuple[int, str], list[ChunkAssignment]] = {}
        #: Tenants whose partitions were extended in place by an ALTER
        #: (appended chunks): their fragments diverge from fresh tenants
        #: with the same extension set, so they must not share cached
        #: statements with them.
        self._legacy_tenants: set[int] = set()

    # -- partitioning ------------------------------------------------------

    def partition(self, tenant_id: int, table_name: str) -> list[ChunkAssignment]:
        key = (tenant_id, table_name.lower())
        cached = self._partitions.get(key)
        if cached is None:
            logical = self.schema.logical_table(tenant_id, table_name)
            cached = partition_columns(list(logical.columns), self.width)
            self._partitions[key] = cached
        return cached

    def on_extension_granted(self, config: TenantConfig, extension: Extension) -> None:
        """Widen the tenant's partition in place.

        Partitioning is positional, so recomputing it from the new
        logical schema would shuffle existing columns between chunks and
        strand the tenant's rows in the old chunk tables.  A tenant with
        a cached partition therefore keeps it and gains the extension's
        columns as *appended* chunks (becoming a legacy tenant, like the
        ALTER path); fresh tenants compute their partition from the full
        schema on first use.
        """
        key = (config.tenant_id, extension.base_table.lower())
        cached = self._partitions.get(key)
        if cached is not None:
            self._legacy_tenants.add(config.tenant_id)
            start = len(cached)
            appended = [
                ChunkAssignment(
                    chunk_id=start + a.chunk_id,
                    shape=a.shape,
                    indexed=a.indexed,
                    slots=a.slots,
                )
                for a in partition_columns(list(extension.columns), self.width)
            ]
            self._partitions[key] = cached + appended
        super().on_extension_granted(config, extension)

    def on_extension_altered(self, extension, new_columns) -> None:
        """Pure bookkeeping — but the width-driven partitioning is
        positional, so re-partitioning would shuffle existing columns
        between chunks.  Existing subscribed tenants therefore keep
        their old partition and gain the new columns as *appended*
        chunks."""
        for tenant_id in self.schema.tenants_with_extension(extension.name):
            key = (tenant_id, extension.base_table.lower())
            cached = self._partitions.get(key)
            if cached is None:
                continue  # will be computed fresh from the new schema
            self._legacy_tenants.add(tenant_id)
            start = len(cached)
            appended = [
                ChunkAssignment(
                    chunk_id=start + a.chunk_id,
                    shape=a.shape,
                    indexed=a.indexed,
                    slots=a.slots,
                )
                for a in partition_columns(list(new_columns), self.width)
            ]
            self._partitions[key] = cached + appended
        # Register ids and backfill AFTER the partitions include the
        # appended chunks.
        super().on_extension_altered(extension, new_columns)

    def on_tenant_removed(self, config: TenantConfig) -> None:
        super().on_tenant_removed(config)
        self._legacy_tenants.discard(config.tenant_id)
        for key in [k for k in self._partitions if k[0] == config.tenant_id]:
            del self._partitions[key]

    def statement_shape(self, tenant_id: int) -> tuple:
        if tenant_id in self._legacy_tenants:
            return ("tenant", tenant_id)
        return super().statement_shape(tenant_id)

    def bookkeeping(self) -> dict:
        # Partitions must survive a crash verbatim: legacy tenants'
        # appended chunks cannot be recomputed from the current schema.
        state = super().bookkeeping()
        state["partitions"] = {
            key: list(assignments)
            for key, assignments in self._partitions.items()
        }
        state["legacy_tenants"] = set(self._legacy_tenants)
        return state

    def restore_bookkeeping(self, state: dict) -> None:
        super().restore_bookkeeping(state)
        self._partitions = {
            key: list(assignments)
            for key, assignments in state["partitions"].items()
        }
        self._legacy_tenants = set(state["legacy_tenants"])

    # -- physical tables ---------------------------------------------------------

    def _ensure_folded(self, assignment: ChunkAssignment) -> str:
        shape = assignment.shape
        if self.cover_shapes is not None and not assignment.indexed:
            # Host the chunk in its planned cover table; the slot names
            # stay valid because the cover has at least as many slots of
            # every family.
            shape = assign_cover(self.cover_shapes, shape)
        ddl, indexes = chunk_table_ddl(
            shape,
            indexed=assignment.indexed,
            soft_delete=self.soft_delete,
        )
        name = shape.table_name(indexed=assignment.indexed)
        self._ensure_table(name, ddl, indexes)
        return name

    def _ensure_unfolded(
        self, table_name: str, assignment: ChunkAssignment
    ) -> str:
        """Vertical partitioning: one physical table per (table, chunk),
        identified by name — no Chunk column (Test 6's baseline)."""
        physical = f"vp_{table_name.lower()}_c{assignment.chunk_id}"
        columns = ["tenant INTEGER NOT NULL", f"{ROW} INTEGER NOT NULL"]
        if self.soft_delete:
            columns.append("alive INTEGER NOT NULL")
        for _logical, slot in assignment.slots:
            family = slot.rstrip("0123456789")
            columns.append(f"{slot} {SLOT_DDL[family]}")
        ddl = f"CREATE TABLE {physical} (" + ", ".join(columns) + ")"
        indexes = [
            f"CREATE UNIQUE INDEX {physical}_tr ON {physical} (tenant, {ROW})"
        ]
        if assignment.indexed and assignment.shape.ints:
            indexes.append(
                f"CREATE INDEX {physical}_vtr ON {physical} "
                f"(int1, tenant, {ROW})"
            )
        self._ensure_table(physical, ddl, indexes)
        return physical

    # -- fragments -------------------------------------------------------------------

    def fragments(self, tenant_id: int, table_name: str) -> list[Fragment]:
        logical = self.schema.logical_table(tenant_id, table_name)
        types = {c.lname: c.type for c in logical.columns}
        table_id = self.schema.table_id(table_name)
        fragments = []
        for assignment in self.partition(tenant_id, table_name):
            if self.folded:
                physical = self._ensure_folded(assignment)
                meta = (
                    ("tenant", tenant_id),
                    ("tbl", table_id),
                    ("chunk", assignment.chunk_id),
                )
            else:
                physical = self._ensure_unfolded(table_name, assignment)
                meta = (("tenant", tenant_id),)
            columns = tuple(
                (
                    name,
                    ColumnLoc(
                        slot,
                        cast=slot_cast(types[name]),
                        store=slot_store(types[name]),
                    ),
                )
                for name, slot in assignment.slots
            )
            fragments.append(
                Fragment(
                    table=physical,
                    meta=meta,
                    columns=columns,
                    row_column=ROW,
                )
            )
        return fragments
