"""Ablations — storage-level design choices DESIGN.md §5 calls out:

* prefix compression on the (Tenant, Table, Chunk, Row) meta-data
  indexes (Graefe's partitioned B-trees, §6.1),
* FIRST_FIT vs APPEND insert strategies (the DB2 insert-method switch
  hypothesised in §5),
* value-indexed vs unindexed chunk tables (the paper's indexed/plain
  pivot-table pairs).
"""

import pytest

from repro.engine.btree import BTreeIndex
from repro.engine.database import Database
from repro.engine.heap import InsertStrategy
from repro.engine.pager import BufferPool
from repro.engine.heap import RowId
from repro.experiments.report import render_table


class TestPrefixCompressionAblation:
    @pytest.fixture(scope="class")
    def page_counts(self):
        counts = {}
        for compression in (True, False):
            pool = BufferPool(capacity_pages=4096)
            index = BTreeIndex(
                pool, segment_id=1, prefix_compression=compression
            )
            # A (tenant, tbl, chunk, row) shaped key: highly redundant
            # leading columns, like the paper's meta-data indexes.
            for tenant in range(8):
                for chunk in range(4):
                    for row in range(120):
                        index.insert(
                            (tenant, 3, chunk, row), RowId(row + 1, 0)
                        )
            counts[compression] = index.page_count
        return counts

    def test_report(self, benchmark, page_counts, report):
        benchmark.pedantic(lambda: None, rounds=1)
        report(
            "ablation_prefix_compression",
            render_table(
                "Ablation: prefix compression on (tenant, tbl, chunk, row)",
                ["prefix compression", "index pages"],
                [
                    ("on", page_counts[True]),
                    ("off", page_counts[False]),
                ],
            ),
        )

    def test_compression_shrinks_metadata_indexes(self, page_counts):
        """'Prefix compression makes sure that these indexes stay small
        despite the redundant values.'"""
        assert page_counts[True] < page_counts[False]


class TestInsertStrategyAblation:
    @pytest.fixture(scope="class")
    def stats(self):
        out = {}
        for strategy in InsertStrategy:
            db = Database(insert_strategy=strategy)
            db.execute("CREATE TABLE t (id INTEGER, pad VARCHAR(200))")
            for i in range(600):
                db.execute(
                    "INSERT INTO t VALUES (?, ?)", [i, "x" * 150]
                )
            # Delete half to fragment, then refill.
            db.execute("DELETE FROM t WHERE id < 300")
            before = db.pool_stats.snapshot()
            for i in range(600, 900):
                db.execute("INSERT INTO t VALUES (?, ?)", [i, "x" * 150])
            delta = db.pool_stats.delta(before)
            out[strategy] = {
                "pages": db.catalog.table("t").page_count,
                "reads": delta.logical_data,
            }
        return out

    def test_report(self, benchmark, stats, report):
        rows = [
            (strategy.value, s["pages"], s["reads"])
            for strategy, s in stats.items()
        ]
        benchmark.pedantic(lambda: None, rounds=1)
        report(
            "ablation_insert_strategy",
            render_table(
                "Ablation: insert strategy after fragmentation "
                "(600 insert / 300 delete / 300 insert)",
                ["strategy", "heap pages", "insert-phase data reads"],
                rows,
            ),
        )

    def test_first_fit_is_compact(self, stats):
        assert (
            stats[InsertStrategy.FIRST_FIT]["pages"]
            <= stats[InsertStrategy.APPEND]["pages"]
        )

    def test_append_is_cheap_per_insert(self, stats):
        assert (
            stats[InsertStrategy.APPEND]["reads"]
            < stats[InsertStrategy.FIRST_FIT]["reads"]
        )


class TestValueIndexAblation:
    """Indexed vs unindexed generic tables: point lookups on a data
    value need the value-leading index; without it the whole chunk
    prefix is scanned."""

    @pytest.fixture(scope="class")
    def databases(self):
        out = {}
        for indexed in (True, False):
            db = Database()
            db.execute(
                "CREATE TABLE chunk_t (tenant INTEGER, tbl INTEGER, "
                "chunk INTEGER, row INTEGER, int1 BIGINT)"
            )
            db.execute(
                "CREATE UNIQUE INDEX chunk_t_tcr ON chunk_t "
                "(tenant, tbl, chunk, row)"
            )
            if indexed:
                db.execute(
                    "CREATE INDEX chunk_t_itcr ON chunk_t "
                    "(int1, tenant, tbl, chunk, row)"
                )
            for row in range(2000):
                db.execute(
                    "INSERT INTO chunk_t VALUES (1, 0, 0, ?, ?)",
                    [row, row * 7],
                )
            out[indexed] = db
        return out

    def measure(self, db):
        sql = (
            "SELECT row FROM chunk_t WHERE int1 = ? AND tenant = 1 "
            "AND tbl = 0 AND chunk = 0"
        )
        db.execute(sql, [7 * 500])
        before = db.pool_stats.snapshot()
        result = db.execute(sql, [7 * 500])
        assert result.rows == [(500,)]
        return db.pool_stats.delta(before).logical_total

    def test_report(self, benchmark, databases, report):
        rows = [
            ("with itcr index", self.measure(databases[True])),
            ("tcr only", self.measure(databases[False])),
        ]
        benchmark.pedantic(lambda: None, rounds=1)
        report(
            "ablation_value_index",
            render_table(
                "Ablation: value lookup on a chunk table, logical reads",
                ["configuration", "logical reads"],
                rows,
            ),
        )

    def test_value_index_pays_off(self, databases):
        assert self.measure(databases[True]) < self.measure(databases[False])

    def test_benchmark_value_lookup(self, benchmark, databases):
        db = databases[True]
        sql = (
            "SELECT row FROM chunk_t WHERE int1 = ? AND tenant = 1 "
            "AND tbl = 0 AND chunk = 0"
        )

        def lookup():
            return db.execute(sql, [7 * 123])

        result = benchmark(lookup)
        assert result.rows == [(123,)]
