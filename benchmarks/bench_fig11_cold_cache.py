"""Figure 11 (Test 5) — response times with cold cache.

"The database buffer pool and the disk cache were flushed between every
run.  For wider Chunk Tables ... the response times look similar to the
page read graph.  For narrower Chunk Tables, cache locality starts to
have an effect: a single physical page access reads in 2 90-column-wide
tuples and 26 6-column-wide tuples", so narrow chunks regain ground
relative to the warm-cache ordering.
"""

import pytest

from conftest import BENCH_SCALES, chunk_labels
from repro.testbed.simtime import CostModel

_COST = CostModel()


@pytest.fixture(scope="module")
def cold(pool):
    out = {}
    for label in ["conventional"] + chunk_labels():
        out[label] = {
            scale: pool.measure(label, scale, cold=True)
            for scale in BENCH_SCALES
        }
    return out


def cold_ms(measurement) -> float:
    """Cold response: the warm (CPU) component plus physical I/O."""
    return measurement.warm_ms + _COST.physical_read_ms * measurement.physical_reads


class TestFigure11:
    def test_report(self, benchmark, cold, report):
        from repro.experiments.report import render_series

        series = {
            label: [(scale, cold_ms(m)) for scale, m in points.items()]
            for label, points in cold.items()
        }
        benchmark.pedantic(lambda: None, rounds=1)
        report(
            "fig11_cold_cache",
            render_series(
                "Figure 11: Response Times with Cold Cache (simulated ms)",
                "q2_scale",
                series,
            ),
        )

    def test_cold_runs_pay_physical_reads(self, cold):
        for label in chunk_labels():
            assert cold[label][45].physical_reads > 0

    def test_conventional_cheapest_cold(self, cold):
        at_45 = {label: cold_ms(m[45]) for label, m in cold.items()}
        assert at_45["conventional"] == min(at_45.values())

    def test_narrow_chunks_benefit_from_locality(self, cold):
        """Cold, the narrowest chunks are NOT proportionally worse: the
        chunk3/chunk90 physical-read ratio stays well below their
        logical-read ratio (dense packing of narrow tuples)."""
        logical_ratio = (
            cold["chunk3"][90].logical_reads
            / max(1, cold["chunk90"][90].logical_reads)
        )
        physical_ratio = (
            cold["chunk3"][90].physical_reads
            / max(1, cold["chunk90"][90].physical_reads)
        )
        assert physical_ratio < logical_ratio

    def test_narrow_stays_competitive_cold_at_small_scale(self, cold):
        """Paper: narrower Chunk Tables regain ground cold ('a single
        physical page access reads in ... 26 6-column-wide tuples').  At
        the smallest scale, the narrowest layout's physical reads stay
        within a small factor of the widest layout's, despite its much
        higher logical read count."""
        small_scale = BENCH_SCALES[0]
        narrow = cold["chunk3"][small_scale].physical_reads
        wide = cold["chunk90"][small_scale].physical_reads
        assert narrow <= wide * 2

    def test_benchmark_cold_execution(self, benchmark, pool):
        from repro.experiments.chunkqueries import TENANT, q2_sql

        exp = pool.experiment("chunk30")
        db = exp.mtd.db
        sql = exp.mtd.transform_sql(TENANT, q2_sql(30))

        def run_cold():
            db.flush_cache()
            return db.execute(sql, [1])

        result = benchmark(run_cold)
        assert result.rows
