"""Section 6.2, Test 2 — transformation and scaling.

Plans Q2 at increasing scale factors over the width-6 Chunk Table
layout and inspects how the plan grows: region 4/5 of Figure 8 "expands
to a chain of aligning joins where the join column row is looked up
using the meta-data index tcr if columns in different chunks are
accessed".
"""

import pytest

from repro.engine.explain import count_operators, render_plan
from repro.experiments.chunkqueries import TENANT, q2_sql
from repro.experiments.report import render_table

SCALES = (3, 9, 21, 45, 90)


@pytest.fixture(scope="module")
def experiment(pool):
    return pool.experiment("chunk6")


@pytest.fixture(scope="module")
def plans(experiment):
    return {
        scale: experiment.mtd.db.plan(
            experiment.mtd.transform_sql(TENANT, q2_sql(scale))
        )
        for scale in SCALES
    }


class TestPlanScaling:
    def test_report(self, benchmark, plans, report):
        rows = []
        for scale, plan in plans.items():
            rows.append(
                (
                    scale,
                    count_operators(plan, "IXSCAN"),
                    count_operators(plan, "NLJOIN"),
                    count_operators(plan, "HSJOIN"),
                    count_operators(plan, "FETCH"),
                )
            )
        benchmark.pedantic(count_operators, args=(plans[90], "IXSCAN"), rounds=2)
        report(
            "test2_plan_scaling",
            render_table(
                "Test 2: Q2 plan growth on Chunk6 with the scale factor",
                ["scale", "IXSCAN", "NLJOIN", "HSJOIN", "FETCH"],
                rows,
            ),
        )

    def test_join_chain_grows_with_scale(self, plans):
        joins = {
            scale: count_operators(plan, "NLJOIN")
            + count_operators(plan, "HSJOIN")
            for scale, plan in plans.items()
        }
        values = [joins[s] for s in SCALES]
        assert values == sorted(values)
        assert joins[90] > joins[3]

    def test_expected_chunk_counts(self, plans):
        # Scale s touches ceil(s/6) data chunks per side + 1 ChunkIndex
        # chunk per side -> joins = 2*ceil(s/6) + 1 at the top.
        import math

        for scale in SCALES:
            plan = plans[scale]
            expected_accesses = 2 * math.ceil(scale / 6) + 2
            assert count_operators(plan, "IXSCAN") == expected_accesses

    def test_all_scales_answer_correctly(self, experiment):
        for scale in (3, 45, 90):
            rows = experiment.mtd.execute(TENANT, q2_sql(scale), [3]).rows
            assert len(rows) == experiment.config.children_per_parent
            assert len(rows[0]) == 1 + 2 * scale

    def test_benchmark_wide_query_wallclock(self, benchmark, experiment):
        sql = experiment.mtd.transform_sql(TENANT, q2_sql(45))
        db = experiment.mtd.db
        db.execute(sql, [3])

        def run():
            return db.execute(sql, [3])

        result = benchmark(run)
        assert len(result.rows) == experiment.config.children_per_parent
