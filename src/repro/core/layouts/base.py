"""The layout interface and the fragment model.

Every schema-mapping technique in the paper (Figure 4) decomposes a
tenant's logical table into one or more *fragments*: physical tables
holding a subset of the logical columns, selected by constant meta-data
predicates (Tenant / Table / Chunk / Col) and re-aligned through a Row
column.  Expressing each layout as a fragment list lets one generic
query-transformation engine (:mod:`repro.core.transform`) serve all of
them — the layouts differ only in how they produce fragments and
physical DDL.

Meta-data column naming: the paper's ``Table`` column is a reserved word
in SQL, so physical tables use ``tbl``; ``Tenant``, ``Chunk``, ``Col``
and ``Row`` keep their names (lower-cased).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Iterable

from ...engine.database import Database
from ...engine.errors import UnknownObjectError
from ...engine.values import SqlType, TypeKind
from ..metadata import ColumnIdAllocator, MetadataReport, RowIdAllocator
from ..schema import Extension, LogicalColumn, LogicalTable, MultiTenantSchema, TenantConfig

#: Name of the row-alignment meta-data column.
ROW = "row"
#: Name of the soft-delete marker column (Trashcan support, §6.3).
ALIVE = "alive"
#: Name of the tenant-identifying meta-data column.  Query
#: transformation replaces equality filters on this column with
#: parameters when building shape-shared cached statements.
TENANT_META = "tenant"


@dataclass(frozen=True)
class ColumnLoc:
    """Where one logical column lives inside a fragment.

    ``cast`` names an engine conversion function (``TO_INT`` ...) applied
    when reading — used by the Universal layout's VARCHAR funnel.
    ``store`` converts a Python value for writing (None = identity).
    """

    physical: str
    cast: str | None = None
    store: Callable[[object], object] | None = None

    def write(self, value: object) -> object:
        if self.store is None:
            return value
        return self.store(value)


@dataclass(frozen=True)
class Fragment:
    """One physical table holding a slice of a logical table's columns."""

    table: str
    meta: tuple[tuple[str, object], ...]  # (meta column, constant) filters
    columns: tuple[tuple[str, ColumnLoc], ...]  # logical name -> location
    row_column: str | None = ROW

    def column_map(self) -> dict[str, ColumnLoc]:
        return dict(self.columns)

    def covers(self, column: str) -> bool:
        return any(name == column for name, _ in self.columns)


class Layout(abc.ABC):
    """A schema-mapping technique."""

    #: Registry short name, e.g. ``"chunk_folding"``.
    name: str = "abstract"
    #: Whether the layout supports tenant-specific extensions at all.
    supports_extensions: bool = True
    #: Whether tenants with the same extension set produce structurally
    #: identical fragments, differing only in the ``TENANT_META`` value.
    #: Such layouts share cached transformed statements across tenants
    #: (Table 1: many tenants, few distinct schema shapes); layouts with
    #: per-tenant physical structure (Private Tables) must not.
    shares_statements: bool = False
    #: Storage format for this layout's physical tables (``None`` = the
    #: engine default, row-major heap pages).  Layouts whose shared
    #: tables co-locate all tenants and get scanned with selective meta
    #: predicates (chunk/pivot/universal) default to ``"columnar"``;
    #: a ``storage=`` layout option overrides either way.
    default_storage: str | None = None

    def __init__(
        self,
        db: Database,
        schema: MultiTenantSchema,
        *,
        soft_delete: bool = False,
        storage: str | None = None,
    ) -> None:
        self.db = db
        self.schema = schema
        self.soft_delete = soft_delete
        self.storage = storage if storage is not None else self.default_storage
        self.rows = RowIdAllocator()
        self.columns = ColumnIdAllocator()
        self._created_tables: set[str] = set()

    # -- physical lifecycle (online DDL / bookkeeping) ----------------------

    def bootstrap(self) -> None:
        """Create fixed generic structures (no-op for conventional layouts)."""

    def on_table_added(self, table: LogicalTable) -> None:
        self.columns.register_base(table.name, [c.name for c in table.columns])

    def on_extension_added(self, extension: Extension) -> None:
        self.columns.register_extension(
            extension.base_table, [c.name for c in extension.columns]
        )

    def on_tenant_added(self, config: TenantConfig) -> None:
        """Per-tenant physical structures (Private layout creates tables)."""

    def on_tenant_removed(self, config: TenantConfig) -> None:
        self.rows.forget_tenant(config.tenant_id)

    def on_extension_granted(self, config: TenantConfig, extension: Extension) -> None:
        """React to a tenant subscribing to an extension at run time.

        Reconstruction inner-joins fragments on Row, so the tenant's
        existing rows need NULL rows in every fragment that holds only
        the newly granted columns — the same bookkeeping an ALTER
        performs, restricted to one tenant.
        """
        self._backfill_tenant(
            config.tenant_id,
            extension.base_table,
            {c.lname for c in extension.columns},
        )

    def on_extension_altered(
        self, extension: Extension, new_columns: tuple[LogicalColumn, ...]
    ) -> None:
        """React to an extension being widened online (§6.3: "Other
        operations like DROP or ALTER statements can be evaluated
        on-line as well ... only the application logic has to do the
        respective bookkeeping").

        Registers the new column ids and NULL-backfills any fragment
        that holds *only* new columns: reconstruction inner-joins on
        Row, so every logical row needs a row in every fragment.
        """
        self.columns.register_extension(
            extension.base_table, [c.name for c in new_columns]
        )
        self._backfill_new_fragments(extension, new_columns)

    def _backfill_new_fragments(
        self, extension: Extension, new_columns: tuple[LogicalColumn, ...]
    ) -> None:
        new_names = {c.lname for c in new_columns}
        for tenant_id in self.schema.tenants_with_extension(extension.name):
            self._backfill_tenant(tenant_id, extension.base_table, new_names)

    def _backfill_tenant(
        self, tenant_id: int, base_table: str, new_names: set[str]
    ) -> None:
        """NULL-backfill this tenant's fragments that hold only columns
        from ``new_names``, so row-alignment joins keep existing rows."""
        fragments = self.fragments(tenant_id, base_table)
        anchor = fragments[0]
        if anchor.row_column is None:
            return  # conventional layouts rebuild tables themselves
        targets = [
            f
            for f in fragments
            if f.columns
            and all(name in new_names for name, _ in f.columns)
        ]
        if not targets:
            return
        where = " AND ".join(
            f"{col} = {value!r}" for col, value in anchor.meta
        ) or "1 = 1"
        select_cols = anchor.row_column
        if self.soft_delete:
            select_cols += f", {ALIVE}"
        rows = self.db.execute(
            f"SELECT {select_cols} FROM {anchor.table} WHERE {where}"
        ).rows
        for fragment in targets:
            for row in rows:
                # Meta values are inlined as literals (the guard
                # discipline the isolation verifier proves); only the
                # row identity travels as a parameter.
                names = [col for col, _ in fragment.meta]
                exprs = [f"{v!r}" for _, v in fragment.meta]
                values: list[object] = [row[0]]
                names.append(fragment.row_column)
                exprs.append("?")
                if self.soft_delete:
                    names.append(ALIVE)
                    exprs.append("?")
                    values.append(row[1])
                self.db.execute(
                    f"INSERT INTO {fragment.table} "
                    f"({', '.join(names)}) VALUES ({', '.join(exprs)})",
                    values,
                )

    # -- crash-recovery bookkeeping -----------------------------------------

    def bookkeeping(self) -> dict:
        """Picklable snapshot of the layout's in-memory bookkeeping.

        Recorded at the end of every administrative operation (the WAL's
        ``admin_end`` payload) and restored during replay: the physical
        tables survive a crash through the engine's own recovery, but
        row/column allocators and partition caches live only here.
        Subclasses extend the dict; :meth:`restore_bookkeeping` must
        accept exactly what this returns.
        """
        return {
            "rows": self.rows.snapshot(),
            "columns": self.columns.snapshot(),
            "created_tables": set(self._created_tables),
        }

    def restore_bookkeeping(self, state: dict) -> None:
        self.rows.restore(state["rows"])
        self.columns.restore(state["columns"])
        self._created_tables = set(state["created_tables"])

    # -- the fragment model ---------------------------------------------------

    @abc.abstractmethod
    def fragments(self, tenant_id: int, table_name: str) -> list[Fragment]:
        """The physical fragments of this tenant's view of a table.

        Fragment order matters: the first fragment is the *anchor* used
        when a query touches no columns at all (e.g. ``COUNT(*)``), and
        row-alignment joins chain off it.
        """

    def statement_shape(self, tenant_id: int) -> tuple:
        """Cache identity of this tenant's transformed statements.

        Tenants returning equal shapes reuse each other's cached
        physical statements, with the tenant id bound as a parameter at
        execution time.  Shape-sharing layouts collapse onto the
        tenant's extension set — the paper's observation that thousands
        of tenants exhibit only a handful of schema shapes; the default
        is the always-safe per-tenant key.
        """
        if self.shares_statements:
            return ("shape", frozenset(self.schema.tenant(tenant_id).extensions))
        return ("tenant", tenant_id)

    # -- helpers shared by concrete layouts --------------------------------------

    def _ensure_table(self, name: str, ddl: str, indexes: Iterable[str] = ()) -> bool:
        """Create a physical table once; True when created now.

        All layout DDL funnels through here, so the layout's storage
        choice is appended uniformly (every caller's DDL string ends
        with the closing paren of its column list).
        """
        key = name.lower()
        if key in self._created_tables or self.db.catalog.has_table(name):
            self._created_tables.add(key)
            return False
        if self.storage is not None:
            ddl = f"{ddl} USING {self.storage}"
        self.db.execute(ddl)
        for index_sql in indexes:
            self.db.execute(index_sql)
        self._created_tables.add(key)
        return True

    def _drop_table(self, name: str) -> None:
        self._created_tables.discard(name.lower())
        if self.db.catalog.has_table(name):
            self.db.execute(f"DROP TABLE {name}")

    def _alive_ddl(self) -> str:
        return f", {ALIVE} INTEGER NOT NULL" if self.soft_delete else ""

    def report(self) -> MetadataReport:
        return MetadataReport(
            layout=self.name,
            physical_tables=self.db.catalog.table_count,
            physical_indexes=self.db.catalog.index_count,
            metadata_bytes=self.db.catalog.metadata_bytes,
            buffer_pool_pages=self.db.buffer_pool_pages,
        )


# ---------------------------------------------------------------------------
# Slot typing shared by Pivot / Chunk layouts
# ---------------------------------------------------------------------------

#: Generic slot families: a logical type maps to one of these.
SLOT_FAMILIES = ("int", "str", "date", "dbl")

#: Declared SQL type of each slot family in generic tables.
SLOT_DDL = {
    "int": "BIGINT",
    "str": "VARCHAR(255)",
    "date": "DATE",
    "dbl": "DOUBLE",
}


def slot_family(sql_type: SqlType) -> str:
    """Which generic slot family stores values of this logical type."""
    kind = sql_type.kind
    if kind in (TypeKind.INTEGER, TypeKind.BIGINT, TypeKind.BOOLEAN):
        return "int"
    if kind is TypeKind.VARCHAR:
        return "str"
    if kind is TypeKind.DATE:
        return "date"
    if kind is TypeKind.DOUBLE:
        return "dbl"
    raise UnknownObjectError(f"no slot family for {sql_type}")


def slot_store(sql_type: SqlType) -> Callable[[object], object] | None:
    """Write-side conversion into a slot (bools become 0/1 ints)."""
    if sql_type.kind is TypeKind.BOOLEAN:
        return lambda v: None if v is None else int(v)
    return None


def slot_cast(sql_type: SqlType) -> str | None:
    """Read-side cast out of a slot."""
    if sql_type.kind is TypeKind.BOOLEAN:
        return "TO_BOOL"
    return None
