"""Plan cache — cold vs warm statement throughput, cache on vs off.

Not a paper figure: this benchmark quantifies the engineering claim
behind prepared statements in a multi-tenant DBMS.  Transformed queries
differ per *tenant shape*, not per tenant, so a shape-keyed statement
cache plus parameterized tenant identity lets one prepared physical
plan serve every tenant on a shared layout.  Measured here:

* statement throughput of a recurring SELECT workload with both cache
  layers enabled vs fully disabled (``statement_cache_size=0`` and
  ``plan_cache_size=0``) — the acceptance bar is a >= 3x warm speedup;
* the first, cache-populating pass vs the steady state on the same
  database (cold vs warm);
* wall-clock speedup of the Figure 9 warm-cache harness (Q2 on chunk
  width 15, same parameter every run) with caches on vs off.
"""

import random
import time

import pytest

from repro import LogicalColumn, LogicalTable, MultiTenantDatabase
from repro.engine.database import Database
from repro.engine.values import INTEGER, varchar
from repro.experiments.chunkqueries import (
    ChunkQueryConfig,
    ChunkQueryExperiment,
    TENANT,
    q2_sql,
)

TENANTS = 8
ROWS = 10
DATA_COLUMNS = 8
WARM_PASSES = 6

Q2_CONFIG = ChunkQueryConfig(parents=30, children_per_parent=5)
Q2_REPS = 15

#: An OLTP detail-page mix: indexed point lookups whose execution is a
#: handful of page touches, so per-statement cost is dominated by
#: parse + transform + plan — exactly what the cache layers remove.
STATEMENTS = (
    "SELECT c1, c2 FROM acct WHERE id = ?",
    "SELECT c3, c4, c5 FROM acct WHERE id = ?",
    "SELECT * FROM acct WHERE id = ?",
)


def build_mtd(cached: bool) -> MultiTenantDatabase:
    mtd = MultiTenantDatabase(
        layout="chunk_folding",
        db=Database(plan_cache_size=256 if cached else 0),
        statement_cache_size=256 if cached else 0,
        width=2,
    )
    columns = [LogicalColumn("id", INTEGER, indexed=True, not_null=True)]
    columns += [
        LogicalColumn(f"c{i}", INTEGER if i % 2 else varchar(20))
        for i in range(1, DATA_COLUMNS + 1)
    ]
    mtd.define_table(LogicalTable("acct", tuple(columns)))
    rng = random.Random(8)
    for tenant in range(1, TENANTS + 1):
        mtd.create_tenant(tenant)
        for i in range(ROWS):
            row = {"id": i + 1}
            for j in range(1, DATA_COLUMNS + 1):
                row[f"c{j}"] = (
                    rng.randrange(1000) if j % 2 else f"v{rng.randrange(1000)}"
                )
            mtd.insert(tenant, "acct", row)
    return mtd


def run_pass(mtd: MultiTenantDatabase, seed: int) -> tuple[int, float]:
    """One pass of the recurring workload: every statement for every
    tenant.  Returns (statements executed, elapsed seconds)."""
    rng = random.Random(seed)
    count = 0
    start = time.perf_counter()
    for tenant in range(1, TENANTS + 1):
        for sql in STATEMENTS:
            mtd.execute(tenant, sql, [rng.randrange(ROWS) + 1])
            count += 1
    return count, time.perf_counter() - start


def throughput(mtd: MultiTenantDatabase, passes: int) -> float:
    total = 0
    elapsed = 0.0
    for i in range(passes):
        count, seconds = run_pass(mtd, seed=100 + i)
        total += count
        elapsed += seconds
    return total / elapsed


@pytest.fixture(scope="module")
def measurements():
    cached = build_mtd(cached=True)
    uncached = build_mtd(cached=False)
    # Cold: the first, cache-populating pass on the cached database.
    cold_count, cold_seconds = run_pass(cached, seed=99)
    out = {
        "cold": cold_count / cold_seconds,
        "warm": throughput(cached, WARM_PASSES),
        "off": throughput(uncached, WARM_PASSES),
        "hits": cached.db.metrics.value("mt.statement_cache.hits"),
        "misses": cached.db.metrics.value("mt.statement_cache.misses"),
        "engine_hits": cached.db.metrics.value("db.plan_cache.hits"),
    }
    return out


def q2_experiment(cached: bool) -> ChunkQueryExperiment:
    exp = ChunkQueryExperiment("chunk", Q2_CONFIG, width=15)
    if not cached:
        exp.mtd = MultiTenantDatabase(
            layout="chunk",
            db=Database(
                memory_bytes=Q2_CONFIG.memory_bytes, plan_cache_size=0
            ),
            statement_cache_size=0,
            width=15,
        )
    exp.load()
    return exp


def q2_seconds(exp: ChunkQueryExperiment) -> float:
    sql = q2_sql(30)
    exp.mtd.execute(TENANT, sql, [1])  # warm the buffer pool and caches
    start = time.perf_counter()
    for _ in range(Q2_REPS):
        exp.mtd.execute(TENANT, sql, [1])
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def fig9_speedup():
    return q2_seconds(q2_experiment(cached=False)) / q2_seconds(
        q2_experiment(cached=True)
    )


class TestPlanCache:
    def test_report(self, benchmark, measurements, fig9_speedup, report):
        benchmark.pedantic(lambda: None, rounds=1)
        lines = [
            "Plan cache: statement throughput (statements/s), chunk_folding, "
            f"{TENANTS} tenants",
            f"{'cache off':>12} {'cold':>12} {'warm':>12} {'warm/off':>9}",
            (
                f"{measurements['off']:>12.0f} {measurements['cold']:>12.0f} "
                f"{measurements['warm']:>12.0f} "
                f"{measurements['warm'] / measurements['off']:>8.1f}x"
            ),
            "",
            (
                f"mt.statement_cache: hits={measurements['hits']:.0f} "
                f"misses={measurements['misses']:.0f}; "
                f"db.plan_cache: hits={measurements['engine_hits']:.0f}"
            ),
            (
                f"Figure 9 harness (Q2, chunk width 15, warm): "
                f"{fig9_speedup:.1f}x faster with caches on"
            ),
        ]
        report("plan_cache", "\n".join(lines))

    def test_warm_beats_cache_off_3x(self, measurements):
        """The acceptance bar: prepared execution of a recurring
        workload is at least 3x the uncached statement throughput."""
        assert measurements["warm"] >= 3 * measurements["off"]

    def test_warm_beats_cold(self, measurements):
        assert measurements["warm"] > measurements["cold"]

    def test_caches_were_exercised(self, measurements):
        # Every tenant shares one shape, so the whole workload costs one
        # transformation per statement text; the engine text cache sees
        # no traffic at all (cached entries execute via prepared plans).
        assert measurements["hits"] > 0
        assert measurements["misses"] <= len(STATEMENTS)

    def test_fig9_harness_speedup(self, fig9_speedup):
        """Transformed-Q2 caching must help the paper's own warm-cache
        harness, not just microbenchmarks (loose bound: machine noise)."""
        assert fig9_speedup > 1.2

    def test_benchmark_warm_select(self, benchmark, measurements):
        mtd = build_mtd(cached=True)
        handle = mtd.prepare(STATEMENTS[0])
        handle.execute(1, [1])

        def run():
            return handle.execute(1, [1])

        result = benchmark(run)
        assert result.rows
