"""Online tenant rebalancing: move a tenant between shards while it
serves traffic.

The protocol is the classic snapshot-plus-log-shipping move:

1. **copy** — begin write capture on the source, then snapshot each
   table.  Marking a table captured and reading its snapshot happen in
   one source-worker job (:meth:`ShardWorker.snapshot_table`), so every
   concurrent write lands in exactly one of {snapshot, capture log}.
   Snapshots are applied to the destination in chunked transactions.
2. **ship** — repeatedly drain the capture log and replay it on the
   destination until a round comes back small (the tenant's write rate
   bounds this; the round count is capped).
3. **cutover** — under the tenant's router lock (so no tenant request
   is in flight), one final source job drains the log tail *and*
   disowns the tenant; the tail is replayed on the destination, the
   destination adopts, and the catalog pins the tenant to the
   destination while advancing the journal to ``purge`` — one atomic
   file replace, the commit point of the whole move.
4. **purge** — drop the now-stale copy from the source and clear the
   journal.

Crash recovery reads the journal phase: before the commit point
(``copy``/``ship``/``cutover``) the source is authoritative and the
destination copy is dropped; at ``purge`` the catalog already points at
the destination, so recovery finishes the purge.  Either way the tenant
ends on exactly one shard.  A cluster-level
:class:`~repro.engine.durability.faults.FaultInjector` gets a named
crashpoint at each phase boundary.
"""

from __future__ import annotations

import time

from ..engine.durability.faults import FaultInjector
from ..engine.observability import MetricsRegistry
from .errors import ClusterError
from .placement import PlacementCatalog
from .router import Router
from .shard import ShardWorker


class Rebalancer:
    """Moves one tenant at a time between live shards."""

    def __init__(
        self,
        catalog: PlacementCatalog,
        shards: dict[str, ShardWorker],
        router: Router,
        *,
        metrics: MetricsRegistry | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        self.catalog = catalog
        self.shards = shards
        self.router = router
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.faults = faults
        self._c_moves = self.metrics.counter("cluster.rebalance.completed")
        self._c_rows = self.metrics.counter("cluster.rebalance.rows_copied")
        self._c_shipped = self.metrics.counter(
            "cluster.rebalance.shipped_entries"
        )

    def _crashpoint(self, name: str) -> None:
        if self.faults is not None:
            self.faults.crashpoint(name)

    async def rebalance(
        self,
        tenant_id: int,
        dest_name: str,
        *,
        copy_chunk: int = 64,
        drain_rounds: int = 8,
        drain_threshold: int = 4,
    ) -> dict:
        """Move ``tenant_id`` to shard ``dest_name``; returns move stats."""
        source_name = self.catalog.shard_for(tenant_id)
        if source_name == dest_name:
            raise ClusterError(
                f"tenant {tenant_id} is already on shard {dest_name!r}"
            )
        try:
            source = self.shards[source_name]
            dest = self.shards[dest_name]
        except KeyError as exc:
            raise ClusterError(f"unknown shard {exc.args[0]!r}") from None
        started = time.monotonic()
        stats = {
            "tenant_id": tenant_id,
            "source": source_name,
            "dest": dest_name,
            "tables": 0,
            "rows_copied": 0,
            "entries_shipped": 0,
            "ship_rounds": 0,
        }
        self.catalog.begin_rebalance(tenant_id, source_name, dest_name)
        try:
            await self._copy(tenant_id, source, dest, copy_chunk, stats)
            self.catalog.update_phase("ship")
            await self._ship(
                tenant_id, source, dest, drain_rounds, drain_threshold, stats
            )
            self.catalog.update_phase("cutover")
            await self._cutover(tenant_id, source, dest, stats)
            # Committed: from here the move only rolls forward.
            self._crashpoint("rebalance.purge")
            await source.submit(source.mtd.drop_tenant, tenant_id)
            self.catalog.clear_rebalance()
        except Exception:
            # Ordinary failure (not a simulated crash): roll back in
            # place — the commit point was not reached, the source still
            # owns the tenant, so discard the partial destination copy.
            await source.submit(source.end_capture)
            if tenant_id in await dest.submit(dest.mtd.tenant_ids):
                await dest.submit(dest.mtd.drop_tenant, tenant_id)
            await dest.submit(dest.disown, tenant_id, self.catalog.version)
            self.catalog.clear_rebalance()
            raise
        self._c_moves.inc()
        stats["duration_ms"] = (time.monotonic() - started) * 1000.0
        return stats

    # -- phases --------------------------------------------------------------

    async def _copy(
        self,
        tenant_id: int,
        source: ShardWorker,
        dest: ShardWorker,
        copy_chunk: int,
        stats: dict,
    ) -> None:
        config = source.mtd.schema.tenant(tenant_id)
        extensions = tuple(sorted(config.extensions))
        if tenant_id in await dest.submit(dest.mtd.tenant_ids):
            # Debris from an earlier abandoned attempt.
            await dest.submit(dest.mtd.drop_tenant, tenant_id)
        await dest.submit(dest.mtd.create_tenant, tenant_id, extensions)
        await source.submit(source.begin_capture, tenant_id)
        for table in source.mtd.schema.tables():
            rows = await source.submit(
                source.snapshot_table, tenant_id, table.name
            )
            self._crashpoint("rebalance.copy")
            stats["tables"] += 1
            for start in range(0, len(rows), copy_chunk):
                chunk = rows[start : start + copy_chunk]
                await dest.submit(
                    self._apply_chunk, dest, tenant_id, table.name, chunk
                )
                stats["rows_copied"] += len(chunk)
                self._c_rows.inc(len(chunk))

    @staticmethod
    def _apply_chunk(
        dest: ShardWorker, tenant_id: int, table: str, chunk: list
    ) -> None:
        with dest.mtd.db.atomic():
            for row_id, values in chunk:
                dest.mtd.insert(tenant_id, table, values, row_id=row_id)

    async def _ship(
        self,
        tenant_id: int,
        source: ShardWorker,
        dest: ShardWorker,
        drain_rounds: int,
        drain_threshold: int,
        stats: dict,
    ) -> None:
        for _round in range(drain_rounds):
            entries = await source.submit(source.drain_capture)
            stats["ship_rounds"] += 1
            if entries:
                await dest.submit(dest.apply_captured, tenant_id, entries)
                stats["entries_shipped"] += len(entries)
                self._c_shipped.inc(len(entries))
            self._crashpoint("rebalance.ship")
            if len(entries) <= drain_threshold:
                return

    async def _cutover(
        self,
        tenant_id: int,
        source: ShardWorker,
        dest: ShardWorker,
        stats: dict,
    ) -> None:
        async with self.router.tenant_lock(tenant_id):
            self._crashpoint("rebalance.cutover")
            new_version = self.catalog.version + 1
            # One source job: final drain + disown.  After it, any
            # late request raises WrongShardError and re-routes (it is
            # queued behind the tenant lock we hold).
            tail = await source.submit(
                source.end_capture, disown_version=new_version
            )
            if tail:
                await dest.submit(dest.apply_captured, tenant_id, tail)
                stats["entries_shipped"] += len(tail)
                self._c_shipped.inc(len(tail))
            await dest.submit(dest.adopt, tenant_id, new_version)
            # The commit point: pin flip + phase advance in one atomic
            # file replace.
            self.catalog.update_phase("purge", pin_dest=True)
