"""Experiment 1 — handling many tables (Section 5; Table 2, Figure 7).

Fixes the number of tenants, the data per tenant, and the workload, and
sweeps the *schema variability* (Table 1).  Reports, per configuration:
baseline compliance (vs. the variability-0.0 run's 95 % quantiles),
throughput, the 95 % response-time quantiles per action class, and the
buffer-pool hit ratios split data/index.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..testbed.actions import ActionClass
from ..testbed.controller import Testbed, TestbedConfig
from ..testbed.generator import TenantDataProfile

#: The paper's sweep (Table 1 / Table 2 columns).
PAPER_VARIABILITIES = (0.0, 0.5, 0.65, 0.8, 1.0)


@dataclass
class ManyTablesRow:
    """One Table 2 column."""

    variability: float
    total_tables: int
    baseline_compliance: float
    throughput_per_minute: float
    quantiles_ms: dict[ActionClass, float]
    data_hit_pct: float
    index_hit_pct: float


@dataclass
class ManyTablesExperiment:
    """Scaled sweep (defaults documented in DESIGN.md §2: tenants and
    memory scaled together from the paper's 10,000 tenants / 1 GB)."""

    tenants: int = 100
    sessions: int = 40
    actions: int = 600
    memory_bytes: int = 10 * 1024 * 1024
    variabilities: tuple[float, ...] = PAPER_VARIABILITIES
    seed: int = 2008
    data_profile: TenantDataProfile = field(default_factory=TenantDataProfile)

    def run(self) -> list[ManyTablesRow]:
        rows: list[ManyTablesRow] = []
        baseline: dict[ActionClass, float] | None = None
        for variability in self.variabilities:
            testbed = Testbed(
                TestbedConfig(
                    variability=variability,
                    tenants=self.tenants,
                    sessions=self.sessions,
                    actions=self.actions,
                    memory_bytes=self.memory_bytes,
                    seed=self.seed,
                    data_profile=self.data_profile,
                )
            )
            testbed.setup()
            results = testbed.run()
            quantiles = results.quantiles(0.95)
            if baseline is None:
                # "The 95% quantiles were computed for each query class
                # of the schema variability 0.0 configuration: this is
                # the baseline."  Its own compliance is 95% by
                # definition.
                baseline = quantiles
                compliance = 95.0
            else:
                compliance = results.baseline_compliance(baseline)
            metrics = testbed.metrics(results, baseline)
            rows.append(
                ManyTablesRow(
                    variability=variability,
                    total_tables=testbed.variability.total_tables,
                    baseline_compliance=compliance,
                    throughput_per_minute=metrics.throughput_per_minute,
                    quantiles_ms=quantiles,
                    data_hit_pct=100 * metrics.data_hit_ratio,
                    index_hit_pct=100 * metrics.index_hit_ratio,
                )
            )
        return rows

    # -- the paper's three Figure 7 series -------------------------------------

    @staticmethod
    def figure7a(rows: list[ManyTablesRow]) -> list[tuple[float, float]]:
        """(variability, baseline compliance %)"""
        return [(r.variability, r.baseline_compliance) for r in rows]

    @staticmethod
    def figure7b(rows: list[ManyTablesRow]) -> list[tuple[float, float]]:
        """(variability, transactions/minute)"""
        return [(r.variability, r.throughput_per_minute) for r in rows]

    @staticmethod
    def figure7c(
        rows: list[ManyTablesRow],
    ) -> list[tuple[float, float, float]]:
        """(variability, data hit %, index hit %)"""
        return [(r.variability, r.data_hit_pct, r.index_hit_pct) for r in rows]
