"""CRC-framed record serialization shared by the WAL and page store.

Records are pickled Python objects wrapped in a ``[length][crc32]``
frame.  Readers validate length and checksum and treat the first bad
frame as the end of the durable log — a torn tail from a crash mid
write is silently discarded, matching standard WAL semantics.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Iterator

#: Frame header: payload length (u32) + payload crc32 (u32).
_HEADER = struct.Struct("<II")
HEADER_SIZE = _HEADER.size

#: Pickle protocol 4: stable across the supported Pythons (3.8+).
_PROTOCOL = 4


def encode_frame(record: object) -> bytes:
    """Serialize one record into a self-checking frame."""
    payload = pickle.dumps(record, protocol=_PROTOCOL)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_frames(data: bytes) -> Iterator[tuple[int, object]]:
    """Yield ``(offset, record)`` for each valid frame in ``data``.

    Stops at the first torn or corrupt frame: a crash mid-append leaves
    a short or checksum-failing tail, which is simply not part of the
    durable log.
    """
    offset = 0
    total = len(data)
    while offset + HEADER_SIZE <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + HEADER_SIZE
        end = start + length
        if end > total:
            return  # torn tail
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return  # corrupt frame: stop, do not resynchronize
        try:
            record = pickle.loads(payload)
        except Exception:
            return
        yield offset, record
        offset = end


def frame_size(record: object) -> int:
    return len(encode_frame(record))
