"""Chunk Folding — Figure 4(f), the paper's contribution.

The meta-data budget is split between application-specific conventional
tables and a fixed set of generic Chunk Tables: base tables (the
heavily-utilized part of every tenant's schema) live in conventional
shared tables à la the Extension Table Layout, while extensions are
chunked and *folded* into shared Chunk Tables.  Adding an extension to
a tenant is pure bookkeeping — no DDL — so logical schema changes happen
while the database is online.

With a :class:`~repro.core.folding.FoldingPlanner` the split can instead
be driven by utilization statistics (the paper's ongoing-work
direction): cold base columns are folded into Chunk Tables too.
"""

from __future__ import annotations

from ...engine.errors import PlanError
from ..folding import (
    ChunkAssignment,
    FoldingPlanner,
    chunk_table_ddl,
    partition_columns,
)
from ..schema import Extension, LogicalTable, TenantConfig
from .base import ColumnLoc, Fragment, Layout, ROW, slot_cast, slot_store


class ChunkFoldingLayout(Layout):
    name = "chunk_folding"
    shares_statements = True
    default_storage = "columnar"

    def __init__(
        self,
        db,
        schema,
        *,
        width: int = 6,
        planner: FoldingPlanner | None = None,
        **kwargs,
    ) -> None:
        super().__init__(db, schema, **kwargs)
        if width < 1:
            raise PlanError("chunk width must be >= 1")
        self.width = width
        self.planner = planner
        #: chunk-id ranges: extensions of one base table get disjoint
        #: chunk ids, shared by every tenant using the extension.
        self._next_chunk: dict[str, int] = {}
        self._extension_chunks: dict[str, list[ChunkAssignment]] = {}
        #: per base table: (conventional columns, folded cold chunks)
        self._base_split: dict[str, tuple[list, list[ChunkAssignment]]] = {}

    def base_physical(self, table_name: str) -> str:
        return f"{table_name.lower()}_cf"

    # -- DDL ----------------------------------------------------------------

    def on_table_added(self, table: LogicalTable) -> None:
        super().on_table_added(table)
        if self.planner is not None:
            decision = self.planner.plan(table.name, list(table.columns))
            conventional = decision.conventional
            cold_chunks = self._allocate_chunk_ids(table.name, decision.chunked)
        else:
            conventional = list(table.columns)
            cold_chunks = []
        self._base_split[table.lname] = (conventional, cold_chunks)
        physical = self.base_physical(table.name)
        parts = ["tenant INTEGER NOT NULL", f"{ROW} INTEGER NOT NULL"]
        parts += [
            f"{c.lname} {c.type}" + (" NOT NULL" if c.not_null else "")
            for c in conventional
        ]
        ddl = (
            f"CREATE TABLE {physical} ("
            + ", ".join(parts)
            + self._alive_ddl()
            + ")"
        )
        indexes = [
            f"CREATE UNIQUE INDEX {physical}_tr ON {physical} (tenant, {ROW})"
        ] + [
            f"CREATE INDEX {physical}_{c.lname} ON {physical} (tenant, {c.lname})"
            for c in conventional
            if c.indexed
        ]
        self._ensure_table(physical, ddl, indexes)
        for assignment in cold_chunks:
            self._ensure_chunk_table(assignment)

    def _allocate_chunk_ids(
        self, table_name: str, assignments: list[ChunkAssignment]
    ) -> list[ChunkAssignment]:
        start = self._next_chunk.get(table_name.lower(), 0)
        renumbered = [
            ChunkAssignment(
                chunk_id=start + i,
                shape=a.shape,
                indexed=a.indexed,
                slots=a.slots,
            )
            for i, a in enumerate(assignments)
        ]
        self._next_chunk[table_name.lower()] = start + len(assignments)
        return renumbered

    def on_extension_added(self, extension: Extension) -> None:
        super().on_extension_added(extension)
        assignments = self._allocate_chunk_ids(
            extension.base_table,
            partition_columns(list(extension.columns), self.width),
        )
        self._extension_chunks[extension.lname] = assignments
        for assignment in assignments:
            self._ensure_chunk_table(assignment)

    def _ensure_chunk_table(self, assignment: ChunkAssignment) -> str:
        ddl, indexes = chunk_table_ddl(
            assignment.shape,
            indexed=assignment.indexed,
            soft_delete=self.soft_delete,
        )
        name = assignment.shape.table_name(indexed=assignment.indexed)
        self._ensure_table(name, ddl, indexes)
        return name

    def on_extension_granted(self, config: TenantConfig, extension: Extension) -> None:
        """No DDL — the Chunk Tables already exist and the conventional
        tables are untouched (the property that lets schema changes
        happen on-line).  The base-class bookkeeping still NULL-backfills
        the extension chunks for the tenant's existing rows."""
        super().on_extension_granted(config, extension)

    def on_extension_altered(self, extension: Extension, new_columns) -> None:
        """Online ALTER: the new columns get fresh chunks appended to
        the extension's chunk list; conventional tables are untouched."""
        appended = self._allocate_chunk_ids(
            extension.base_table,
            partition_columns(list(new_columns), self.width),
        )
        self._extension_chunks[extension.lname].extend(appended)
        for assignment in appended:
            self._ensure_chunk_table(assignment)
        # Register ids and backfill after the fragments include the
        # appended chunks.
        super().on_extension_altered(extension, new_columns)

    def bookkeeping(self) -> dict:
        state = super().bookkeeping()
        state["next_chunk"] = dict(self._next_chunk)
        state["extension_chunks"] = {
            name: list(assignments)
            for name, assignments in self._extension_chunks.items()
        }
        state["base_split"] = {
            name: (list(conventional), list(chunks))
            for name, (conventional, chunks) in self._base_split.items()
        }
        return state

    def restore_bookkeeping(self, state: dict) -> None:
        super().restore_bookkeeping(state)
        self._next_chunk = dict(state["next_chunk"])
        self._extension_chunks = {
            name: list(assignments)
            for name, assignments in state["extension_chunks"].items()
        }
        self._base_split = {
            name: (list(conventional), list(chunks))
            for name, (conventional, chunks) in state["base_split"].items()
        }

    # -- fragments ----------------------------------------------------------------

    def _chunk_fragment(
        self,
        tenant_id: int,
        table_id: int,
        assignment: ChunkAssignment,
        types: dict,
    ) -> Fragment:
        physical = assignment.shape.table_name(indexed=assignment.indexed)
        columns = tuple(
            (
                name,
                ColumnLoc(
                    slot,
                    cast=slot_cast(types[name]),
                    store=slot_store(types[name]),
                ),
            )
            for name, slot in assignment.slots
        )
        return Fragment(
            table=physical,
            meta=(
                ("tenant", tenant_id),
                ("tbl", table_id),
                ("chunk", assignment.chunk_id),
            ),
            columns=columns,
            row_column=ROW,
        )

    def fragments(self, tenant_id: int, table_name: str) -> list[Fragment]:
        base = self.schema.table(table_name)
        logical = self.schema.logical_table(tenant_id, table_name)
        types = {c.lname: c.type for c in logical.columns}
        table_id = self.schema.table_id(table_name)
        conventional, cold_chunks = self._base_split.get(
            base.lname, (list(base.columns), [])
        )
        fragments = [
            Fragment(
                table=self.base_physical(table_name),
                meta=(("tenant", tenant_id),),
                columns=tuple(
                    (c.lname, ColumnLoc(c.lname)) for c in conventional
                ),
                row_column=ROW,
            )
        ]
        for assignment in cold_chunks:
            fragments.append(
                self._chunk_fragment(tenant_id, table_id, assignment, types)
            )
        for extension in self.schema.extensions_of(tenant_id, table_name):
            for assignment in self._extension_chunks[extension.lname]:
                fragments.append(
                    self._chunk_fragment(tenant_id, table_id, assignment, types)
                )
        return fragments
