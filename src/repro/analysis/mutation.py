"""Seeded transformer/layout mutations for verifying the verifier.

Each mutation breaks the schema-mapping layer in a way that must not
survive the analysis gate: the CLI's ``--mutate`` flag applies one and
``--strict`` is then expected to exit non-zero.  The mutation tests use
these to prove the passes actually catch the bug classes they claim to.
"""

from __future__ import annotations

from typing import Any

from ..core.layouts.base import ColumnLoc, Fragment, TENANT_META


def drop_tenant_guard(layout: Any) -> None:
    """Strip the Tenant meta pair from every fragment the layout emits.

    Downstream, ``build_reconstruction`` and the DML transformer then
    emit physical statements without ``tenant = ...`` conjuncts — the
    exact cross-tenant leak the isolation verifier exists to catch.
    """
    original = layout.fragments

    def mutated(tenant_id: int, table_name: str) -> list[Fragment]:
        return [
            Fragment(
                table=f.table,
                meta=tuple(m for m in f.meta if m[0] != TENANT_META),
                columns=f.columns,
                row_column=f.row_column,
            )
            for f in original(tenant_id, table_name)
        ]

    layout.fragments = mutated


def drop_read_casts(layout: Any) -> None:
    """Strip read-side casts from fragment columns (breaks the
    Universal/generic type funnel; LAY003 territory)."""
    original = layout.fragments

    def mutated(tenant_id: int, table_name: str) -> list[Fragment]:
        return [
            Fragment(
                table=f.table,
                meta=f.meta,
                columns=tuple(
                    (name, ColumnLoc(loc.physical, cast=None, store=loc.store))
                    for name, loc in f.columns
                ),
                row_column=f.row_column,
            )
            for f in original(tenant_id, table_name)
        ]

    layout.fragments = mutated


#: CLI-facing mutation registry.
MUTATIONS = {
    "drop-tenant-guard": drop_tenant_guard,
    "drop-read-casts": drop_read_casts,
}


def apply_mutation(mtd: Any, name: str) -> None:
    mutate = MUTATIONS[name]
    for layout in mtd._all_layouts():
        mutate(layout)
    mtd._invalidate_statements()
