"""Differential testing: the engine vs. SQLite on the same statements.

SQLite serves as the reference implementation for the SQL subset's
semantics.  Hand-picked cases cover the constructs the transformation
layer relies on; a hypothesis-driven case generates random conjunctive
point/range queries over a shared dataset; and a seeded generator
(:func:`generate_query`) composes whole SELECTs — projections,
predicates, joins, GROUP BY — that must match SQLite row for row.
"""

import random
import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Database


def normalize(rows):
    """SQLite returns lists of tuples too; normalize value types:
    booleans come back as 0/1 from SQLite."""
    out = []
    for row in rows:
        out.append(
            tuple(int(v) if isinstance(v, bool) else v for v in row)
        )
    return sorted(out, key=repr)


@pytest.fixture(scope="module")
def pair():
    """Identically-populated engine and SQLite databases."""
    engine = Database()
    lite = sqlite3.connect(":memory:")
    ddl = [
        "CREATE TABLE p (id INTEGER NOT NULL, grp INTEGER, amount INTEGER, "
        "name VARCHAR(30))",
        "CREATE TABLE c (id INTEGER NOT NULL, parent INTEGER, val INTEGER, "
        "tag VARCHAR(10))",
    ]
    indexes = [
        "CREATE UNIQUE INDEX p_pk ON p (id)",
        "CREATE INDEX c_fk ON c (parent, id)",
    ]
    for sql in ddl:
        engine.execute(sql)
        lite.execute(sql.replace("VARCHAR(30)", "TEXT").replace("VARCHAR(10)", "TEXT"))
    for sql in indexes:
        engine.execute(sql)
        lite.execute(sql.replace(" ON c (parent, id)", " ON c (parent, id)"))
    rows_p, rows_c = [], []
    for i in range(1, 61):
        rows_p.append((i, i % 7, i * 13 % 101, f"name{i % 9}"))
        for j in range(3):
            rows_c.append((i * 10 + j, i, (i * j) % 17, f"t{j}"))
    for row in rows_p:
        engine.execute("INSERT INTO p VALUES (?, ?, ?, ?)", list(row))
        lite.execute("INSERT INTO p VALUES (?, ?, ?, ?)", row)
    for row in rows_c:
        engine.execute("INSERT INTO c VALUES (?, ?, ?, ?)", list(row))
        lite.execute("INSERT INTO c VALUES (?, ?, ?, ?)", row)
    return engine, lite


def compare(pair, sql, params=()):
    engine, lite = pair
    ours = engine.execute(sql, list(params)).rows
    theirs = lite.execute(sql, tuple(params)).fetchall()
    assert normalize(ours) == normalize(theirs), sql


CASES = [
    "SELECT id, name FROM p WHERE grp = 3",
    "SELECT p.id, c.val FROM p, c WHERE p.id = c.parent AND p.id = 17",
    "SELECT grp, COUNT(*), SUM(amount) FROM p GROUP BY grp",
    "SELECT grp, COUNT(*) AS n FROM p GROUP BY grp HAVING COUNT(*) > 8",
    "SELECT DISTINCT tag FROM c",
    "SELECT name FROM p WHERE amount BETWEEN 20 AND 40 ORDER BY name, id",
    "SELECT id FROM p WHERE name LIKE 'name1%' ORDER BY id",
    "SELECT id FROM p WHERE grp IN (1, 2) AND amount > 50 ORDER BY id",
    "SELECT p.grp, MAX(c.val) FROM p, c WHERE p.id = c.parent GROUP BY p.grp",
    "SELECT id FROM p WHERE id IN (SELECT parent FROM c WHERE val = 16)",
    "SELECT COUNT(*) FROM p WHERE grp = 99",
    "SELECT amount + grp FROM p WHERE id = 7",
    "SELECT id FROM p ORDER BY amount DESC, id LIMIT 5",
    "SELECT MIN(amount), MAX(amount), COUNT(DISTINCT grp) FROM p",
    "SELECT c.tag, AVG(c.val) FROM c GROUP BY c.tag ORDER BY c.tag",
    "SELECT p.name, c.tag FROM p, c WHERE p.id = c.parent AND c.val = 0 "
    "AND p.grp = 1 ORDER BY p.name, c.tag LIMIT 10",
    "SELECT grp, COUNT(*) FROM p GROUP BY grp ORDER BY COUNT(*) DESC, grp",
    "SELECT grp FROM p GROUP BY grp ORDER BY SUM(amount) DESC, grp",
    "SELECT id FROM p WHERE id > 40 AND id <= 45 ORDER BY id",
    "SELECT id FROM p WHERE amount >= 90 ORDER BY id",
]


class TestHandPickedCases:
    @pytest.mark.parametrize("sql", CASES)
    def test_same_answers(self, pair, sql):
        compare(pair, sql)

    @pytest.mark.parametrize(
        "sql,params",
        [
            ("SELECT name FROM p WHERE id = ?", [13]),
            ("SELECT id FROM p WHERE grp = ? AND amount < ?", [2, 60]),
            (
                "SELECT p.id, c.id FROM p, c WHERE p.id = c.parent "
                "AND c.val = ? ORDER BY p.id, c.id",
                [4],
            ),
        ],
    )
    def test_parameterized(self, pair, sql, params):
        compare(pair, sql, params)


class TestDmlAgreement:
    def test_update_then_select(self, pair):
        engine, lite = pair
        engine.execute("UPDATE p SET amount = amount + 5 WHERE grp = 4")
        lite.execute("UPDATE p SET amount = amount + 5 WHERE grp = 4")
        compare(pair, "SELECT id, amount FROM p WHERE grp = 4")

    def test_delete_then_count(self, pair):
        engine, lite = pair
        engine.execute("DELETE FROM c WHERE val = 16")
        lite.execute("DELETE FROM c WHERE val = 16")
        compare(pair, "SELECT COUNT(*) FROM c")


# -- seeded whole-query generator ---------------------------------------------

#: (column, is_numeric) pools per table alias.
_P_COLUMNS = [("id", True), ("grp", True), ("amount", True), ("name", False)]
_C_COLUMNS = [("id", True), ("parent", True), ("val", True), ("tag", False)]
_OPS = ["=", "<", ">", "<=", ">=", "<>"]
_AGGS = ["COUNT(*)", "SUM", "MIN", "MAX"]


def _predicate(rng: random.Random, alias: str, columns) -> str:
    column, numeric = rng.choice(columns)
    op = rng.choice(_OPS)
    if numeric:
        value = rng.randrange(-5, 120)
        return f"{alias}.{column} {op} {value}"
    pool = (
        [f"'name{i}'" for i in range(9)]
        if column == "name"
        else [f"'t{i}'" for i in range(3)]
    )
    return f"{alias}.{column} {op} {rng.choice(pool)}"


def generate_query(seed: int) -> str:
    """One deterministic random SELECT: single-table or join, optional
    GROUP BY with aggregates, 0-2 conjunctive predicates."""
    rng = random.Random(seed)
    join = rng.random() < 0.5
    grouped = rng.random() < 0.4

    if join:
        tables = "p, c"
        conjuncts = ["p.id = c.parent"]
        scope = [("p", c, n) for c, n in _P_COLUMNS] + [
            ("c", c, n) for c, n in _C_COLUMNS
        ]
    else:
        alias = rng.choice(["p", "c"])
        tables = alias
        conjuncts = []
        scope = [
            (alias, c, n)
            for c, n in (_P_COLUMNS if alias == "p" else _C_COLUMNS)
        ]
    for _ in range(rng.randrange(3)):
        alias = rng.choice(sorted({a for a, _, _ in scope}))
        columns = _P_COLUMNS if alias == "p" else _C_COLUMNS
        conjuncts.append(_predicate(rng, alias, columns))

    if grouped:
        g_alias, g_column, _ = rng.choice(scope)
        group_expr = f"{g_alias}.{g_column}"
        numeric = [
            f"{a}.{c}" for a, c, n in scope if n and f"{a}.{c}" != group_expr
        ]
        selects = [group_expr]
        for _ in range(rng.randrange(1, 3)):
            agg = rng.choice(_AGGS)
            selects.append(
                "COUNT(*)" if agg == "COUNT(*)" else f"{agg}({rng.choice(numeric)})"
            )
        tail = f" GROUP BY {group_expr}"
    else:
        count = rng.randrange(1, min(4, len(scope)) + 1)
        selects = [f"{a}.{c}" for a, c, _ in rng.sample(scope, count)]
        tail = ""

    where = f" WHERE {' AND '.join(conjuncts)}" if conjuncts else ""
    return f"SELECT {', '.join(selects)} FROM {tables}{where}{tail}"


class TestGeneratedQueries:
    """Row-for-row agreement on generator output.  The seeds are fixed,
    so the suite always runs the same 45 queries."""

    @pytest.mark.parametrize("seed", range(45))
    def test_generated_query_matches_sqlite(self, pair, seed):
        compare(pair, generate_query(seed))

    def test_generator_is_deterministic(self):
        assert [generate_query(s) for s in range(10)] == [
            generate_query(s) for s in range(10)
        ]

    def test_generator_covers_shapes(self):
        queries = [generate_query(s) for s in range(45)]
        assert any("GROUP BY" in q for q in queries)
        assert any("p, c" in q for q in queries)
        assert any("WHERE" in q and "GROUP BY" not in q for q in queries)


def run_both_engines(engine, sql, params=()):
    """Trace one statement under the tuple and vectorized executors;
    returns ``(tuple_trace, vectorized_trace)`` with the engine restored
    to its default mode."""
    traces = {}
    try:
        for mode in ("tuple", "vectorized"):
            engine.execution = mode
            traces[mode] = engine.trace(sql, list(params), analyze=False)
    finally:
        engine.execution = "vectorized"
    return traces["tuple"], traces["vectorized"]


class TestCrossEngine:
    """The vectorized executor against the tuple-at-a-time reference:
    identical rows (in identical order — both engines are
    order-preserving), identical ExecStats row counters, identical
    buffer-pool logical reads.  Under LIMIT only the rows must agree:
    the batched engine may scan up to one batch past the cutoff."""

    @pytest.mark.parametrize("seed", range(45))
    def test_generated_query_same_rows_and_stats(self, pair, seed):
        engine, _ = pair
        sql = generate_query(seed)
        t, v = run_both_engines(engine, sql)
        assert t.rows == v.rows, sql
        assert t.exec.row_counters() == v.exec.row_counters(), sql
        assert t.pool.logical_total == v.pool.logical_total, sql

    @pytest.mark.parametrize("sql", CASES)
    def test_hand_picked_same_rows(self, pair, sql):
        engine, _ = pair
        t, v = run_both_engines(engine, sql)
        assert t.rows == v.rows, sql
        if "LIMIT" not in sql:
            assert t.exec.row_counters() == v.exec.row_counters(), sql
            assert t.pool.logical_total == v.pool.logical_total, sql

    def test_only_vectorized_counts_batches(self, pair):
        engine, _ = pair
        t, v = run_both_engines(engine, "SELECT grp, COUNT(*) FROM p GROUP BY grp")
        assert t.exec.batches == 0
        assert v.exec.batches > 0


class TestRandomizedQueries:
    @settings(max_examples=60, deadline=None)
    @given(
        column=st.sampled_from(["id", "grp", "amount"]),
        op=st.sampled_from(["=", "<", ">", "<=", ">=", "<>"]),
        value=st.integers(-5, 110),
        order=st.sampled_from(["id", "amount", "name"]),
        limit=st.integers(1, 30),
    )
    def test_single_table_predicates(self, pair, column, op, value, order, limit):
        sql = (
            f"SELECT id, {column} FROM p WHERE {column} {op} ? "
            f"ORDER BY {order}, id LIMIT {limit}"
        )
        engine, lite = pair
        ours = engine.execute(sql, [value]).rows
        theirs = lite.execute(sql, (value,)).fetchall()
        # LIMIT with ties is nondeterministic across engines, so compare
        # without LIMIT when the cutoff could differ.
        if len(ours) < limit and len(theirs) < limit:
            assert normalize(ours) == normalize(theirs)
        else:
            base = sql.rsplit(" LIMIT", 1)[0]
            assert normalize(engine.execute(base, [value]).rows) == normalize(
                lite.execute(base, (value,)).fetchall()
            )

    @settings(max_examples=40, deadline=None)
    @given(
        grp=st.integers(0, 8),
        threshold=st.integers(0, 20),
    )
    def test_join_aggregates(self, pair, grp, threshold):
        sql = (
            "SELECT p.id, COUNT(*), SUM(c.val) FROM p, c "
            "WHERE p.id = c.parent AND p.grp = ? AND c.val >= ? "
            "GROUP BY p.id"
        )
        compare(pair, sql, [grp, threshold])
