"""Lightweight lock accounting for contention modelling.

The paper attributes two effects in Experiment 1 to locking (Section 5):
heavyweight selects doing partial scans "with some locking" interfere
with each other, and concurrent inserts wait on page locks.  The testbed
runs sessions cooperatively (one at a time), so instead of real blocking
we *account* conflicts: a session acquiring a resource already held by
another session records a conflict, and the testbed's cost model charges
a wait penalty per conflict.

Resources are arbitrary hashable keys — the testbed uses
``("page", page_id)`` for insert targets and ``("table", name)`` for
scan locks.

With a sanitizer attached (``Database(sanitize=True)``), every
acquisition and release is additionally reported to the lockset race
detector, which treats "the last session to acquire" as the session the
engine is currently executing for (execution is cooperative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis.sanitizers import Sanitizer


@dataclass
class LockStats:
    """Monotonic lock counters.  ``waits`` counts conflict events that
    were charged a wait; ``wait_ms`` accumulates the simulated wait
    durations (Experiment 1's contention penalties).  ``upgrades``
    counts shared→exclusive conversions by a session already holding
    the resource — those are mode changes, not fresh holds, and
    deadlock-prone in real lock managers, so they are ledgered apart."""

    acquisitions: int = 0
    conflicts: int = 0
    waits: int = 0
    wait_ms: float = 0.0
    upgrades: int = 0

    def snapshot(self) -> "LockStats":
        return LockStats(**vars(self))

    def delta(self, earlier: "LockStats") -> "LockStats":
        return LockStats(
            **{k: getattr(self, k) - getattr(earlier, k) for k in vars(self)}
        )


class LockTable:
    """Conflict-accounting lock table (non-blocking)."""

    def __init__(self, *, metrics=None) -> None:
        self._holders: dict[object, dict[int, bool]] = {}
        self.stats = LockStats()
        self._metrics = metrics
        #: Optional dynamic sanitizer (lockset race detection).
        self.sanitizer: "Sanitizer" | None = None

    def acquire(self, session_id: int, resource: object, *, exclusive: bool) -> int:
        """Record an acquisition; returns the number of conflicting holders.

        Re-entrant acquires are idempotent holds: a session already
        holding the resource keeps one entry, with the mode sticky at
        the strongest requested so far (a shared→exclusive *upgrade* is
        counted separately under ``stats.upgrades``; a downgrade
        request leaves the exclusive hold in place)."""
        holders = self._holders.setdefault(resource, {})
        conflicts = 0
        for other, other_exclusive in holders.items():
            if other == session_id:
                continue
            if exclusive or other_exclusive:
                conflicts += 1
        previous = holders.get(session_id)
        holders[session_id] = exclusive or bool(previous)
        self.stats.acquisitions += 1
        if previous is False and exclusive:
            self.stats.upgrades += 1
            if self._metrics is not None:
                self._metrics.counter("locks.upgrades").inc()
        self.stats.conflicts += conflicts
        if self._metrics is not None:
            self._metrics.counter("locks.acquisitions").inc()
            if conflicts:
                self._metrics.counter("locks.conflicts").inc(conflicts)
        if self.sanitizer is not None:
            self.sanitizer.on_lock_acquire(session_id, resource, exclusive)
        return conflicts

    def record_wait(self, waits: int, wait_ms: float) -> None:
        """Charge ``waits`` conflict events totalling ``wait_ms`` of
        simulated wait time (the testbed's cost model computes the
        durations; the engine owns the ledger)."""
        if waits < 0 or wait_ms < 0:
            raise ValueError("lock waits cannot be negative")
        if waits == 0:
            return
        self.stats.waits += waits
        self.stats.wait_ms += wait_ms
        if self._metrics is not None:
            self._metrics.counter("locks.waits").inc(waits)
            self._metrics.counter("locks.wait_ms").inc(wait_ms)
            self._metrics.histogram("locks.wait_duration_ms").observe(
                wait_ms / waits
            )

    def release(self, session_id: int, resource: object) -> bool:
        """Release one resource held by one session; returns whether the
        session actually held it.  Emptied resource entries are removed
        so ``_holders`` never retains dead keys."""
        holders = self._holders.get(resource)
        if holders is None:
            return False
        held = holders.pop(session_id, None)
        if not holders:
            del self._holders[resource]
        return held is not None

    def release_session(self, session_id: int) -> None:
        """Release everything a session holds (end of its action).
        Emptied resource entries are dropped — a long-lived lock table
        must not accumulate dead resource keys."""
        for resource in list(self._holders):
            holders = self._holders[resource]
            holders.pop(session_id, None)
            if not holders:
                del self._holders[resource]
        if self.sanitizer is not None:
            self.sanitizer.on_lock_release(session_id)

    def held_by(self, session_id: int) -> int:
        """Number of distinct resources the session holds.  Re-entrant
        acquires of one resource count once (one hold per resource)."""
        return sum(1 for h in self._holders.values() if session_id in h)

    def resources_held(self, session_id: int) -> list[object]:
        """The resources a session currently holds (lockset order is
        insertion order of first acquisition)."""
        return [
            resource
            for resource, holders in self._holders.items()
            if session_id in holders
        ]
