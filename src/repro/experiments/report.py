"""Plain-text rendering of experiment results in the paper's shapes."""

from __future__ import annotations

from typing import Sequence


def render_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """A fixed-width table like Table 2."""
    columns = [list(map(str, col)) for col in zip(header, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = [title, ""]
    lines.append(
        "  ".join(str(h).rjust(w) for h, w in zip(header, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_metrics(registry, prefixes: Sequence[str] = (), title: str = "Metrics") -> str:
    """Dump a :class:`~repro.engine.observability.MetricsRegistry` as a
    titled plain-text block, optionally restricted to name prefixes."""
    lines = [title, ""]
    if prefixes:
        for prefix in prefixes:
            block = registry.render(prefix)
            if block:
                lines.append(block)
    else:
        lines.append(registry.render())
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    series: dict[str, list[tuple[object, object]]],
) -> str:
    """Figure data as labelled (x, y) columns — one column per line in
    the paper's plot."""
    lines = [title, ""]

    def x_key(x):
        return (0, x, "") if isinstance(x, (int, float)) else (1, 0, str(x))

    xs = sorted(
        {x for points in series.values() for x, _ in points}, key=x_key
    )
    header = [x_label] + list(series)
    widths = [max(len(str(h)), 12) for h in header]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    lookup = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    for x in xs:
        row = [x] + [lookup[name].get(x, "") for name in series]
        lines.append(
            "  ".join(
                (f"{cell:.2f}" if isinstance(cell, float) else str(cell)).rjust(w)
                for cell, w in zip(row, widths)
            )
        )
    return "\n".join(lines)
