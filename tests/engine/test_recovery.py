"""Durability subsystem: WAL replay, checkpoints, fault injection.

Deterministic cases first (reopen, losers, rollback replay, fuzzy
checkpoints, DDL, torn page writes, short fsyncs, group commit, the
seeded skip-wal-flush mutation), then the crashpoint × layout property
test: kill the engine at every named crashpoint of a multi-tenant
workload, recover, and check that completed operations survived and the
in-flight operation vanished without a trace — for all seven layouts.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    Extension,
    LogicalColumn,
    LogicalTable,
    MultiTenantDatabase,
)
from repro.engine.database import Database
from repro.engine.durability import (
    DurabilityOptions,
    FaultInjector,
    SimulatedCrash,
)
from repro.engine.values import INTEGER, varchar


def build(path, **options) -> Database:
    return Database(path=str(path), durability=DurabilityOptions(**options))


def seed_rows(db: Database, count: int = 8) -> None:
    db.execute("CREATE TABLE t (id INTEGER NOT NULL, name VARCHAR(30))")
    db.execute("CREATE INDEX t_id ON t (id)")
    for i in range(count):
        db.execute("INSERT INTO t VALUES (?, ?)", [i, f"name{i}"])


def ids(db: Database) -> list[int]:
    return [r[0] for r in db.execute("SELECT id FROM t ORDER BY id").rows]


class TestReopen:
    def test_clean_close_preserves_all_dml(self, tmp_path):
        db = build(tmp_path)
        seed_rows(db)
        db.execute("UPDATE t SET name = 'renamed' WHERE id = 2")
        db.execute("DELETE FROM t WHERE id = 3")
        db.close()
        db2 = build(tmp_path)
        assert ids(db2) == [0, 1, 2, 4, 5, 6, 7]
        assert db2.execute("SELECT name FROM t WHERE id = 2").scalar() == "renamed"
        db2.close()

    def test_crash_without_close_preserves_committed_data(self, tmp_path):
        db = build(tmp_path)
        seed_rows(db)
        del db  # no close(), no checkpoint: recovery runs from the WAL
        db2 = build(tmp_path)
        assert ids(db2) == list(range(8))
        assert db2.durability.recovery_info["records_replayed"] > 0
        db2.close()

    def test_uncommitted_transaction_absent_after_crash(self, tmp_path):
        db = build(tmp_path)
        seed_rows(db)
        db.transactions.begin()
        db.execute("INSERT INTO t VALUES (100, 'phantom')")
        db.execute("UPDATE t SET name = 'phantom' WHERE id = 1")
        # Force the uncommitted records to disk so recovery actually
        # sees (and must discard) the loser transaction.
        db.durability.wal.flush()
        del db
        db2 = build(tmp_path)
        assert ids(db2) == list(range(8))
        assert db2.execute("SELECT name FROM t WHERE id = 1").scalar() == "name1"
        assert db2.durability.recovery_info["losers"] == 1
        db2.close()

    def test_rolled_back_transaction_stays_rolled_back(self, tmp_path):
        """Forward records + the rollback terminal replay to nothing."""
        db = build(tmp_path)
        seed_rows(db)
        db.transactions.begin()
        db.execute("INSERT INTO t VALUES (100, 'undone')")
        db.execute("DELETE FROM t WHERE id = 0")
        db.transactions.rollback()
        db.execute("INSERT INTO t VALUES (8, 'name8')")  # after the rollback
        del db
        db2 = build(tmp_path)
        assert ids(db2) == list(range(9))
        db2.close()

    def test_recovery_metrics_published(self, tmp_path):
        db = build(tmp_path)
        seed_rows(db)
        del db
        db2 = build(tmp_path)
        assert db2.metrics.value("db.recovery.records_replayed") > 0
        assert db2.metrics.value("db.recovery.ms") >= 0
        db2.close()


class TestCheckpoint:
    def test_checkpoint_bounds_replay(self, tmp_path):
        db = build(tmp_path)
        seed_rows(db)
        assert db.checkpoint()
        db.execute("INSERT INTO t VALUES (8, 'name8')")
        del db
        db2 = build(tmp_path)
        info = db2.durability.recovery_info
        assert info["checkpoint_restored"]
        assert info["records_scanned"] <= 4  # one insert + its terminal
        assert ids(db2) == list(range(9))
        db2.close()

    def test_fuzzy_checkpoint_mid_transaction(self, tmp_path):
        """A checkpoint inside an open transaction snapshots the undo
        log; if the transaction never commits, recovery undoes the
        pre-checkpoint half and discards the post-checkpoint half."""
        db = build(tmp_path)
        seed_rows(db)
        db.transactions.begin()
        db.execute("INSERT INTO t VALUES (100, 'pre-checkpoint')")
        assert db.checkpoint()
        db.execute("INSERT INTO t VALUES (101, 'post-checkpoint')")
        db.durability.wal.flush()
        del db
        db2 = build(tmp_path)
        assert ids(db2) == list(range(8))
        db2.close()

    def test_fuzzy_checkpoint_committed_transaction_survives(self, tmp_path):
        db = build(tmp_path)
        seed_rows(db)
        db.transactions.begin()
        db.execute("INSERT INTO t VALUES (100, 'spans-checkpoint')")
        assert db.checkpoint()
        db.execute("INSERT INTO t VALUES (101, 'post')")
        db.transactions.commit()
        del db
        db2 = build(tmp_path)
        assert ids(db2) == list(range(8)) + [100, 101]
        db2.close()

    def test_checkpoint_snapshot_does_not_retrigger(self, tmp_path):
        """The checkpoint head must not count toward the auto-checkpoint
        trigger: a snapshot larger than the trigger would otherwise
        force a checkpoint after every statement (quadratic log I/O)."""
        db = build(tmp_path, auto_checkpoint_bytes=512)
        seed_rows(db, 40)  # snapshot is now well over the trigger
        assert db.checkpoint()
        assert db.durability.wal.bytes_since_checkpoint == 0
        before = db.metrics.value("db.checkpoint.count")
        db.execute("INSERT INTO t VALUES (100, 'one')")
        db.execute("INSERT INTO t VALUES (101, 'two')")
        assert db.metrics.value("db.checkpoint.count") - before <= 1
        db.close()

    def test_ddl_survives_crash(self, tmp_path):
        db = build(tmp_path)
        seed_rows(db)
        assert db.checkpoint()
        db.execute("CREATE TABLE u (k INTEGER, v VARCHAR(10))")
        db.execute("CREATE INDEX u_k ON u (k)")
        db.execute("INSERT INTO u VALUES (1, 'a')")
        db.execute("DROP INDEX t_id ON t")
        del db
        db2 = build(tmp_path)
        assert db2.execute("SELECT v FROM u WHERE k = 1").scalar() == "a"
        assert not db2.catalog.table("t").indexes
        assert db2.catalog.table("u").indexes
        db2.close()


class TestFaults:
    def test_torn_page_write_recovers_committed_data(self, tmp_path):
        db = build(tmp_path)
        seed_rows(db)
        db.durability.faults.torn_page_write = 1  # tear the next frame
        with pytest.raises(SimulatedCrash):
            db.checkpoint()
        del db
        db2 = build(tmp_path)
        assert ids(db2) == list(range(8))
        db2.close()

    def test_short_fsync_keeps_committed_prefix(self, tmp_path):
        db = build(tmp_path)
        db.execute("CREATE TABLE t (id INTEGER NOT NULL, name VARCHAR(30))")
        db.durability.faults.short_fsync = 6
        written = []
        with pytest.raises(SimulatedCrash):
            for i in range(10):
                db.execute("INSERT INTO t VALUES (?, ?)", [i, f"name{i}"])
                written.append(i)
        assert len(written) < 10
        del db
        db2 = build(tmp_path)
        recovered = ids(db2)
        # The torn flush loses (at most) its own batch, never an
        # earlier one: recovery keeps a strict prefix of the commits.
        assert recovered == list(range(len(recovered)))
        assert len(recovered) >= len(written) - 1
        db2.close()

    def test_crash_at_named_crashpoint(self, tmp_path):
        db = build(tmp_path, faults=FaultInjector(crash_at=("txn.commit", 4)))
        db.execute("CREATE TABLE t (id INTEGER NOT NULL, name VARCHAR(30))")
        survived = []
        with pytest.raises(SimulatedCrash):
            for i in range(10):
                db.execute("INSERT INTO t VALUES (?, ?)", [i, f"name{i}"])
                survived.append(i)
        assert survived  # the crash hit mid-run, not on the first insert
        del db
        # The crashing statement died before its commit became durable;
        # everything that returned successfully must still be there.
        db2 = build(tmp_path)
        assert ids(db2) == survived
        db2.close()


class TestWalMetrics:
    def test_group_commit_batches_fsyncs(self, tmp_path):
        eager = build(tmp_path / "eager", group_commit=1)
        seed_rows(eager, 16)
        eager_fsyncs = eager.metrics.value("db.wal.fsyncs")
        eager.close()
        batched = build(tmp_path / "batched", group_commit=8)
        seed_rows(batched, 16)
        batched_fsyncs = batched.metrics.value("db.wal.fsyncs")
        batched.close()
        assert batched_fsyncs < eager_fsyncs / 2
        assert batched.metrics.histogram("db.wal.group_commit_batch").max >= 8
        db2 = build(tmp_path / "batched")
        assert ids(db2) == list(range(16))
        db2.close()

    def test_wal_counters_and_trace_deltas(self, tmp_path):
        db = build(tmp_path)
        db.execute("CREATE TABLE t (id INTEGER NOT NULL, name VARCHAR(30))")
        before_records = db.wal_stats.records  # wal_stats is live
        trace = db.trace("INSERT INTO t VALUES (1, 'traced')")
        assert trace.wal.records >= 2  # redo record + commit terminal
        assert trace.wal.bytes_written > 0
        assert db.wal_stats.records > before_records
        assert db.metrics.value("db.wal.bytes_written") > 0
        assert db.metrics.value("db.wal.records") >= 2
        db.close()

    def test_memory_mode_traces_report_zero_wal(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER)")
        trace = db.trace("INSERT INTO t VALUES (1)")
        assert trace.wal.records == 0
        assert trace.wal.bytes_written == 0

    def test_skip_wal_flush_mutation_defeats_durability(self, tmp_path):
        """The seeded mutation claims records durable without writing
        them; the durability check MUST then fail — proving the tests
        actually depend on the WAL doing its job."""
        db = build(tmp_path, mutate="skip-wal-flush")
        seed_rows(db)
        del db
        db2 = build(tmp_path)
        try:
            recovered = ids(db2)
        except Exception:
            recovered = None  # the table itself did not survive
        assert recovered != list(range(8))  # data loss: the check trips
        db2.close()


# ---------------------------------------------------------------------------
# Crashpoint × layout property test
# ---------------------------------------------------------------------------

#: The seven layouts, plus one storage-override variant: chunk, pivot,
#: universal and chunk_folding already recover *columnar* tables (their
#: shared tables default to column pages), and ``private+columnar``
#: forces column pages onto a layout whose default is the row-major
#: heap — so both storage formats cross every crashpoint either way.
ALL_LAYOUTS = (
    "private",
    "private+columnar",
    "basic",
    "extension",
    "universal",
    "pivot",
    "chunk",
    "chunk_folding",
)


def _account_table() -> LogicalTable:
    return LogicalTable(
        "account",
        (
            LogicalColumn("aid", INTEGER, indexed=True, not_null=True),
            LogicalColumn("name", varchar(30)),
        ),
    )


def _healthcare() -> Extension:
    return Extension(
        "healthcare",
        "account",
        (LogicalColumn("beds", INTEGER),),
    )


def _workload(layout: str):
    """(description, apply, expected-state mutator) triples.

    The expected state maps tenant -> {aid: name} and is only advanced
    when an operation COMPLETES: after a crash, the recovered database
    must match it — give or take the single in-flight operation, which
    may have finished internally before its crashpoint fired.
    """
    extensions = layout != "basic"
    steps = []

    def op(description, apply, mutate):
        steps.append((description, apply, mutate))

    for i in range(3):
        op(
            f"insert t1 a{i}",
            lambda m, i=i: m.insert(1, "account", {"aid": i, "name": f"a{i}"}),
            lambda s, i=i: s[1].__setitem__(i, f"a{i}"),
        )
    for i in range(2):
        op(
            f"insert t2 b{i}",
            lambda m, i=i: m.insert(2, "account", {"aid": i, "name": f"b{i}"}),
            lambda s, i=i: s[2].__setitem__(i, f"b{i}"),
        )
    op(
        "update t1 a1",
        lambda m: m.execute(1, "UPDATE account SET name = 'a1x' WHERE aid = 1"),
        lambda s: s[1].__setitem__(1, "a1x"),
    )
    op(
        "delete t2 b0",
        lambda m: m.execute(2, "DELETE FROM account WHERE aid = 0"),
        lambda s: s[2].pop(0),
    )
    if extensions:
        op(
            "grant healthcare to t2",
            lambda m: m.grant_extension(2, "healthcare"),
            lambda s: None,
        )
        op(
            "insert t2 extended",
            lambda m: m.insert(2, "account", {"aid": 9, "name": "b9", "beds": 12}),
            lambda s: s[2].__setitem__(9, "b9"),
        )
    op(
        "migrate t1",
        lambda m: m.migrate_tenant(
            1, "universal" if layout != "universal" else "extension"
        ),
        lambda s: None,
    )
    op(
        "drop t2",
        lambda m: m.drop_tenant(2),
        lambda s: s.pop(2),
    )
    return steps


def _build_mtd(db: Database, layout: str) -> MultiTenantDatabase:
    layout, _, storage = layout.partition("+")
    options: dict = {"width": 3} if layout in ("chunk", "chunk_folding") else {}
    if storage:
        options["storage"] = storage
    mtd = MultiTenantDatabase(layout=layout, db=db, **options)
    mtd.define_table(_account_table())
    if layout != "basic":
        mtd.define_extension(_healthcare())
    mtd.create_tenant(1)
    mtd.create_tenant(2)
    return mtd


def _verify(mtd: MultiTenantDatabase, expected: dict) -> None:
    live = {c.tenant_id for c in mtd.schema.tenants()}
    assert live == set(expected)
    for tenant_id, rows in expected.items():
        got = dict(mtd.execute(tenant_id, "SELECT aid, name FROM account").rows)
        assert got == rows, f"tenant {tenant_id}: {got} != {rows}"


def _crashpoint_schedule(tmp_path, layout: str, rng: random.Random) -> list[int]:
    """Enumerate the crashpoint hits of the full workload (an unarmed
    injector only counts) and pick the first hit of every distinct
    crashpoint name, the final hit, and a few seeded extras — covering
    every crashpoint kind without running the full O(hits) matrix."""
    faults = FaultInjector()
    sequence: list[str] = []
    original = faults.crashpoint
    faults.crashpoint = lambda name: (sequence.append(name), original(name))[1]
    db = Database(
        path=str(tmp_path / "enumerate"),
        durability=DurabilityOptions(faults=faults),
    )
    mtd = _build_mtd(db, layout)
    baseline = len(sequence)
    for _description, apply, _mutate in _workload(layout):
        apply(mtd)
    total = len(sequence) - baseline  # before close(): the armed runs
    db.close()  # never reach close-time crashpoints
    first_of: dict[str, int] = {}
    for index, name in enumerate(sequence[baseline : baseline + total], start=1):
        first_of.setdefault(name, index)
    hits = set(first_of.values()) | {total}
    extra = [h for h in range(1, total + 1) if h not in hits]
    hits |= set(rng.sample(extra, min(3, len(extra))))
    return sorted(hits)


@pytest.mark.parametrize("layout", ALL_LAYOUTS)
def test_crashpoint_matrix(tmp_path, layout, replay_rng):
    schedule = _crashpoint_schedule(tmp_path, layout, replay_rng)
    assert schedule, "the workload must cross crashpoints"
    for hit in schedule:
        path = tmp_path / f"crash-{hit}"
        faults = FaultInjector()
        db = Database(path=str(path), durability=DurabilityOptions(faults=faults))
        mtd = _build_mtd(db, layout)
        expected: dict = {1: {}, 2: {}}
        states = [{t: dict(rows) for t, rows in expected.items()}]
        faults.crash_after = faults.hits + hit  # arm past the setup
        crashed = False
        for _description, apply, mutate in _workload(layout):
            try:
                apply(mtd)
            except SimulatedCrash:
                crashed = True
                break
            mutate(expected)
            states.append({t: dict(rows) for t, rows in expected.items()})
        if not crashed:
            db.close()
        db2 = Database(path=str(path))
        mtd2 = MultiTenantDatabase.recover(db2)
        try:
            _verify(mtd2, states[-1])
        except AssertionError:
            if not crashed:
                raise
            # Crashpoints normally fire before the durability-
            # establishing action, but auto-checkpoint points fire
            # after the statement completed — then the in-flight
            # operation IS durable and the next state is the legal one.
            follow_up = _workload(layout)[len(states) - 1][2]
            follow_up(expected)
            _verify(mtd2, expected)
        db2.close()
