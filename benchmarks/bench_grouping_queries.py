"""Section 6.2, "Additional Tests" — grouping queries over chunks.

"Queries on the narrowest chunks could be as much as an order of
magnitude slower than queries on the conventional tables, with queries
on the wider chunks filling the range in between."
"""

import pytest

from conftest import chunk_labels
from repro.experiments.report import render_table


@pytest.fixture(scope="module")
def grouping_times(pool):
    times = {"conventional": pool.experiment("conventional").measure_grouping()}
    for label in chunk_labels():
        times[label] = pool.experiment(label).measure_grouping()
    return times


class TestGroupingQueries:
    def test_report(self, benchmark, grouping_times, report):
        conventional = grouping_times["conventional"]
        rows = [
            (label, round(ms, 2), round(ms / conventional, 1))
            for label, ms in grouping_times.items()
        ]
        benchmark.pedantic(lambda: None, rounds=1)
        report(
            "grouping_queries",
            render_table(
                "Additional Tests: grouping query, simulated ms by layout",
                ["layout", "sim ms", "x conventional"],
                rows,
            ),
        )

    def test_narrowest_chunks_much_slower(self, grouping_times):
        ratio = grouping_times["chunk3"] / grouping_times["conventional"]
        assert ratio > 4.0  # paper: "as much as an order of magnitude"

    def test_wider_chunks_fill_the_range(self, grouping_times):
        assert (
            grouping_times["chunk90"]
            < grouping_times["chunk15"]
            <= grouping_times["chunk3"]
        )

    def test_all_layouts_agree(self, pool):
        from repro.experiments.chunkqueries import (
            TENANT,
            ChunkQueryExperiment,
        )

        sql = ChunkQueryExperiment.grouping_sql()

        reference = None
        for label in ("conventional", "chunk3", "chunk90"):
            rows = pool.experiment(label).mtd.execute(TENANT, sql).rows
            grouped = sorted(rows)
            if reference is None:
                reference = grouped
            else:
                assert grouped == reference

    def test_benchmark_grouping_wallclock(self, benchmark, pool):
        exp = pool.experiment("chunk15")

        def run():
            return exp.measure_grouping(repetitions=1)

        ms = benchmark(run)
        assert ms > 0
