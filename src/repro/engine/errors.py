"""Exception hierarchy for the relational engine.

The engine is used both directly (tests, benchmarks) and through the
multi-tenant schema-mapping layer in :mod:`repro.core`.  Errors are split
into *user* errors (bad SQL, constraint violations) and *engine* errors
(internal invariants).  Everything derives from :class:`EngineError` so a
caller can catch a single type at the boundary.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for every error raised by the engine."""


class ParseError(EngineError):
    """The SQL text could not be tokenized or parsed.

    Carries the position to make query-transformation bugs in the layers
    above easy to localize.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class CatalogError(EngineError):
    """A referenced table, column, or index does not exist (or already does)."""


class DuplicateObjectError(CatalogError):
    """CREATE of a table or index whose name is already taken."""


class UnknownObjectError(CatalogError):
    """Reference to a table, column, or index that is not in the catalog."""


class TypeMismatchError(EngineError):
    """A value or expression does not fit the declared column type."""


class SemanticError(EngineError):
    """Static semantic analysis rejected a statement before planning.

    Raised by ``Database.prepare`` / ``prepare_ast`` so bad statements
    surface with a rule id instead of failing later (and never enter the
    plan cache).  ``findings`` holds the offending
    :class:`repro.analysis.findings.Finding` objects.
    """

    def __init__(self, findings) -> None:
        self.findings = list(findings)
        rules = ", ".join(sorted({f.rule_id for f in self.findings}))
        detail = "; ".join(f.message for f in self.findings[:3])
        super().__init__(f"semantic analysis failed [{rules}]: {detail}")


class ConstraintError(EngineError):
    """A uniqueness or not-null constraint was violated."""


class NotNullViolation(ConstraintError):
    """NULL assigned to a NOT NULL column."""


class UniqueViolation(ConstraintError):
    """Duplicate key in a unique index."""


class PlanError(EngineError):
    """The optimizer could not produce a plan (internal inconsistency)."""


class ExecutionError(EngineError):
    """Runtime failure while executing a plan."""


class LockTimeoutError(EngineError):
    """A lock could not be acquired within the configured budget."""


class DeadlockError(LockTimeoutError):
    """Two sessions wait on each other; the victim receives this error."""


class BudgetExceededError(EngineError):
    """The meta-data memory budget would be exceeded by a DDL operation.

    The budget models the fixed per-table memory documented for DB2 V9.1
    in the paper (4 KB per table).  The engine never raises this by
    default — the budget is advisory unless ``enforce_budget`` is set on
    the database — but the counter is always maintained so experiments
    can report it.
    """
