"""Tests for pages, the LRU buffer pool, and its counters."""

import pytest

from repro.engine.errors import EngineError
from repro.engine.pager import PAGE_HEADER, BufferPool, PageKind


def make_pool(capacity=4):
    return BufferPool(capacity_pages=capacity, page_size=8192)


class TestAllocation:
    def test_allocate_assigns_increasing_ids(self):
        pool = make_pool()
        a = pool.allocate(1, PageKind.DATA)
        b = pool.allocate(1, PageKind.DATA)
        assert b.page_id > a.page_id

    def test_capacity_excludes_header(self):
        pool = make_pool()
        page = pool.allocate(1, PageKind.DATA)
        assert page.capacity == 8192 - PAGE_HEADER

    def test_allocation_counts_as_write(self):
        pool = make_pool()
        pool.allocate(1, PageKind.DATA)
        assert pool.stats.writes == 1

    def test_pool_requires_a_frame(self):
        with pytest.raises(EngineError):
            BufferPool(capacity_pages=0)


class TestReadCounters:
    def test_resident_read_is_logical_only(self):
        pool = make_pool()
        page = pool.allocate(1, PageKind.DATA)
        pool.read(page.page_id)
        assert pool.stats.logical_data == 1
        assert pool.stats.physical_data == 0

    def test_miss_counts_physical(self):
        pool = make_pool(capacity=1)
        a = pool.allocate(1, PageKind.DATA)
        pool.allocate(1, PageKind.DATA)  # evicts a
        pool.read(a.page_id)
        assert pool.stats.physical_data == 1

    def test_index_and_data_counted_separately(self):
        pool = make_pool()
        d = pool.allocate(1, PageKind.DATA)
        i = pool.allocate(2, PageKind.INDEX)
        pool.read(d.page_id)
        pool.read(i.page_id)
        assert pool.stats.logical_data == 1
        assert pool.stats.logical_index == 1

    def test_read_unknown_page_raises(self):
        pool = make_pool()
        with pytest.raises(EngineError):
            pool.read(999)


class TestEviction:
    def test_lru_evicts_least_recent(self):
        pool = make_pool(capacity=2)
        a = pool.allocate(1, PageKind.DATA)
        b = pool.allocate(1, PageKind.DATA)
        pool.read(a.page_id)  # a is now most recent
        pool.allocate(1, PageKind.DATA)  # must evict b
        pool.read(a.page_id)
        assert pool.stats.physical_data == 0
        pool.read(b.page_id)
        assert pool.stats.physical_data == 1

    def test_pinned_pages_survive_eviction(self):
        pool = make_pool(capacity=2)
        a = pool.allocate(1, PageKind.DATA)
        pool.read(a.page_id, pin=True)
        pool.allocate(1, PageKind.DATA)
        pool.allocate(1, PageKind.DATA)
        pool.read(a.page_id)
        assert pool.stats.physical_data == 0
        pool.unpin(a.page_id)

    def test_flush_empties_pool(self):
        pool = make_pool()
        a = pool.allocate(1, PageKind.DATA)
        pool.flush()
        assert pool.resident_pages == 0
        pool.read(a.page_id)
        assert pool.stats.physical_data == 1

    def test_resize_shrinks_pool(self):
        pool = make_pool(capacity=4)
        pages = [pool.allocate(1, PageKind.DATA) for _ in range(4)]
        pool.resize(1)
        assert pool.resident_pages == 1
        # Only the most recently used page stays.
        pool.read(pages[-1].page_id)
        assert pool.stats.physical_data == 0


class TestResizeAccounting:
    """Regression: frame drops forced by resize() must not pollute the
    workload's eviction counter, so deltas taken across a resize (the
    Experiment 1 DDL path) stay attributable to the workload."""

    def test_resize_drops_count_separately(self):
        pool = make_pool(capacity=4)
        for _ in range(4):
            pool.allocate(1, PageKind.DATA)
        before = pool.stats.snapshot()
        pool.resize(1)
        delta = pool.stats.delta(before)
        assert delta.evictions == 0
        assert delta.resize_evictions == 3
        # Every PoolStats counter stays non-negative across the resize.
        assert all(value >= 0 for value in vars(delta).values())

    def test_capacity_evictions_still_counted(self):
        pool = make_pool(capacity=2)
        for _ in range(3):
            pool.allocate(1, PageKind.DATA)
        assert pool.stats.evictions == 1
        assert pool.stats.resize_evictions == 0

    def test_dirty_victims_count_writebacks(self):
        pool = make_pool(capacity=4)
        pages = [pool.allocate(1, PageKind.DATA) for _ in range(4)]
        for page in pages:
            pool.mark_dirty(page.page_id)
        pool.resize(2)
        assert pool.stats.writebacks == 2
        pool.flush()
        assert pool.stats.writebacks == 4

    def test_workload_delta_across_ddl_resize(self):
        """The end-to-end shape of the bug: a measurement window that
        spans a DDL-triggered pool shrink must see only the workload's
        own evictions."""
        pool = make_pool(capacity=8)
        pages = [pool.allocate(1, PageKind.DATA) for _ in range(8)]
        before = pool.stats.snapshot()
        pool.resize(4)  # DDL ate the buffer pool mid-window
        for page in pages:
            pool.read(page.page_id)
        delta = pool.stats.delta(before)
        assert delta.resize_evictions == 4
        # Sequential re-reads through a 4-frame pool thrash: every read
        # misses and evicts the page about to be read next.  Those 8
        # capacity evictions belong to the workload and stay separate
        # from the 4 the resize caused.
        assert delta.evictions == 8
        assert delta.physical_data == 8
        assert delta.logical_data == 8

    def test_grow_resize_evicts_nothing(self):
        pool = make_pool(capacity=2)
        for _ in range(2):
            pool.allocate(1, PageKind.DATA)
        before = pool.stats.snapshot()
        pool.resize(8)
        delta = pool.stats.delta(before)
        assert delta.resize_evictions == 0
        assert delta.evictions == 0


class TestHitRatio:
    def test_perfect_hit_ratio(self):
        pool = make_pool()
        page = pool.allocate(1, PageKind.DATA)
        for _ in range(10):
            pool.read(page.page_id)
        assert pool.stats.hit_ratio() == 1.0

    def test_hit_ratio_by_kind(self):
        pool = make_pool(capacity=1)
        d = pool.allocate(1, PageKind.DATA)
        i = pool.allocate(2, PageKind.INDEX)  # evicts d
        pool.read(d.page_id)  # miss
        pool.read(d.page_id)  # hit
        assert pool.stats.hit_ratio(PageKind.DATA) == 0.5
        assert pool.stats.hit_ratio(PageKind.INDEX) == 1.0

    def test_no_reads_is_ratio_one(self):
        assert make_pool().stats.hit_ratio() == 1.0


class TestSnapshots:
    def test_delta_isolates_an_interval(self):
        pool = make_pool()
        page = pool.allocate(1, PageKind.DATA)
        pool.read(page.page_id)
        before = pool.stats.snapshot()
        pool.read(page.page_id)
        pool.read(page.page_id)
        delta = pool.stats.delta(before)
        assert delta.logical_data == 2


class TestSegments:
    def test_free_segment_drops_pages(self):
        pool = make_pool()
        a = pool.allocate(1, PageKind.DATA)
        pool.allocate(2, PageKind.DATA)
        dropped = pool.free_segment(1)
        assert dropped == 1
        with pytest.raises(EngineError):
            pool.read(a.page_id)

    def test_resident_ratio(self):
        pool = make_pool(capacity=1)
        pool.allocate(1, PageKind.DATA)
        pool.allocate(1, PageKind.DATA)
        assert pool.resident_ratio({1}) == 0.5
