"""Compilation of expression ASTs into Python callables.

Expressions are compiled once at plan time against a *schema* — an
ordered list of ``(binding, column_name)`` slots describing the tuples
that flow through the plan — so evaluation is a closure call with no
name resolution at runtime.

Semantics follow SQL three-valued logic: comparisons involving NULL
yield ``None``; ``AND``/``OR`` propagate unknowns; filters keep a row
only when the predicate is exactly ``True``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Sequence

from .errors import ExecutionError, PlanError, UnknownObjectError
from .sql import ast

#: A compiled expression: (row, params) -> value.
Compiled = Callable[[tuple, Sequence[object]], object]


@dataclass(frozen=True)
class Slot:
    """One column of the tuples flowing through a plan node."""

    binding: str | None  # table alias (lowered); None for computed columns
    name: str  # column name (lowered)


class Schema:
    """Slot list with name resolution (qualified and unqualified)."""

    def __init__(self, slots: Sequence[Slot]):
        self.slots = list(slots)

    def __len__(self) -> int:
        return len(self.slots)

    def extend(self, other: "Schema") -> "Schema":
        return Schema(self.slots + other.slots)

    def resolve(self, table: str | None, column: str) -> int:
        column = column.lower()
        table = table.lower() if table else None
        matches = [
            i
            for i, slot in enumerate(self.slots)
            if slot.name == column and (table is None or slot.binding == table)
        ]
        if not matches and table is not None:
            # Qualified reference against a computed/output schema whose
            # slots have no binding: fall back to name-only resolution.
            matches = [
                i
                for i, slot in enumerate(self.slots)
                if slot.name == column and slot.binding is None
            ]
        if not matches:
            raise UnknownObjectError(
                f"column {table + '.' if table else ''}{column} not in scope"
            )
        if len(matches) > 1:
            raise PlanError(f"ambiguous column reference {column!r}")
        return matches[0]

    def try_resolve(self, table: str | None, column: str) -> int | None:
        try:
            return self.resolve(table, column)
        except (UnknownObjectError, PlanError):
            return None

    def bindings(self) -> set[str]:
        return {s.binding for s in self.slots if s.binding is not None}


def referenced_bindings(expr: ast.Expr) -> set[str]:
    """Table bindings (lowercased) an expression refers to.

    Unqualified column references yield the pseudo-binding ``"?"`` so the
    caller knows resolution needs the full schema.
    """
    out: set[str] = set()
    _walk_bindings(expr, out)
    return out


def _walk_bindings(expr: ast.Expr, out: set[str]) -> None:
    if isinstance(expr, ast.ColumnRef):
        out.add(expr.table.lower() if expr.table else "?")
    elif isinstance(expr, ast.BinaryOp):
        _walk_bindings(expr.left, out)
        _walk_bindings(expr.right, out)
    elif isinstance(expr, (ast.UnaryOp, ast.IsNull)):
        _walk_bindings(expr.operand, out)
    elif isinstance(expr, ast.FuncCall):
        for arg in expr.args:
            _walk_bindings(arg, out)
    elif isinstance(expr, ast.InList):
        _walk_bindings(expr.operand, out)
        for item in expr.items:
            _walk_bindings(item, out)
    elif isinstance(expr, ast.InSubquery):
        _walk_bindings(expr.operand, out)
        # Correlated subqueries are not supported; the subquery's own
        # references are resolved against its own sources.


def contains_aggregate(expr: ast.Expr | ast.Star) -> bool:
    if isinstance(expr, ast.FuncCall):
        if expr.is_aggregate:
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, (ast.UnaryOp, ast.IsNull)):
        return contains_aggregate(expr.operand)
    if isinstance(expr, ast.InList):
        return contains_aggregate(expr.operand) or any(
            contains_aggregate(i) for i in expr.items
        )
    return False


def _like_matcher(pattern: str) -> Callable[[str], bool]:
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    compiled = re.compile(f"^{regex}$", re.IGNORECASE)
    return lambda text: compiled.match(text) is not None


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if isinstance(a, float) or isinstance(b, float) else a // b,
    "||": lambda a, b: str(a) + str(b),
}

def _coerce_pair(a: object, b: object) -> tuple[object, object]:
    """Mild cross-type coercion for comparisons, mirroring the lenient
    behaviour of the paper's databases: ISO strings compare against
    DATEs, ints against floats (native in Python)."""
    import datetime

    if isinstance(a, datetime.date) and isinstance(b, str):
        try:
            return a, datetime.date.fromisoformat(b)
        except ValueError:
            return a, b
    if isinstance(b, datetime.date) and isinstance(a, str):
        try:
            return datetime.date.fromisoformat(a), b
        except ValueError:
            return a, b
    return a, b


_MISSING_CONST = object()


def _row_independent(compiled: Compiled) -> bool:
    """Whether a compiled expression ignores its row operand (literal or
    parameter read) — safe to evaluate once per batch with ``row=None``."""
    return (
        getattr(compiled, "const", _MISSING_CONST) is not _MISSING_CONST
        or getattr(compiled, "param", None) is not None
    )


_COMPARE = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _to_date_value(value):
    import datetime

    if isinstance(value, datetime.date):
        return value
    return datetime.date.fromisoformat(str(value))


#: NULL-strict unary scalar functions: each maps one non-NULL value;
#: the shared wrapper handles NULL propagation.  The conversion family
#: exists for the Universal Table layout, which funnels every logical
#: type through VARCHAR data columns.
_UNARY_FUNCS = {
    "LENGTH": lambda v: len(str(v)),
    "UPPER": lambda v: str(v).upper(),
    "LOWER": lambda v: str(v).lower(),
    "ABS": abs,
    "TO_INT": int,
    "TO_DOUBLE": float,
    "TO_DATE": _to_date_value,
    "TO_BOOL": lambda v: v in (1, "1", True),
    "TO_STR": str,
}


def _tag_unary(fn, arg: Compiled) -> Compiled:
    """Wrap a NULL-strict unary function, carrying batch metadata.

    When the argument is a slot read (directly or through another
    tagged unary), the closure gets ``map1 = (slot, value_fn)`` so the
    batch compiler can map the stored column without assembling row
    tuples — this is what keeps fused cross-tenant aggregates over the
    Universal Table's ``TO_INT(colN)`` casts on the columnar fast path.
    """

    def unary(row, params):
        value = arg(row, params)
        if value is None:
            return None
        return fn(value)

    slot = getattr(arg, "slot", None)
    if slot is not None:
        unary.map1 = (slot, fn)
    else:
        inner = getattr(arg, "map1", None)
        if inner is not None:
            inner_slot, inner_fn = inner
            unary.map1 = (inner_slot, lambda v: fn(inner_fn(v)))
    return unary


class ExprCompiler:
    """Compiles expression ASTs against a fixed schema.

    ``subquery_executor`` is a callback used for uncorrelated ``IN
    (SELECT ...)`` predicates; it receives the subquery AST plus the
    statement parameters and returns the set of values the subquery
    produced (evaluated lazily, once per parameter vector).
    """

    def __init__(
        self,
        schema: Schema,
        subquery_executor: "Callable[[ast.Select, Sequence[object]], set] | None" = None,
    ) -> None:
        self._schema = schema
        self._subquery_executor = subquery_executor

    def compile(self, expr: ast.Expr) -> Compiled:
        if isinstance(expr, ast.Literal):
            value = expr.value
            def read_literal(row, params, value=value):
                return value
            # Metadata for the batch compiler (expr_batch): a constant
            # needs no per-row evaluation at all.
            read_literal.const = value
            return read_literal
        if isinstance(expr, ast.Param):
            index = expr.index
            def read_param(row, params, index=index):
                if index >= len(params):
                    raise ExecutionError(
                        f"statement needs parameter {index + 1}, "
                        f"got {len(params)}"
                    )
                return params[index]
            # Metadata for the batch compiler: a parameter read is
            # row-independent, so comparisons against it can evaluate
            # once per batch against a stored column.
            read_param.param = index
            return read_param
        if isinstance(expr, ast.ColumnRef):
            slot = self._schema.resolve(expr.table, expr.column)
            def read_slot(row, params, slot=slot):
                return row[slot]
            # Metadata for the batch compiler: plain slot reads vectorize
            # into a single ``operator.itemgetter`` call per batch.
            read_slot.slot = slot
            return read_slot
        if isinstance(expr, ast.BinaryOp):
            return self._compile_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            inner = self.compile(expr.operand)
            if expr.op.upper() == "NOT":
                def negate(row, params):
                    value = inner(row, params)
                    if value is None:
                        return None
                    return not value
                return negate
            return lambda row, params: None if (v := inner(row, params)) is None else -v
        if isinstance(expr, ast.IsNull):
            inner = self.compile(expr.operand)
            if expr.negated:
                return lambda row, params: inner(row, params) is not None
            return lambda row, params: inner(row, params) is None
        if isinstance(expr, ast.FuncCall):
            return self._compile_scalar_func(expr)
        if isinstance(expr, ast.InList):
            operand = self.compile(expr.operand)
            negated = expr.negated
            if all(isinstance(i, ast.Literal) for i in expr.items):
                # All-literal lists (the shape of fused cross-tenant
                # ``tenant IN (...)`` pushdowns) probe one frozenset in
                # O(1) instead of evaluating k item closures per row.
                values = frozenset(i.value for i in expr.items)
                def in_set(row, params):
                    value = operand(row, params)
                    if value is None:
                        return None
                    found = value in values
                    return (not found) if negated else found
                # Metadata for the batch compiler: a slot membership
                # test vectorizes into one probe per stored value.
                slot = getattr(operand, "slot", None)
                if slot is not None:
                    in_set.inset = (slot, values, negated)
                return in_set
            items = [self.compile(i) for i in expr.items]
            def in_list(row, params):
                value = operand(row, params)
                if value is None:
                    return None
                found = any(item(row, params) == value for item in items)
                return (not found) if negated else found
            return in_list
        if isinstance(expr, ast.InSubquery):
            if self._subquery_executor is None:
                raise PlanError("IN (SELECT ...) is not allowed in this context")
            operand = self.compile(expr.operand)
            executor = self._subquery_executor
            subquery = expr.subquery
            negated = expr.negated
            cache: dict[tuple, set] = {}
            def in_subquery(row, params):
                key = tuple(params)
                if key not in cache:
                    cache[key] = executor(subquery, params)
                value = operand(row, params)
                if value is None:
                    return None
                found = value in cache[key]
                return (not found) if negated else found
            return in_subquery
        raise PlanError(f"cannot compile expression {expr!r}")

    def _compile_binary(self, expr: ast.BinaryOp) -> Compiled:
        op = expr.op.upper()
        if op == "AND":
            left, right = self.compile(expr.left), self.compile(expr.right)
            def and_(row, params):
                a = left(row, params)
                if a is False:
                    return False
                b = right(row, params)
                if b is False:
                    return False
                if a is None or b is None:
                    return None
                return True
            return and_
        if op == "OR":
            left, right = self.compile(expr.left), self.compile(expr.right)
            def or_(row, params):
                a = left(row, params)
                if a is True:
                    return True
                b = right(row, params)
                if b is True:
                    return True
                if a is None or b is None:
                    return None
                return False
            return or_
        if op == "LIKE":
            left = self.compile(expr.left)
            if isinstance(expr.right, ast.Literal) and isinstance(
                expr.right.value, str
            ):
                matcher = _like_matcher(expr.right.value)
                def like_const(row, params):
                    value = left(row, params)
                    if value is None:
                        return None
                    return matcher(str(value))
                return like_const
            right = self.compile(expr.right)
            def like_dyn(row, params):
                value, pattern = left(row, params), right(row, params)
                if value is None or pattern is None:
                    return None
                return _like_matcher(str(pattern))(str(value))
            return like_dyn
        if op in _COMPARE:
            left, right = self.compile(expr.left), self.compile(expr.right)
            fn = _COMPARE[op]
            def compare(row, params):
                a, b = left(row, params), right(row, params)
                if a is None or b is None:
                    return None
                a, b = _coerce_pair(a, b)
                try:
                    return fn(a, b)
                except TypeError:
                    # Incompatible types: fall back to the engine's total
                    # order so queries never crash mid-scan.
                    from .values import sort_key

                    return fn(sort_key(a), sort_key(b))
            # Metadata for the batch compiler: <column> <op> <row-
            # independent value> (or mirrored) evaluates against a
            # stored column without assembling row tuples.  ``cmp`` is
            # (slot, fn, other_side, swapped): swapped means the column
            # is the *right* operand of ``fn``.
            slot = getattr(left, "slot", None)
            if slot is not None and _row_independent(right):
                compare.cmp = (slot, fn, right, False)
            else:
                slot = getattr(right, "slot", None)
                if slot is not None and _row_independent(left):
                    compare.cmp = (slot, fn, left, True)
            return compare
        if op in _ARITH:
            left, right = self.compile(expr.left), self.compile(expr.right)
            fn = _ARITH[op]
            def arith(row, params):
                a, b = left(row, params), right(row, params)
                if a is None or b is None:
                    return None
                return fn(a, b)
            return arith
        raise PlanError(f"unsupported operator {expr.op!r}")

    def _compile_scalar_func(self, expr: ast.FuncCall) -> Compiled:
        name = expr.name.upper()
        if expr.is_aggregate:
            raise PlanError(
                f"aggregate {name} not allowed here (handled by GRPBY)"
            )
        args = [self.compile(a) for a in expr.args]
        if len(args) == 1 and name in _UNARY_FUNCS:
            return _tag_unary(_UNARY_FUNCS[name], args[0])
        if name == "COALESCE" and args:
            def coalesce(row, params):
                for arg in args:
                    value = arg(row, params)
                    if value is not None:
                        return value
                return None
            return coalesce
        raise PlanError(f"unknown function {name}")
