"""Wire protocol: framing, value tagging, and malformed-input
defence."""

import asyncio
import datetime
import json
import struct

import pytest

from repro.cluster import protocol
from repro.cluster.errors import ProtocolError

from .conftest import run


def read_one(*chunks: bytes):
    async def go():
        reader = asyncio.StreamReader()
        for chunk in chunks:
            reader.feed_data(chunk)
        reader.feed_eof()
        return await protocol.read_frame(reader)

    return run(go())


class TestFraming:
    def test_round_trip(self):
        message = {
            "op": "execute",
            "tenant_id": 17,
            "params": [1, "x", None, 2.5],
        }
        frame = protocol.encode_frame(message)
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert protocol.decode_frame(frame[4:]) == message

    def test_read_frame_round_trip(self):
        message = {"op": "ping"}
        assert read_one(protocol.encode_frame(message)) == message

    def test_clean_eof_returns_none(self):
        assert read_one() is None

    def test_partial_header_is_an_error(self):
        with pytest.raises(ProtocolError):
            read_one(b"\x00\x00")

    def test_truncated_body_is_an_error(self):
        frame = protocol.encode_frame({"op": "ping"})
        with pytest.raises(ProtocolError):
            read_one(frame[:-3])

    def test_oversized_length_refused(self):
        header = struct.pack(">I", protocol.MAX_FRAME + 1)
        with pytest.raises(ProtocolError):
            read_one(header)

    def test_oversized_encode_refused(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME", 16)
        with pytest.raises(ProtocolError):
            protocol.encode_frame({"op": "x" * 100})

    def test_garbage_json_refused(self):
        body = b"not json at all"
        with pytest.raises(ProtocolError):
            read_one(struct.pack(">I", len(body)) + body)

    def test_non_object_payload_refused(self):
        body = json.dumps([1, 2, 3]).encode()
        with pytest.raises(ProtocolError):
            read_one(struct.pack(">I", len(body)) + body)


class TestValueTagging:
    def test_dates_survive_the_wire(self):
        message = {
            "values": {"opened": datetime.date(2001, 2, 3)},
            "rows": [[1, datetime.date(1999, 12, 31)]],
        }
        decoded = protocol.decode_frame(
            protocol.encode_frame(message)[4:]
        )
        assert decoded["values"]["opened"] == datetime.date(2001, 2, 3)
        assert decoded["rows"][0][1] == datetime.date(1999, 12, 31)

    def test_decode_rows_builds_tuples(self):
        rows = protocol.decode_rows(
            [[1, "a", {"$date": "2001-02-03"}], [2, "b", None]]
        )
        assert rows == [
            (1, "a", datetime.date(2001, 2, 3)),
            (2, "b", None),
        ]

    def test_plain_dicts_untouched(self):
        message = {"values": {"aid": 1, "name": "Acme"}}
        assert (
            protocol.decode_frame(protocol.encode_frame(message)[4:])
            == message
        )
