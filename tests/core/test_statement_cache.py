"""Schema-mapping statement cache: shape sharing and invalidation.

The multi-tenant cache keys transformed statements by (logical SQL,
layout, tenant shape).  For layouts whose physical statements differ
only in the tenant-identifying constants (``shares_statements``), the
shape is the tenant's extension set — so thousands of tenants collapse
onto a handful of cache entries and the tenant id binds at execution
time through parameter slots.  Private tables get per-tenant keys.

Every schema-administration operation (define/grant/alter extension,
tenant migration, tenant drop) must drop cached entries, and engine DDL
underneath (CREATE INDEX on a physical table) must force a re-plan of
the prepared physical statements without changing results.
"""

import pytest

from repro import Extension, LogicalColumn, LogicalTable, MultiTenantDatabase
from repro.engine.values import INTEGER, varchar


def counter(mtd: MultiTenantDatabase, name: str) -> float:
    return mtd.db.metrics.value(f"mt.statement_cache.{name}")


ACCT = LogicalTable(
    "acct",
    (
        LogicalColumn("id", INTEGER, indexed=True, not_null=True),
        LogicalColumn("name", varchar(20)),
    ),
)

HOSPITAL = Extension(
    "hospital", "acct", (LogicalColumn("beds", INTEGER),)
)


def make_mtd(layout: str = "universal", **kwargs) -> MultiTenantDatabase:
    options = {"width": 2} if layout in ("chunk", "chunk_folding") else {}
    mtd = MultiTenantDatabase(layout=layout, **options, **kwargs)
    mtd.define_table(ACCT)
    return mtd


def seed_tenant(mtd, tenant_id: int, rows: int = 3, **extra) -> None:
    for i in range(rows):
        mtd.insert(
            tenant_id,
            "acct",
            {"id": i + 1, "name": f"t{tenant_id}r{i}", **extra},
        )


class TestShapeSharing:
    def test_same_shape_tenants_share_one_entry(self):
        mtd = make_mtd("universal")
        for tenant in (1, 2, 3):
            mtd.create_tenant(tenant)
            seed_tenant(mtd, tenant)
        sql = "SELECT name FROM acct WHERE id = ?"
        results = {t: mtd.execute(t, sql, [2]).rows for t in (1, 2, 3)}
        # One transformation served all three tenants...
        assert counter(mtd, "misses") == 1
        assert counter(mtd, "hits") == 2
        # ...yet each tenant saw only its own data.
        assert results == {t: [(f"t{t}r1",)] for t in (1, 2, 3)}

    def test_extension_set_splits_shapes(self):
        mtd = make_mtd("extension")
        mtd.define_extension(HOSPITAL)
        mtd.create_tenant(1, extensions=("hospital",))
        mtd.create_tenant(2)
        mtd.create_tenant(3, extensions=("hospital",))
        seed_tenant(mtd, 1, beds=10)
        seed_tenant(mtd, 2)
        seed_tenant(mtd, 3, beds=30)
        sql = "SELECT name FROM acct WHERE id = ?"
        for tenant in (1, 2, 3):
            assert mtd.execute(tenant, sql, [1]).rows == [(f"t{tenant}r0",)]
        # Tenants 1 and 3 share the {hospital} shape; tenant 2 is alone.
        assert counter(mtd, "misses") == 2
        assert counter(mtd, "hits") == 1

    def test_private_layout_keys_per_tenant(self):
        mtd = make_mtd("private")
        for tenant in (1, 2):
            mtd.create_tenant(tenant)
            seed_tenant(mtd, tenant)
        sql = "SELECT name FROM acct WHERE id = ?"
        assert mtd.execute(1, sql, [1]).rows == [("t1r0",)]
        assert mtd.execute(2, sql, [1]).rows == [("t2r0",)]
        assert counter(mtd, "misses") == 2  # private tables never share
        mtd.execute(1, sql, [2])
        assert counter(mtd, "hits") == 1  # but each tenant reuses its own

    def test_prepared_handle_spans_shapes(self):
        mtd = make_mtd("universal")
        mtd.define_extension(HOSPITAL)
        mtd.create_tenant(1, extensions=("hospital",))
        mtd.create_tenant(2)
        seed_tenant(mtd, 1, beds=5)
        seed_tenant(mtd, 2)
        handle = mtd.prepare("SELECT name FROM acct WHERE id >= ?")
        assert handle.execute(1, [3]).rows == [("t1r2",)]
        assert handle.execute(2, [3]).rows == [("t2r2",)]

    def test_disabled_cache_still_correct(self):
        mtd = make_mtd("universal", statement_cache_size=0)
        mtd.create_tenant(1)
        seed_tenant(mtd, 1)
        sql = "SELECT name FROM acct WHERE id = ?"
        assert mtd.execute(1, sql, [1]).rows == [("t1r0",)]
        assert mtd.execute(1, sql, [1]).rows == [("t1r0",)]
        assert counter(mtd, "hits") == 0
        assert counter(mtd, "misses") == 0


class TestInvalidation:
    def warm(self, mtd, tenants=(1, 2)) -> str:
        sql = "SELECT name FROM acct WHERE id = ?"
        for tenant in tenants:
            mtd.execute(tenant, sql, [1])
        return sql

    def test_define_extension_invalidates(self):
        mtd = make_mtd("universal")
        mtd.create_tenant(1)
        mtd.create_tenant(2)
        seed_tenant(mtd, 1)
        seed_tenant(mtd, 2)
        sql = self.warm(mtd)
        assert len(mtd._statements) == 1
        mtd.define_extension(HOSPITAL)
        assert len(mtd._statements) == 0
        assert counter(mtd, "invalidations") >= 1
        assert mtd.execute(1, sql, [1]).rows == [("t1r0",)]

    def test_grant_extension_invalidates_and_requeries(self):
        mtd = make_mtd("universal")
        mtd.define_extension(HOSPITAL)
        mtd.create_tenant(1)
        mtd.create_tenant(2)
        sql = self.warm(mtd)
        invalidations = counter(mtd, "invalidations")
        mtd.grant_extension(1, "hospital")
        assert counter(mtd, "invalidations") > invalidations
        # Tenant 1 now has a different shape: fresh entries, fresh results.
        seed_tenant(mtd, 1, beds=12)
        seed_tenant(mtd, 2)
        assert mtd.execute(1, "SELECT name, beds FROM acct WHERE id = ?", [1]).rows == [
            ("t1r0", 12)
        ]
        assert mtd.execute(2, sql, [1]).rows == [("t2r0",)]

    def test_alter_extension_invalidates(self):
        mtd = make_mtd("universal")
        mtd.define_extension(HOSPITAL)
        mtd.create_tenant(1, extensions=("hospital",))
        seed_tenant(mtd, 1, beds=7)
        sql = self.warm(mtd, tenants=(1,))
        invalidations = counter(mtd, "invalidations")
        mtd.alter_extension("hospital", [LogicalColumn("wards", INTEGER)])
        assert counter(mtd, "invalidations") > invalidations
        # Old rows read NULL in the new column; cached plans are gone.
        rows = mtd.execute(
            1, "SELECT name, wards FROM acct WHERE id = ?", [1]
        ).rows
        assert rows == [("t1r0", None)]
        assert mtd.execute(1, sql, [1]).rows == [("t1r0",)]

    def test_migrate_tenant_invalidates(self):
        mtd = make_mtd("universal")
        mtd.create_tenant(1)
        mtd.create_tenant(2)
        seed_tenant(mtd, 1)
        seed_tenant(mtd, 2)
        sql = self.warm(mtd)
        invalidations = counter(mtd, "invalidations")
        mtd.migrate_tenant(1, "private")
        assert counter(mtd, "invalidations") > invalidations
        # Migrated tenant answers from its new layout, the other from the
        # old one — neither may reuse the pre-migration plan.
        assert mtd.execute(1, sql, [2]).rows == [("t1r1",)]
        assert mtd.execute(2, sql, [2]).rows == [("t2r1",)]

    def test_drop_tenant_invalidates(self):
        mtd = make_mtd("universal")
        mtd.create_tenant(1)
        mtd.create_tenant(2)
        seed_tenant(mtd, 1)
        seed_tenant(mtd, 2)
        sql = self.warm(mtd)
        mtd.drop_tenant(2)
        assert len(mtd._statements) == 0
        assert mtd.execute(1, sql, [1]).rows == [("t1r0",)]

    def test_engine_ddl_replans_cached_statements(self):
        mtd = make_mtd("universal")
        mtd.create_tenant(1)
        seed_tenant(mtd, 1, rows=6)
        sql = "SELECT name FROM acct WHERE id >= ?"
        before = mtd.execute(1, sql, [4]).rows
        mtd.execute(1, sql, [4])  # engine plan now cached and reused
        mtd.db.execute("CREATE INDEX universal_c1 ON universal (col1)")
        engine_invalidations = mtd.db.metrics.value(
            "db.plan_cache.invalidations"
        )
        after = mtd.execute(1, sql, [4]).rows
        assert sorted(after) == sorted(before)
        # The MT entry survived (no schema change) but its physical plan
        # was revalidated against the bumped catalog version.
        assert (
            mtd.db.metrics.value("db.plan_cache.invalidations")
            > engine_invalidations - 1
        )


class TestChunkLegacyTenants:
    def test_altered_tenant_stops_sharing_with_fresh_tenants(self):
        # Specifically the plain chunk layout: its per-tenant partitions
        # are extended in place by ALTER, so an altered tenant's chunks
        # diverge from a fresh tenant's even with equal extension sets.
        # (chunk_folding shares extension chunks globally and is immune.)
        mtd = make_mtd("chunk")
        mtd.define_extension(HOSPITAL)
        mtd.create_tenant(1, extensions=("hospital",))
        seed_tenant(mtd, 1, beds=3)
        # Materialize tenant 1's partition, then widen the extension:
        # its chunks are appended in place, diverging from the layout a
        # fresh tenant with the same extension set would get.
        mtd.execute(1, "SELECT name FROM acct WHERE id = ?", [1])
        mtd.alter_extension("hospital", [LogicalColumn("wards", INTEGER)])
        mtd.create_tenant(2, extensions=("hospital",))
        layout = mtd.layout
        assert layout.statement_shape(1) != layout.statement_shape(2)
        mtd.insert(
            2, "acct", {"id": 1, "name": "t2r0", "beds": 3, "wards": None}
        )
        sql = "SELECT name, beds, wards FROM acct WHERE id = ?"
        assert mtd.execute(1, sql, [1]).rows == [("t1r0", 3, None)]
        assert mtd.execute(2, sql, [1]).rows == [("t2r0", 3, None)]

    def test_fresh_same_shape_tenants_still_share(self):
        mtd = make_mtd("chunk_folding")
        mtd.define_extension(HOSPITAL)
        mtd.create_tenant(1, extensions=("hospital",))
        mtd.create_tenant(2, extensions=("hospital",))
        layout = mtd.layout
        assert layout.statement_shape(1) == layout.statement_shape(2)
