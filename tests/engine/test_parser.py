"""Tests for the SQL lexer/parser and SQL rendering round-trips."""

import pytest

from repro.engine.errors import ParseError
from repro.engine.sql import ast
from repro.engine.sql.lexer import TokenKind, tokenize
from repro.engine.sql.parser import parse_statement


class TestLexer:
    def test_keywords_upcased(self):
        tokens = tokenize("select From")
        assert tokens[0].text == "SELECT"
        assert tokens[1].text == "FROM"

    def test_string_escapes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "it's"

    def test_params(self):
        tokens = tokenize("? ?")
        assert [t.kind for t in tokens[:2]] == [TokenKind.PARAM, TokenKind.PARAM]

    def test_operators(self):
        tokens = tokenize("<> <= >= ||")
        assert [t.text for t in tokens[:4]] == ["<>", "<=", ">=", "||"]

    def test_garbage_raises_with_position(self):
        with pytest.raises(ParseError) as info:
            tokenize("SELECT @")
        assert info.value.position == 7


class TestSelectParsing:
    def test_simple(self):
        stmt = parse_statement("SELECT a FROM t")
        assert isinstance(stmt, ast.Select)
        assert stmt.sources[0].name == "t"

    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_qualified_star(self):
        stmt = parse_statement("SELECT t.* FROM t")
        assert stmt.items[0].expr == ast.Star("t")

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.sources[0].alias == "u"

    def test_comma_join_and_where(self):
        stmt = parse_statement(
            "SELECT p.id FROM parent p, child c WHERE p.id = c.parent AND p.id = ?"
        )
        assert len(stmt.sources) == 2
        assert isinstance(stmt.where, ast.BinaryOp)

    def test_explicit_join_becomes_where(self):
        stmt = parse_statement(
            "SELECT p.id FROM parent p JOIN child c ON p.id = c.parent"
        )
        assert len(stmt.sources) == 2
        assert stmt.where is not None

    def test_nested_subquery_in_from(self):
        stmt = parse_statement(
            "SELECT a.x FROM (SELECT b.y AS x FROM b WHERE b.y > 1) AS a"
        )
        assert isinstance(stmt.sources[0], ast.SubquerySource)
        assert stmt.sources[0].alias == "a"

    def test_group_by_having(self):
        stmt = parse_statement(
            "SELECT t.a, COUNT(*) FROM t GROUP BY t.a HAVING COUNT(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_limit(self):
        stmt = parse_statement("SELECT a FROM t ORDER BY a DESC, b LIMIT 10")
        assert stmt.order_by[0].descending is True
        assert stmt.order_by[1].descending is False
        assert stmt.limit == 10

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_in_list(self):
        stmt = parse_statement("SELECT a FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(stmt.where, ast.InList)

    def test_in_subquery(self):
        stmt = parse_statement("SELECT a FROM t WHERE a IN (SELECT b FROM u)")
        assert isinstance(stmt.where, ast.InSubquery)

    def test_not_in(self):
        stmt = parse_statement("SELECT a FROM t WHERE a NOT IN (1)")
        assert stmt.where.negated

    def test_between(self):
        stmt = parse_statement("SELECT a FROM t WHERE a BETWEEN 1 AND 5")
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == "AND"

    def test_is_null(self):
        stmt = parse_statement("SELECT a FROM t WHERE a IS NOT NULL")
        assert stmt.where == ast.IsNull(ast.ColumnRef(None, "a"), negated=True)

    def test_like(self):
        stmt = parse_statement("SELECT a FROM t WHERE a LIKE 'x%'")
        assert stmt.where.op == "LIKE"

    def test_param_indexes_in_order(self):
        stmt = parse_statement("SELECT a FROM t WHERE a = ? AND b = ?")
        left, right = stmt.where.left, stmt.where.right
        assert left.right.index == 0
        assert right.right.index == 1

    def test_count_star(self):
        stmt = parse_statement("SELECT COUNT(*) FROM t")
        assert stmt.items[0].expr.star

    def test_count_distinct(self):
        stmt = parse_statement("SELECT COUNT(DISTINCT a) FROM t")
        assert stmt.items[0].expr.distinct

    def test_arithmetic_precedence(self):
        stmt = parse_statement("SELECT a + b * 2 FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_negative_literal(self):
        stmt = parse_statement("SELECT a FROM t WHERE a > -5")
        assert isinstance(stmt.where.right, ast.UnaryOp)


class TestDmlParsing:
    def test_insert_positional(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'x', NULL)")
        assert isinstance(stmt, ast.Insert)
        assert stmt.columns == ()
        assert len(stmt.rows[0]) == 3

    def test_insert_with_columns(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (?, ?)")
        assert stmt.columns == ("a", "b")

    def test_insert_multi_row(self):
        stmt = parse_statement("INSERT INTO t VALUES (1), (2), (3)")
        assert len(stmt.rows) == 3

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = ?")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE id = 1")
        assert isinstance(stmt, ast.Delete)


class TestDdlParsing:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INTEGER NOT NULL, name VARCHAR(100), d DATE)"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].not_null
        assert stmt.columns[1].type_text == "VARCHAR(100)"

    def test_create_index(self):
        stmt = parse_statement("CREATE UNIQUE INDEX i ON t (a, b)")
        assert isinstance(stmt, ast.CreateIndex)
        assert stmt.unique
        assert stmt.columns == ("a", "b")

    def test_drop_table(self):
        assert isinstance(parse_statement("DROP TABLE t"), ast.DropTable)

    def test_drop_index(self):
        stmt = parse_statement("DROP INDEX i ON t")
        assert isinstance(stmt, ast.DropIndex)


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT a FROM t extra garbage here")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT a FROM (SELECT b FROM t AS x")

    def test_empty_statement(self):
        with pytest.raises(ParseError):
            parse_statement("")

    def test_dangling_not(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT a FROM t WHERE a NOT 5")


class TestSqlRoundTrip:
    """Every statement's .sql() must re-parse to an equivalent AST —
    the query-transformation layer relies on this."""

    CASES = [
        "SELECT a FROM t",
        "SELECT DISTINCT t.a AS x FROM t WHERE t.a > 5",
        "SELECT p.id, c.col1 FROM parent AS p, child AS c "
        "WHERE p.id = c.parent AND p.id = ?",
        "SELECT a.x FROM (SELECT b.y AS x FROM b WHERE b.y = ?) AS a",
        "SELECT t.a, COUNT(*) AS n FROM t GROUP BY t.a HAVING COUNT(*) > 2 "
        "ORDER BY n DESC LIMIT 5",
        "SELECT a FROM t WHERE a IN (1, 2) AND b IS NULL",
        "INSERT INTO t (a, b) VALUES (1, 'it''s')",
        "UPDATE t SET a = a + 1 WHERE b = ?",
        "DELETE FROM t WHERE a IN (SELECT b FROM u WHERE u.c = ?)",
        "CREATE TABLE t (id INTEGER NOT NULL, name VARCHAR(10))",
        "CREATE UNIQUE INDEX i ON t (a, b)",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_roundtrip(self, sql):
        first = parse_statement(sql)
        second = parse_statement(first.sql())
        assert first == second
