"""Structured findings shared by every analysis pass.

A finding is one rule violation: a rule id from the catalog below, a
severity, a human-readable message, and a *locus* describing where the
problem lives (a statement, a layout/tenant/table coordinate, a
physical-table meta tuple, ...).  Reports aggregate findings and feed
the ``analysis.*`` counters of a :class:`MetricsRegistry`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class Severity(enum.IntEnum):
    """Finding severity; strict gates fail on ERROR."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Rule:
    """One entry of the rule catalog."""

    rule_id: str
    severity: Severity
    title: str


#: The rule catalog.  ``docs/analysis_rules.md`` mirrors this table.
RULES: dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        # -- semantic analyzer (SEM) ---------------------------------------
        Rule("SEM001", Severity.ERROR, "unknown table"),
        Rule("SEM002", Severity.ERROR, "unknown column or alias"),
        Rule("SEM003", Severity.ERROR, "ambiguous column reference"),
        Rule("SEM004", Severity.ERROR, "duplicate source binding"),
        Rule("SEM005", Severity.ERROR, "INSERT shape mismatch"),
        Rule("SEM006", Severity.ERROR, "unknown function or wrong arity"),
        Rule("SEM007", Severity.ERROR, "type-incompatible comparison"),
        Rule("SEM008", Severity.ERROR, "type-incompatible assignment"),
        Rule("SEM009", Severity.ERROR, "aggregate misuse"),
        Rule("SEM010", Severity.WARNING, "non-boolean predicate"),
        # -- tenant-isolation verifier (ISO) -------------------------------
        Rule("ISO001", Severity.ERROR, "unguarded scan of shared table"),
        Rule("ISO002", Severity.ERROR, "unguarded DML on shared table"),
        Rule("ISO003", Severity.ERROR, "tenant literal in shape-shared statement"),
        Rule("ISO004", Severity.ERROR, "missing meta discriminator conjunct"),
        Rule("ISO005", Severity.ERROR, "tenant guard binds wrong tenant"),
        Rule("ISO006", Severity.ERROR, "tenant guard exceeds declared cross-tenant set"),
        # -- layout invariant checker (LAY) --------------------------------
        Rule("LAY001", Severity.ERROR, "fragments do not cover logical schema"),
        Rule("LAY002", Severity.WARNING, "column stored by multiple fragments"),
        Rule("LAY003", Severity.ERROR, "fragment type/cast inconsistent with catalog"),
        Rule("LAY004", Severity.ERROR, "orphaned meta rows in shared table"),
        Rule("LAY005", Severity.ERROR, "migration does not preserve column set"),
        Rule("LAY006", Severity.ERROR, "row-alignment gap between fragments"),
        # -- dynamic concurrency/durability sanitizers (CON) ---------------
        Rule("CON001", Severity.ERROR, "lockset race: disjoint locksets on shared resource"),
        Rule("CON002", Severity.ERROR, "data-page mutation without covering WAL append"),
        Rule("CON003", Severity.ERROR, "dirty page written back beyond flushed WAL tail"),
        Rule("CON004", Severity.ERROR, "buffer-pool pin leaked past statement end"),
        Rule("CON005", Severity.ERROR, "session ended while still holding locks"),
        Rule("CON006", Severity.ERROR, "transaction left open at close"),
        # -- static lock-order pass (LCK) ----------------------------------
        Rule("LCK001", Severity.ERROR, "cycle in resource acquisition graph"),
        Rule("LCK002", Severity.ERROR, "acquisition order inverts the resource hierarchy"),
        Rule("LCK003", Severity.WARNING, "resource class missing from declared hierarchy"),
        # -- protocol lint rules (LNT) -------------------------------------
        Rule("LNT001", Severity.ERROR, "page mutation outside WAL-logged storage helpers"),
        Rule("LNT002", Severity.ERROR, "handler would swallow SimulatedCrash"),
        Rule("LNT003", Severity.ERROR, "crashpoint never exercised by the fault census"),
        Rule("LNT004", Severity.ERROR, "metrics-registry lookup inside a hot loop"),
    )
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one locus."""

    rule_id: str
    message: str
    locus: str = ""
    severity: Severity | None = None

    def __post_init__(self) -> None:
        if self.rule_id not in RULES:
            raise KeyError(f"unknown analysis rule {self.rule_id!r}")
        if self.severity is None:
            object.__setattr__(self, "severity", RULES[self.rule_id].severity)

    def render(self) -> str:
        where = f" [{self.locus}]" if self.locus else ""
        return f"{self.severity}: {self.rule_id} {self.message}{where}"


@dataclass
class AnalysisReport:
    """An ordered collection of findings with severity roll-ups."""

    findings: list[Finding] = field(default_factory=list)
    #: Statements / invariant checks examined (for coverage reporting).
    checked: int = 0

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, other: AnalysisReport) -> None:
        self.findings.extend(other.findings)
        self.checked += other.checked

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts

    def count_into(self, metrics: Any) -> None:
        """Feed the ``analysis.*`` counters of a metrics registry."""
        metrics.counter("analysis.checked").inc(self.checked)
        metrics.counter("analysis.findings").inc(len(self.findings))
        metrics.counter("analysis.errors").inc(len(self.errors))
        metrics.counter("analysis.warnings").inc(len(self.warnings))
        for rule_id, count in self.by_rule().items():
            metrics.counter(f"analysis.rule.{rule_id}").inc(count)

    def render(self, *, limit: int | None = None) -> str:
        lines = [f.render() for f in self.findings]
        if limit is not None and len(lines) > limit:
            hidden = len(lines) - limit
            lines = lines[:limit] + [f"... {hidden} more finding(s)"]
        lines.append(
            f"{self.checked} check(s): {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)
