"""Recursive-descent parser for the SQL subset.

Supports everything the paper's experiments need: SELECT with comma
joins and explicit ``JOIN ... ON``, nested FROM subqueries (the §6.1
transformation output), conjunctive and general WHERE predicates,
GROUP BY / HAVING / ORDER BY / LIMIT, aggregates, ``?`` parameters,
``IN`` (lists and subqueries), INSERT / UPDATE / DELETE, and DDL.
"""

from __future__ import annotations

from ..errors import ParseError
from . import ast
from .lexer import Token, TokenKind, tokenize


class _Parser:
    def __init__(self, sql: str) -> None:
        self._tokens = tokenize(sql)
        self._pos = 0
        self._param_count = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        self._pos += 1
        return token

    def _accept_keyword(self, *keywords: str) -> Token | None:
        if self._current.matches(*keywords):
            return self._advance()
        return None

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._accept_keyword(keyword)
        if token is None:
            raise ParseError(
                f"expected {keyword}, found {self._current.text or 'end of input'}",
                self._current.position,
            )
        return token

    def _accept_punct(self, text: str) -> bool:
        if self._current.kind is TokenKind.PUNCT and self._current.text == text:
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> None:
        if not self._accept_punct(text):
            raise ParseError(
                f"expected {text!r}, found {self._current.text or 'end of input'}",
                self._current.position,
            )

    def _expect_ident(self) -> str:
        if self._current.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected identifier, found {self._current.text or 'end of input'}",
                self._current.position,
            )
        return self._advance().text

    def _accept_word(self, word: str) -> bool:
        """Accept a non-reserved keyword (lexed as IDENT), like USING/FOR."""
        if (
            self._current.kind is TokenKind.IDENT
            and self._current.text.upper() == word
        ):
            self._advance()
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._accept_word(word):
            raise ParseError(
                f"expected {word}, found {self._current.text or 'end of input'}",
                self._current.position,
            )

    # -- entry point ------------------------------------------------------------

    def parse(self) -> ast.Statement:
        token = self._current
        if token.matches("SELECT"):
            stmt: ast.Statement = self._parse_select()
        elif token.matches("INSERT"):
            stmt = self._parse_insert()
        elif token.matches("UPDATE"):
            stmt = self._parse_update()
        elif token.matches("DELETE"):
            stmt = self._parse_delete()
        elif token.matches("CREATE"):
            stmt = self._parse_create()
        elif token.matches("DROP"):
            stmt = self._parse_drop()
        else:
            raise ParseError(
                f"unsupported statement starting with {token.text!r}", token.position
            )
        self._accept_punct(";")
        if self._current.kind is not TokenKind.EOF:
            raise ParseError(
                f"trailing input {self._current.text!r}", self._current.position
            )
        return stmt

    # -- SELECT -------------------------------------------------------------------

    def _parse_select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT") is not None
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        sources: list[ast.Source] = []
        where: ast.Expr | None = None
        if self._accept_keyword("FROM"):
            sources.append(self._parse_source())
            join_conditions: list[ast.Expr] = []
            while True:
                if self._accept_punct(","):
                    sources.append(self._parse_source())
                    continue
                if self._current.matches("JOIN", "INNER", "LEFT"):
                    # Inner joins only; LEFT is accepted and treated as
                    # inner for the dense datasets used here.
                    self._accept_keyword("INNER")
                    self._accept_keyword("LEFT")
                    self._accept_keyword("OUTER")
                    self._expect_keyword("JOIN")
                    sources.append(self._parse_source())
                    self._expect_keyword("ON")
                    join_conditions.append(self._parse_expr())
                    continue
                break
            for condition in join_conditions:
                where = (
                    condition
                    if where is None
                    else ast.BinaryOp("AND", where, condition)
                )
        if self._accept_keyword("WHERE"):
            predicate = self._parse_expr()
            where = (
                predicate if where is None else ast.BinaryOp("AND", where, predicate)
            )
        group_by: list[ast.Expr] = []
        having: ast.Expr | None = None
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expr())
            while self._accept_punct(","):
                group_by.append(self._parse_expr())
            if self._accept_keyword("HAVING"):
                having = self._parse_expr()
        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())
        limit: int | None = None
        if self._accept_keyword("LIMIT"):
            if self._current.kind is not TokenKind.NUMBER:
                raise ParseError("LIMIT expects a number", self._current.position)
            limit = int(self._advance().text)
        tenants = self._parse_tenant_clause()
        return ast.Select(
            items=tuple(items),
            sources=tuple(sources),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
            tenants=tenants,
        )

    def _parse_tenant_clause(self) -> ast.TenantClause | None:
        # MTSQL tenant scope: FOR ALL TENANTS | FOR TENANTS IN (n, ...).
        # FOR/ALL/TENANTS are not reserved words; FOR is matched as an
        # identifier here and blocked from alias positions above.
        if not self._accept_word("FOR"):
            return None
        if self._accept_word("ALL"):
            self._expect_word("TENANTS")
            return ast.TenantClause(all_tenants=True)
        self._expect_word("TENANTS")
        self._expect_keyword("IN")
        self._expect_punct("(")
        ids: list[int] = []
        while True:
            if self._current.kind is not TokenKind.NUMBER:
                raise ParseError(
                    "FOR TENANTS IN expects integer tenant ids",
                    self._current.position,
                )
            text = self._advance().text
            if "." in text:
                raise ParseError("tenant ids must be integers", self._current.position)
            ids.append(int(text))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return ast.TenantClause(ids=tuple(ids))

    def _parse_select_item(self) -> ast.SelectItem:
        if self._current.kind is TokenKind.OP and self._current.text == "*":
            self._advance()
            return ast.SelectItem(ast.Star())
        # alias.* needs lookahead: IDENT '.' '*'
        if (
            self._current.kind is TokenKind.IDENT
            and self._peek(1, TokenKind.PUNCT, ".")
            and self._peek(2, TokenKind.OP, "*")
        ):
            table = self._advance().text
            self._advance()  # .
            self._advance()  # *
            return ast.SelectItem(ast.Star(table))
        expr = self._parse_expr()
        alias: str | None = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif (
            self._current.kind is TokenKind.IDENT
            and self._current.text.upper() != "FOR"
        ):
            # FOR introduces the tenant clause, never an implicit alias.
            alias = self._advance().text
        return ast.SelectItem(expr, alias)

    def _peek(self, offset: int, kind: TokenKind, text: str) -> bool:
        idx = self._pos + offset
        if idx >= len(self._tokens):
            return False
        token = self._tokens[idx]
        return token.kind is kind and token.text == text

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expr()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expr, descending)

    def _parse_source(self) -> ast.Source:
        if self._accept_punct("("):
            select = self._parse_select()
            self._expect_punct(")")
            self._accept_keyword("AS")
            alias = self._expect_ident()
            return ast.SubquerySource(select, alias)
        name = self._expect_ident()
        alias: str | None = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif (
            self._current.kind is TokenKind.IDENT
            and self._current.text.upper() != "FOR"
        ):
            # FOR introduces the tenant clause, never an implicit alias.
            alias = self._advance().text
        return ast.TableSource(name, alias)

    # -- expressions ----------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        if self._current.kind is TokenKind.OP and self._current.text in {
            "=", "<>", "<", "<=", ">", ">=",
        }:
            op = self._advance().text
            return ast.BinaryOp(op, left, self._parse_additive())
        if self._current.matches("IS"):
            self._advance()
            negated = self._accept_keyword("NOT") is not None
            self._expect_keyword("NULL")
            return ast.IsNull(left, negated)
        negated = False
        if self._current.matches("NOT"):
            # NOT IN / NOT BETWEEN / NOT LIKE
            self._advance()
            negated = True
        if self._accept_keyword("IN"):
            self._expect_punct("(")
            if self._current.matches("SELECT"):
                subquery = self._parse_select()
                self._expect_punct(")")
                return ast.InSubquery(left, subquery, negated)
            items = [self._parse_expr()]
            while self._accept_punct(","):
                items.append(self._parse_expr())
            self._expect_punct(")")
            return ast.InList(left, tuple(items), negated)
        if self._accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            between = ast.BinaryOp(
                "AND",
                ast.BinaryOp(">=", left, low),
                ast.BinaryOp("<=", left, high),
            )
            return ast.UnaryOp("NOT", between) if negated else between
        if self._accept_keyword("LIKE"):
            pattern = self._parse_additive()
            like = ast.BinaryOp("LIKE", left, pattern)
            return ast.UnaryOp("NOT", like) if negated else like
        if negated:
            raise ParseError("dangling NOT", self._current.position)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._current.kind is TokenKind.OP and self._current.text in {
            "+", "-", "||",
        }:
            op = self._advance().text
            left = ast.BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_primary()
        while self._current.kind is TokenKind.OP and self._current.text in {"*", "/"}:
            op = self._advance().text
            left = ast.BinaryOp(op, left, self._parse_primary())
        return left

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if token.kind is TokenKind.NUMBER:
            self._advance()
            if "." in token.text:
                return ast.Literal(float(token.text))
            return ast.Literal(int(token.text))
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.Literal(token.text)
        if token.kind is TokenKind.PARAM:
            self._advance()
            param = ast.Param(self._param_count)
            self._param_count += 1
            return param
        if token.matches("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.matches("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.matches("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.kind is TokenKind.OP and token.text == "-":
            self._advance()
            return ast.UnaryOp("-", self._parse_primary())
        if self._accept_punct("("):
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        if token.kind is TokenKind.IDENT:
            name = self._advance().text
            if self._accept_punct("("):
                return self._finish_function(name)
            if self._accept_punct("."):
                column = self._expect_ident()
                return ast.ColumnRef(name, column)
            return ast.ColumnRef(None, name)
        raise ParseError(
            f"unexpected token {token.text or 'end of input'!r} in expression",
            token.position,
        )

    def _finish_function(self, name: str) -> ast.Expr:
        if self._current.kind is TokenKind.OP and self._current.text == "*":
            self._advance()
            self._expect_punct(")")
            return ast.FuncCall(name.upper(), star=True)
        distinct = self._accept_keyword("DISTINCT") is not None
        args: list[ast.Expr] = []
        if not self._accept_punct(")"):
            args.append(self._parse_expr())
            while self._accept_punct(","):
                args.append(self._parse_expr())
            self._expect_punct(")")
        return ast.FuncCall(name.upper(), tuple(args), distinct=distinct)

    # -- DML ----------------------------------------------------------------------

    def _parse_insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident()
        columns: list[str] = []
        if self._accept_punct("("):
            columns.append(self._expect_ident())
            while self._accept_punct(","):
                columns.append(self._expect_ident())
            self._expect_punct(")")
        self._expect_keyword("VALUES")
        rows: list[tuple[ast.Expr, ...]] = []
        while True:
            self._expect_punct("(")
            row = [self._parse_expr()]
            while self._accept_punct(","):
                row.append(self._parse_expr())
            self._expect_punct(")")
            rows.append(tuple(row))
            if not self._accept_punct(","):
                break
        return ast.Insert(table, tuple(columns), tuple(rows))

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_ident()
        self._expect_keyword("SET")
        assignments: list[tuple[str, ast.Expr]] = []
        while True:
            column = self._expect_ident()
            if not (self._current.kind is TokenKind.OP and self._current.text == "="):
                raise ParseError("expected = in SET", self._current.position)
            self._advance()
            assignments.append((column, self._parse_expr()))
            if not self._accept_punct(","):
                break
        where: ast.Expr | None = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expr()
        return ast.Update(table, tuple(assignments), where)

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where: ast.Expr | None = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expr()
        return ast.Delete(table, where)

    # -- DDL ----------------------------------------------------------------------

    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        unique = self._accept_keyword("UNIQUE") is not None
        if self._accept_keyword("INDEX"):
            index = self._expect_ident()
            self._expect_keyword("ON")
            table = self._expect_ident()
            self._expect_punct("(")
            columns = [self._expect_ident()]
            while self._accept_punct(","):
                columns.append(self._expect_ident())
            self._expect_punct(")")
            return ast.CreateIndex(index, table, tuple(columns), unique)
        if unique:
            raise ParseError("UNIQUE only applies to indexes", self._current.position)
        self._expect_keyword("TABLE")
        table = self._expect_ident()
        self._expect_punct("(")
        columns: list[ast.ColumnDef] = []
        while True:
            name = self._expect_ident()
            type_text = self._expect_ident()
            if self._accept_punct("("):
                if self._current.kind is not TokenKind.NUMBER:
                    raise ParseError("expected length", self._current.position)
                length = self._advance().text
                self._expect_punct(")")
                type_text = f"{type_text}({length})"
            not_null = False
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                not_null = True
            columns.append(ast.ColumnDef(name, type_text, not_null))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        # Optional storage clause: CREATE TABLE t (...) USING columnar.
        # USING is not a reserved word, so match it as an identifier.
        storage: str | None = None
        if (
            self._current.kind is TokenKind.IDENT
            and self._current.text.upper() == "USING"
        ):
            self._advance()
            storage = self._expect_ident().lower()
        return ast.CreateTable(table, tuple(columns), storage)

    def _parse_drop(self) -> ast.Statement:
        self._expect_keyword("DROP")
        if self._accept_keyword("TABLE"):
            return ast.DropTable(self._expect_ident())
        self._expect_keyword("INDEX")
        index = self._expect_ident()
        self._expect_keyword("ON")
        table = self._expect_ident()
        return ast.DropIndex(index, table)


def parse_statement(sql: str) -> ast.Statement:
    """Parse one SQL statement into its AST."""
    return _Parser(sql).parse()
