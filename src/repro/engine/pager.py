"""Pages and the instrumented buffer pool.

Everything the engine reads or writes goes through a :class:`BufferPool`,
which maintains the counters the paper reports: logical page reads,
physical page reads, and buffer-pool hit ratios split between *data* and
*index* pages (Table 2, Figures 7(c) and 10).

The pool's page capacity is derived from a memory budget, from which the
catalog first subtracts a fixed per-table meta-data cost (4 KB per table
by default — the DB2 V9.1 figure quoted in Section 1.1 of the paper).
This coupling is the mechanism behind Experiment 1: more tables leave
fewer pool frames, so index root/leaf pages start thrashing.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from .errors import EngineError

#: Default page size, 8 KB — the page size used for all user data and
#: indexes in the paper's experiment (Section 5).
DEFAULT_PAGE_SIZE = 8192

#: Per-page header / slot directory overhead we charge before payload.
PAGE_HEADER = 96


class PageKind(enum.Enum):
    """Data pages belong to heap files, index pages to B-trees."""

    DATA = "data"
    INDEX = "index"


@dataclass
class Page:
    """A fixed-size page owned by one segment (heap file or index).

    ``payload`` is interpreted by the owning structure: a list of rows for
    heap pages, a node object for index pages.  ``used`` is the number of
    payload bytes currently accounted for, maintained by the owner.
    """

    page_id: int
    segment_id: int
    kind: PageKind
    size: int
    used: int = 0
    payload: Any = None
    #: WAL LSN current when the page was last dirtied (disk-backed mode
    #: only; drives the WAL rule on writeback).  0 in memory mode.
    lsn: int = 0

    @property
    def capacity(self) -> int:
        """Usable payload bytes."""
        return self.size - PAGE_HEADER

    @property
    def free(self) -> int:
        return self.capacity - self.used


@dataclass
class PoolStats:
    """Read/write counters, split by page kind.

    *Logical* reads count every page access; *physical* reads count the
    subset that missed the buffer pool.  The hit ratio is
    ``1 - physical/logical`` as in DB2's bufferpool snapshot.

    Frame drops are attributed by cause: ``evictions`` counts only
    capacity-pressure LRU victims; drops forced by a pool ``resize()``
    (the Experiment 1 DDL path) land in ``resize_evictions`` so a delta
    taken across a resize never charges DDL work to the workload.
    ``writebacks`` counts dirty frames dropped by any cause.
    """

    logical_data: int = 0
    logical_index: int = 0
    physical_data: int = 0
    physical_index: int = 0
    writes: int = 0
    evictions: int = 0
    resize_evictions: int = 0
    writebacks: int = 0

    @property
    def logical_total(self) -> int:
        return self.logical_data + self.logical_index

    @property
    def physical_total(self) -> int:
        return self.physical_data + self.physical_index

    def hit_ratio(self, kind: PageKind | None = None) -> float:
        """Buffer-pool hit ratio in [0, 1]; 1.0 when nothing was read."""
        if kind is PageKind.DATA:
            logical, physical = self.logical_data, self.physical_data
        elif kind is PageKind.INDEX:
            logical, physical = self.logical_index, self.physical_index
        else:
            logical, physical = self.logical_total, self.physical_total
        if logical == 0:
            return 1.0
        return 1.0 - physical / logical

    def snapshot(self) -> "PoolStats":
        return PoolStats(**vars(self))

    def delta(self, earlier: "PoolStats") -> "PoolStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return PoolStats(
            **{k: getattr(self, k) - getattr(earlier, k) for k in vars(self)}
        )


@dataclass
class _Frame:
    page: Page
    pins: int = 0
    dirty: bool = False


class BufferPool:
    """An LRU buffer pool over a simulated or real disk.

    In memory mode (the default) the "disk" is the ``_disk`` dict: pages
    never disappear, but accessing a page that is not resident counts as
    a physical read and may evict the least-recently-used unpinned
    frame.  Pinned pages (e.g. B-tree root pages during a descent) are
    never evicted.

    With a ``store`` (a :class:`~repro.engine.durability.pagestore.DiskPageStore`)
    the pool is disk-backed: misses read page images from segment files,
    dirty frames are written back on eviction/flush, and the WAL rule is
    enforced through ``durability`` before any dirty page reaches disk.
    The counting contract is identical in both modes.
    """

    def __init__(
        self,
        capacity_pages: int,
        page_size: int = DEFAULT_PAGE_SIZE,
        *,
        metrics=None,
        store=None,
        durability=None,
    ):
        if capacity_pages < 1:
            raise EngineError("buffer pool needs at least one frame")
        self.capacity_pages = capacity_pages
        self.page_size = page_size
        self.stats = PoolStats()
        self._store = store
        self._durability = durability
        self._disk: dict[int, Page] = {}
        self._frames: OrderedDict[int, _Frame] = OrderedDict()
        self._next_page_id = 1
        # Optional dynamic sanitizer (WAL-rule + pin-leak checking).
        self.sanitizer = None
        # Optional MetricsRegistry; counters are pre-bound so the hot
        # read path pays one attribute check, not a name lookup.
        self.metrics = metrics
        if metrics is not None:
            # Split per-kind attributes (not an enum-keyed dict): the
            # read path branches on ``kind is PageKind.DATA`` anyway,
            # and hashing an enum per logical read is measurable.
            self._c_logical_data = metrics.counter("pool.data.logical_reads")
            self._c_logical_index = metrics.counter("pool.index.logical_reads")
            self._c_physical = {
                PageKind.DATA: metrics.counter("pool.data.physical_reads"),
                PageKind.INDEX: metrics.counter("pool.index.physical_reads"),
            }
            self._c_writes = metrics.counter("pool.writes")
            self._c_evictions = metrics.counter("pool.evictions")
            self._c_resize_evictions = metrics.counter("pool.resize_evictions")
            self._c_writebacks = metrics.counter("pool.writebacks")
            self._g_resident = metrics.gauge("pool.resident_pages")
            self._g_capacity = metrics.gauge("pool.capacity_pages")
            self._g_capacity.set(capacity_pages)
        else:
            self._c_writes = None

    def _sync_resident_gauge(self) -> None:
        if self.metrics is not None:
            self._g_resident.set(len(self._frames))

    # -- allocation -------------------------------------------------------

    def allocate(
        self, segment_id: int, kind: PageKind, *, pin: bool = False
    ) -> Page:
        """Create a new page, resident and counted as a write."""
        page = Page(self._next_page_id, segment_id, kind, self.page_size)
        self._next_page_id += 1
        if self._store is None:
            self._disk[page.page_id] = page
            frame = self._admit(page)
        else:
            # A fresh page is born dirty: it exists nowhere on disk yet,
            # so it must be written back even if never marked again.
            page.lsn = self._durability.current_lsn
            frame = self._admit(page)
            frame.dirty = True
        if pin:
            frame.pins += 1
        self.stats.writes += 1
        if self._c_writes is not None:
            self._c_writes.inc()
        return page

    def free_segment(self, segment_id: int) -> int:
        """Drop every page of a segment (DROP TABLE/INDEX). Returns count."""
        if self._store is not None:
            doomed = self.pages_in_segment(segment_id)
            for pid in doomed:
                self._frames.pop(pid, None)
            self._store.free_segment(segment_id)
            self._sync_resident_gauge()
            return len(doomed)
        doomed = [pid for pid, p in self._disk.items() if p.segment_id == segment_id]
        for pid in doomed:
            self._frames.pop(pid, None)
            del self._disk[pid]
        self._sync_resident_gauge()
        return len(doomed)

    # -- access -----------------------------------------------------------

    def read(self, page_id: int, *, pin: bool = False) -> Page:
        """Access a page, recording a logical (and possibly physical) read."""
        if self._store is not None:
            frame = self._frames.get(page_id)
            if frame is not None:
                page = frame.page
                self._count_logical(page.kind)
                self._frames.move_to_end(page_id)
            else:
                page = self._store.read(page_id)
                self._count_logical(page.kind)
                if page.kind is PageKind.DATA:
                    self.stats.physical_data += 1
                else:
                    self.stats.physical_index += 1
                if self._c_writes is not None:
                    self._c_physical[page.kind].inc()
                frame = self._admit(page)
            if pin:
                frame.pins += 1
            return page
        page = self._disk.get(page_id)
        if page is None:
            raise EngineError(f"page {page_id} does not exist")
        # _count_logical, inlined: this is the all-in-memory hot path
        # and the call frame itself is measurable at fig9 probe rates.
        stats = self.stats
        if page.kind is PageKind.DATA:
            stats.logical_data += 1
            if self._c_writes is not None:
                self._c_logical_data.inc()
        else:
            stats.logical_index += 1
            if self._c_writes is not None:
                self._c_logical_index.inc()
        frame = self._frames.get(page_id)
        if frame is None:
            if page.kind is PageKind.DATA:
                self.stats.physical_data += 1
            else:
                self.stats.physical_index += 1
            if self._c_writes is not None:
                self._c_physical[page.kind].inc()
            frame = self._admit(page)
        else:
            self._frames.move_to_end(page_id)
        if pin:
            frame.pins += 1
        return page

    def _count_logical(self, kind: PageKind) -> None:
        stats = self.stats
        if kind is PageKind.DATA:
            stats.logical_data += 1
            if self._c_writes is not None:
                self._c_logical_data.inc()
        else:
            stats.logical_index += 1
            if self._c_writes is not None:
                self._c_logical_index.inc()

    def unpin(self, page_id: int) -> None:
        frame = self._frames.get(page_id)
        if frame is not None and frame.pins > 0:
            frame.pins -= 1

    def mark_dirty(self, page_id: int) -> None:
        """Record a write to a resident page."""
        frame = self._frames.get(page_id)
        if frame is not None:
            frame.dirty = True
            if self._store is not None:
                # Stamp with the current log position: the WAL rule will
                # flush through this LSN before the page hits disk.
                frame.page.lsn = self._durability.current_lsn
            if self.sanitizer is not None:
                self.sanitizer.on_page_dirty(frame.page)
        elif self._store is not None:
            # In disk mode a mutation to a non-resident page would be
            # silently lost — fail fast (callers pin across the window
            # between read and mark_dirty).
            raise EngineError(f"mark_dirty of non-resident page {page_id}")
        self.stats.writes += 1
        if self._c_writes is not None:
            self._c_writes.inc()

    # -- cache control ------------------------------------------------------

    def flush(self) -> None:
        """Empty the pool (cold-cache experiments, Figure 11).  Dropping
        dirty frames counts as writebacks but not as evictions — a flush
        is an experiment control, not capacity pressure."""
        for frame in self._frames.values():
            if frame.dirty:
                if self._store is not None:
                    self._writeback(frame.page)
                self._record_writeback()
        self._frames.clear()
        self._sync_resident_gauge()

    def write_back_all(self) -> None:
        """Write every dirty frame to the store without dropping it
        (checkpoint: the pool stays warm, the disk becomes current)."""
        if self._store is None:
            return
        for frame in self._frames.values():
            if frame.dirty:
                self._writeback(frame.page)
                frame.dirty = False

    def resize(self, capacity_pages: int) -> None:
        """Shrink/grow the pool; used when DDL changes the meta-data
        budget.  Frames dropped by the shrink are counted under
        ``resize_evictions`` (not ``evictions``) so workload deltas taken
        across a resize stay attributable to the workload."""
        if capacity_pages < 1:
            capacity_pages = 1
        self.capacity_pages = capacity_pages
        if self.metrics is not None:
            self._g_capacity.set(capacity_pages)
        self._evict_to_capacity(resize=True)

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    @property
    def next_page_id(self) -> int:
        return self._next_page_id

    @next_page_id.setter
    def next_page_id(self, value: int) -> None:
        self._next_page_id = value

    @property
    def durable(self) -> bool:
        """True when the pool is backed by a real on-disk page store."""
        return self._store is not None

    def pages_in_segment(self, segment_id: int) -> set[int]:
        """All page ids a segment currently owns (on disk or frame-only)."""
        if self._store is not None:
            pids = set(self._store.pages_in_segment(segment_id))
            pids.update(
                pid
                for pid, frame in self._frames.items()
                if frame.page.segment_id == segment_id
            )
            return pids
        return {
            pid for pid, p in self._disk.items() if p.segment_id == segment_id
        }

    def resident_ratio(self, segment_ids: set[int]) -> float:
        """Fraction of a segment set's pages currently resident."""
        if self._store is not None:
            total_pids: set[int] = set()
            for segment_id in segment_ids:
                total_pids |= self.pages_in_segment(segment_id)
            if not total_pids:
                return 1.0
            resident = sum(
                1
                for pid, frame in self._frames.items()
                if frame.page.segment_id in segment_ids
            )
            return resident / len(total_pids)
        total = sum(1 for p in self._disk.values() if p.segment_id in segment_ids)
        if total == 0:
            return 1.0
        resident = sum(
            1
            for pid in self._frames
            if self._disk[pid].segment_id in segment_ids
        )
        return resident / total

    # -- internals ----------------------------------------------------------

    def _admit(self, page: Page) -> _Frame:
        frame = _Frame(page)
        self._frames[page.page_id] = frame
        self._frames.move_to_end(page.page_id)
        self._evict_to_capacity()
        self._sync_resident_gauge()
        return frame

    def _record_writeback(self) -> None:
        self.stats.writebacks += 1
        if self._c_writes is not None:
            self._c_writebacks.inc()

    def _writeback(self, page: Page) -> None:
        """Persist one dirty page, honoring the WAL rule first."""
        if self._durability is not None:
            self._durability.before_page_write(page)
        if self.sanitizer is not None:
            self.sanitizer.on_page_writeback(page)
        self._store.write(page, page.lsn)

    def _evict_to_capacity(self, *, resize: bool = False) -> None:
        while len(self._frames) > self.capacity_pages:
            victim_id = None
            victim = None
            for pid, frame in self._frames.items():
                if frame.pins == 0:
                    victim_id, victim = pid, frame
                    break
            if victim_id is None:
                # Everything pinned: allow temporary over-commit rather
                # than deadlocking the simulation.
                return
            del self._frames[victim_id]
            if victim.dirty:
                if self._store is not None:
                    self._writeback(victim.page)
                self._record_writeback()
            if resize:
                self.stats.resize_evictions += 1
                if self._c_writes is not None:
                    self._c_resize_evictions.inc()
            else:
                self.stats.evictions += 1
                if self._c_writes is not None:
                    self._c_evictions.inc()
        self._sync_resident_gauge()
