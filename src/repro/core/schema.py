"""Logical multi-tenant schema model.

The application layer of a hosted service (Section 1.1) presents each
tenant with *single-tenant logical schemas*: a shared base schema plus
optional extensions (e.g. health care or automotive additions to the
Account table of Figure 4).  A :class:`MultiTenantSchema` holds the base
tables, the extension definitions, and each tenant's chosen extensions;
every layout maps this one logical model to its own physical schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.errors import CatalogError, UnknownObjectError
from ..engine.values import SqlType


@dataclass(frozen=True)
class LogicalColumn:
    """One column of a logical table as a tenant sees it.

    ``indexed`` requests per-tenant index support; generic layouts honor
    it by placing the column in an indexed generic table (Pivot/Chunk)
    or ignore it when the layout cannot index individually (Universal —
    "either all tenants get an index on a column or none of them do").
    """

    name: str
    type: SqlType
    indexed: bool = False
    not_null: bool = False

    @property
    def lname(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class LogicalTable:
    """A base table of the application schema."""

    name: str
    columns: tuple[LogicalColumn, ...]

    def __post_init__(self) -> None:
        names = [c.lname for c in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in {self.name}")

    @property
    def lname(self) -> str:
        return self.name.lower()

    def column(self, name: str) -> LogicalColumn:
        for col in self.columns:
            if col.lname == name.lower():
                return col
        raise UnknownObjectError(f"no column {name!r} in {self.name}")

    def has_column(self, name: str) -> bool:
        return any(c.lname == name.lower() for c in self.columns)


@dataclass(frozen=True)
class Extension:
    """Extra columns a group of tenants adds to one base table, e.g. the
    health-care extension of Figure 4 adding (Hospital, Beds)."""

    name: str
    base_table: str
    columns: tuple[LogicalColumn, ...]

    @property
    def lname(self) -> str:
        return self.name.lower()


@dataclass
class TenantConfig:
    """One tenant's subscription: which extensions it applies."""

    tenant_id: int
    extensions: set[str] = field(default_factory=set)


class MultiTenantSchema:
    """The logical model shared by all layouts.

    Tables and extensions get stable small integer ids; generic layouts
    store these ids in their ``tenant`` / ``tbl`` meta-data columns.
    """

    def __init__(self) -> None:
        self._tables: dict[str, LogicalTable] = {}
        self._table_ids: dict[str, int] = {}
        self._extensions: dict[str, Extension] = {}
        self._tenants: dict[int, TenantConfig] = {}

    # -- definition -------------------------------------------------------

    def add_table(self, table: LogicalTable) -> None:
        if table.lname in self._tables:
            raise CatalogError(f"base table {table.name!r} already defined")
        self._table_ids[table.lname] = len(self._table_ids)
        self._tables[table.lname] = table

    def add_extension(self, extension: Extension) -> None:
        if extension.lname in self._extensions:
            raise CatalogError(f"extension {extension.name!r} already defined")
        base = self.table(extension.base_table)
        for col in extension.columns:
            if base.has_column(col.name):
                raise CatalogError(
                    f"extension column {col.name!r} collides with base "
                    f"column of {base.name}"
                )
        self._extensions[extension.lname] = extension

    def add_tenant(self, tenant_id: int, extensions: tuple[str, ...] = ()) -> TenantConfig:
        if tenant_id in self._tenants:
            raise CatalogError(f"tenant {tenant_id} already exists")
        for name in extensions:
            self.extension(name)  # validate
        config = TenantConfig(tenant_id, {e.lower() for e in extensions})
        self._tenants[tenant_id] = config
        return config

    def remove_tenant(self, tenant_id: int) -> TenantConfig:
        try:
            return self._tenants.pop(tenant_id)
        except KeyError:
            raise UnknownObjectError(f"no tenant {tenant_id}") from None

    def grant_extension(self, tenant_id: int, extension_name: str) -> None:
        self.extension(extension_name)  # validate
        self.tenant(tenant_id).extensions.add(extension_name.lower())

    def alter_extension(
        self, extension_name: str, new_columns: tuple[LogicalColumn, ...]
    ) -> Extension:
        """Widen an extension in place (online ALTER, §6.3): existing
        rows read NULL for the new columns."""
        old = self.extension(extension_name)
        base = self.table(old.base_table)
        existing = {c.lname for c in old.columns}
        for col in new_columns:
            if base.has_column(col.name) or col.lname in existing:
                raise CatalogError(
                    f"column {col.name!r} already exists on "
                    f"{old.base_table}/{old.name}"
                )
        altered = Extension(
            old.name, old.base_table, old.columns + tuple(new_columns)
        )
        self._extensions[old.lname] = altered
        return altered

    # -- lookup -------------------------------------------------------------

    def table(self, name: str) -> LogicalTable:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise UnknownObjectError(f"no base table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_id(self, name: str) -> int:
        return self._table_ids[name.lower()]

    def extension(self, name: str) -> Extension:
        try:
            return self._extensions[name.lower()]
        except KeyError:
            raise UnknownObjectError(f"no extension {name!r}") from None

    def tenant(self, tenant_id: int) -> TenantConfig:
        try:
            return self._tenants[tenant_id]
        except KeyError:
            raise UnknownObjectError(f"no tenant {tenant_id}") from None

    def tables(self) -> list[LogicalTable]:
        return list(self._tables.values())

    def extensions(self) -> list[Extension]:
        return list(self._extensions.values())

    def tenants(self) -> list[TenantConfig]:
        return list(self._tenants.values())

    def extensions_of(self, tenant_id: int, table_name: str) -> list[Extension]:
        """This tenant's extensions that apply to one base table."""
        config = self.tenant(tenant_id)
        return [
            self._extensions[name]
            for name in sorted(config.extensions)
            if self._extensions[name].base_table.lower() == table_name.lower()
        ]

    def tenants_with_extension(self, extension_name: str) -> list[int]:
        key = extension_name.lower()
        return [
            t.tenant_id for t in self._tenants.values() if key in t.extensions
        ]

    # -- the tenant's view ------------------------------------------------------

    def logical_table(self, tenant_id: int, table_name: str) -> LogicalTable:
        """The table as this tenant sees it: base + its extensions."""
        base = self.table(table_name)
        columns = list(base.columns)
        for extension in self.extensions_of(tenant_id, table_name):
            columns.extend(extension.columns)
        return LogicalTable(base.name, tuple(columns))

    def logical_lookup(self, tenant_id: int):
        """A column-name lookup usable by the engine's qualifier."""

        def lookup(table_name: str) -> list[str]:
            return [
                c.lname for c in self.logical_table(tenant_id, table_name).columns
            ]

        return lookup

    def column_origin(
        self, tenant_id: int, table_name: str, column_name: str
    ) -> Extension | None:
        """None when the column is part of the base table; otherwise the
        extension that contributes it."""
        base = self.table(table_name)
        if base.has_column(column_name):
            return None
        for extension in self.extensions_of(tenant_id, table_name):
            for col in extension.columns:
                if col.lname == column_name.lower():
                    return extension
        raise UnknownObjectError(
            f"tenant {tenant_id} has no column {column_name!r} in {table_name}"
        )
