"""A representative logical-statement corpus over the CRM schema.

The isolation verifier proves guard discipline on the *emitted physical
statements*, so coverage comes from driving the transformers with the
statement shapes the paper's testbed uses (Section 4.2's action
classes): point and range selects on reporting indexes, parent-child
joins, aggregates with grouping, IN-subqueries, and single-row DML —
over base columns and, for subscribed tenants, extension columns.
"""

from __future__ import annotations

from collections.abc import Collection
from dataclasses import dataclass

from ..testbed.crm import CRM_PARENTS, instance_table_name


@dataclass(frozen=True)
class CorpusStatement:
    """One logical statement plus parameters to execute it with."""

    sql: str
    params: tuple = ()
    #: Whether execution mutates data (DML is replayed through the
    #: recording wrapper instead of the SELECT-transformation probes).
    is_dml: bool = False


def select_corpus(instance: int = 0, tables: int = 3) -> list[CorpusStatement]:
    """Logical SELECT shapes over the first ``tables`` CRM tables."""
    statements: list[CorpusStatement] = []
    names = ["account", "contact", "opportunity", "campaign", "lead"][:tables]
    for base in names:
        table = instance_table_name(base, instance)
        statements += [
            CorpusStatement(f"SELECT COUNT(*) FROM {table}"),
            CorpusStatement(
                f"SELECT id, name, status FROM {table} WHERE id = ?", (1,)
            ),
            CorpusStatement(
                f"SELECT id, created FROM {table} "
                f"WHERE created BETWEEN '2000-01-01' AND '2030-01-01' "
                f"ORDER BY created DESC"
            ),
            CorpusStatement(
                f"SELECT status, COUNT(*), MAX(score) FROM {table} "
                f"GROUP BY status HAVING COUNT(*) >= 1"
            ),
            CorpusStatement(
                f"SELECT UPPER(name) FROM {table} WHERE name LIKE 'A%'"
            ),
        ]
        parent = CRM_PARENTS.get(base)
        if parent is not None:
            parent_table = instance_table_name(parent, instance)
            statements += [
                CorpusStatement(
                    f"SELECT c.id, p.name FROM {table} c, {parent_table} p "
                    f"WHERE c.parent = p.id AND p.id = ?",
                    (1,),
                ),
                CorpusStatement(
                    f"SELECT id FROM {table} WHERE parent IN "
                    f"(SELECT id FROM {parent_table} WHERE name LIKE '%')"
                ),
            ]
    return statements


def extension_corpus(
    extensions: Collection[str], instance: int = 0
) -> list[CorpusStatement]:
    """Statements touching the columns of the tenant's granted
    extensions (other tenants cannot even name these columns)."""
    account = instance_table_name("account", instance)
    contact = instance_table_name("contact", instance)
    statements: list[CorpusStatement] = []
    if "healthcare" in extensions:
        statements.append(
            CorpusStatement(
                f"SELECT id, hospital, beds FROM {account} WHERE beds > ?",
                (0,),
            )
        )
    if "automotive" in extensions:
        statements.append(
            CorpusStatement(
                f"SELECT id, dealers FROM {account} WHERE dealers >= ?", (0,)
            )
        )
    if "gdpr" in extensions:
        statements.append(
            CorpusStatement(
                f"SELECT COUNT(*) FROM {contact} WHERE consent = ?", (True,)
            )
        )
    return statements


def cross_tenant_corpus(
    tenant_ids: Collection[int], instance: int = 0
) -> list[CorpusStatement]:
    """MTSQL cross-tenant shapes: fused scans, grouped-by-tenant
    rollups, and explicit tenant-set restriction — the statement class
    rule ISO006 governs.  Only base columns appear (extension columns
    are not shared across the declared set)."""
    account = instance_table_name("account", instance)
    ids = ", ".join(str(t) for t in sorted(tenant_ids))
    statements = [
        CorpusStatement(
            f"SELECT TENANT_ID(), COUNT(*), SUM(quantity) FROM {account} "
            f"GROUP BY TENANT_ID() ORDER BY TENANT_ID() FOR ALL TENANTS"
        ),
        CorpusStatement(
            f"SELECT TENANT_ID() AS t, name FROM {account} "
            f"WHERE status = 'open' ORDER BY t, name FOR ALL TENANTS"
        ),
        CorpusStatement(
            f"SELECT status, COUNT(*) FROM {account} GROUP BY status "
            f"ORDER BY status FOR ALL TENANTS"
        ),
    ]
    if ids:
        statements.append(
            CorpusStatement(
                f"SELECT TENANT_ID(), MAX(score) FROM {account} "
                f"GROUP BY TENANT_ID() FOR TENANTS IN ({ids})"
            )
        )
    return statements


def dml_corpus(instance: int = 0) -> list[CorpusStatement]:
    """Single-row DML over the account table (phase a/b machinery)."""
    account = instance_table_name("account", instance)
    return [
        CorpusStatement(
            f"INSERT INTO {account} (id, name, status, quantity, created) "
            f"VALUES (?, ?, 'new', 1, '2008-06-09')",
            (9001, "Analysis Probe"),
            is_dml=True,
        ),
        CorpusStatement(
            f"UPDATE {account} SET status = ?, score = 10 WHERE id = ?",
            ("checked", 9001),
            is_dml=True,
        ),
        CorpusStatement(
            f"UPDATE {account} SET quantity = quantity + 1 "
            f"WHERE status = 'checked'",
            (),
            is_dml=True,
        ),
        CorpusStatement(
            f"DELETE FROM {account} WHERE id = ?", (9001,), is_dml=True
        ),
    ]
