"""Tests for BEGIN / COMMIT / ROLLBACK and the logical undo log."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Database
from repro.engine.errors import EngineError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (id INTEGER NOT NULL, val INTEGER, tag VARCHAR(10))"
    )
    database.execute("CREATE UNIQUE INDEX t_pk ON t (id)")
    for i in range(1, 6):
        database.execute("INSERT INTO t VALUES (?, ?, ?)", [i, i * 10, "base"])
    return database


def dump(db):
    return sorted(db.execute("SELECT * FROM t").rows)


class TestLifecycle:
    def test_commit_keeps_changes(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (9, 90, 'tx')")
        db.execute("COMMIT")
        assert (9, 90, "tx") in dump(db)

    def test_rollback_undoes_insert(self, db):
        before = dump(db)
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (9, 90, 'tx')")
        db.execute("ROLLBACK")
        assert dump(db) == before

    def test_rollback_undoes_update(self, db):
        before = dump(db)
        db.execute("BEGIN")
        db.execute("UPDATE t SET val = val + 1000")
        db.execute("ROLLBACK")
        assert dump(db) == before

    def test_rollback_undoes_delete(self, db):
        before = dump(db)
        db.execute("BEGIN")
        db.execute("DELETE FROM t WHERE id <= 3")
        db.execute("ROLLBACK")
        assert dump(db) == before

    def test_rollback_undoes_mixed_sequence(self, db):
        before = dump(db)
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (7, 70, 'a')")
        db.execute("UPDATE t SET val = 0 WHERE id = 7")
        db.execute("DELETE FROM t WHERE id = 2")
        db.execute("UPDATE t SET tag = 'x' WHERE id = 1")
        db.execute("ROLLBACK")
        assert dump(db) == before

    def test_rollback_restores_index_consistency(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE t SET id = 99 WHERE id = 1")
        db.execute("ROLLBACK")
        assert db.execute("SELECT val FROM t WHERE id = 1").rows == [(10,)]
        assert db.execute("SELECT val FROM t WHERE id = 99").rows == []

    def test_insert_then_delete_same_row_rolls_back(self, db):
        before = dump(db)
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (8, 80, 'temp')")
        db.execute("DELETE FROM t WHERE id = 8")
        db.execute("ROLLBACK")
        assert dump(db) == before

    def test_delete_then_reinsert_rolls_back(self, db):
        before = dump(db)
        db.execute("BEGIN")
        db.execute("DELETE FROM t WHERE id = 3")
        db.execute("INSERT INTO t VALUES (3, 999, 'new')")
        db.execute("ROLLBACK")
        assert dump(db) == before


class TestErrors:
    def test_nested_begin_rejected(self, db):
        db.execute("BEGIN")
        with pytest.raises(EngineError):
            db.execute("BEGIN")

    def test_commit_without_begin_rejected(self, db):
        with pytest.raises(EngineError):
            db.execute("COMMIT")

    def test_rollback_without_begin_rejected(self, db):
        with pytest.raises(EngineError):
            db.execute("ROLLBACK")

    def test_autocommit_outside_transaction(self, db):
        db.execute("INSERT INTO t VALUES (42, 0, 'auto')")
        assert not db.transactions.active
        assert (42, 0, "auto") in dump(db)

    def test_ddl_commits_open_transaction(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (55, 0, 'ddl')")
        db.execute("CREATE TABLE other (x INTEGER)")
        assert not db.transactions.active
        assert (55, 0, "ddl") in dump(db)  # implicit commit kept it

    def test_counters(self, db):
        db.execute("BEGIN")
        db.execute("COMMIT")
        db.execute("BEGIN")
        db.execute("ROLLBACK")
        assert db.transactions.committed == 1
        assert db.transactions.rolled_back == 1


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("insert"), st.integers(100, 130), st.integers(0, 9)),
                st.tuples(st.just("update"), st.integers(1, 5), st.integers(0, 99)),
                st.tuples(st.just("delete"), st.integers(1, 5), st.just(0)),
                st.tuples(st.just("bump_all"), st.just(0), st.integers(1, 5)),
            ),
            max_size=12,
        )
    )
    def test_rollback_always_restores_state(self, ops):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER NOT NULL, val INTEGER)")
        db.execute("CREATE UNIQUE INDEX t_pk ON t (id)")
        for i in range(1, 6):
            db.execute("INSERT INTO t VALUES (?, ?)", [i, i])
        before = sorted(db.execute("SELECT * FROM t").rows)
        db.execute("BEGIN")
        inserted = set(range(1, 6))
        for kind, a, b in ops:
            if kind == "insert" and a not in inserted:
                db.execute("INSERT INTO t VALUES (?, ?)", [a, b])
                inserted.add(a)
            elif kind == "update":
                db.execute("UPDATE t SET val = ? WHERE id = ?", [b, a])
            elif kind == "delete":
                db.execute("DELETE FROM t WHERE id = ?", [a])
            elif kind == "bump_all":
                db.execute("UPDATE t SET val = val + ?", [b])
        db.execute("ROLLBACK")
        assert sorted(db.execute("SELECT * FROM t").rows) == before
        # Point lookups through the index still work for every row.
        for row_id, val in before:
            assert db.execute(
                "SELECT val FROM t WHERE id = ?", [row_id]
            ).rows == [(val,)]
