"""Tests for shape covers: spending a bounded meta-data budget on
Chunk Tables (merge/fit/waste algebra + layout integration)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.folding import (
    ChunkShape,
    assign_cover,
    merge_shapes,
    select_cover_shapes,
    shape_fits,
    shape_waste,
    total_waste,
)
from repro.engine.errors import PlanError

from .conftest import build_running_example

I1S1 = ChunkShape(ints=1, strs=1)
I2 = ChunkShape(ints=2)
S2D1 = ChunkShape(strs=2, dates=1)
WIDE = ChunkShape(ints=3, strs=3, dates=2, dbls=1)


class TestShapeAlgebra:
    def test_merge_is_elementwise_max(self):
        assert merge_shapes(I1S1, I2) == ChunkShape(ints=2, strs=1)

    def test_merge_commutes(self):
        assert merge_shapes(I1S1, S2D1) == merge_shapes(S2D1, I1S1)

    def test_fits(self):
        assert shape_fits(WIDE, I1S1)
        assert not shape_fits(I2, I1S1)  # no string slot

    def test_waste(self):
        assert shape_waste(WIDE, I1S1) == WIDE.width - 2
        assert shape_waste(I1S1, I1S1) == 0

    def test_waste_requires_fit(self):
        with pytest.raises(PlanError):
            shape_waste(I2, S2D1)

    shapes = st.builds(
        ChunkShape,
        ints=st.integers(0, 4),
        strs=st.integers(0, 4),
        dates=st.integers(0, 3),
        dbls=st.integers(0, 3),
    ).filter(lambda s: s.width > 0)

    @settings(max_examples=80, deadline=None)
    @given(a=shapes, b=shapes)
    def test_merge_fits_both(self, a, b):
        merged = merge_shapes(a, b)
        assert shape_fits(merged, a)
        assert shape_fits(merged, b)
        assert merged.width <= a.width + b.width


class TestCoverSelection:
    DEMAND = {I1S1: 100, I2: 50, S2D1: 20, WIDE: 5}

    def test_budget_at_distinct_count_is_identity(self):
        covers = select_cover_shapes(self.DEMAND, budget=4)
        assert set(covers) == set(self.DEMAND)
        assert total_waste(self.DEMAND, covers) == 0

    def test_budget_one_merges_everything(self):
        covers = select_cover_shapes(self.DEMAND, budget=1)
        assert len(covers) == 1
        for shape in self.DEMAND:
            assert shape_fits(covers[0], shape)

    def test_tighter_budget_never_reduces_waste(self):
        wastes = [
            total_waste(self.DEMAND, select_cover_shapes(self.DEMAND, b))
            for b in (4, 3, 2, 1)
        ]
        assert wastes == sorted(wastes)

    def test_heavy_shapes_stay_tight(self):
        """The greedy merge prefers padding light shapes: the heavy
        I1S1 demand should keep a zero-waste home at budget 3."""
        covers = select_cover_shapes(self.DEMAND, budget=3)
        assert shape_waste(assign_cover(covers, I1S1), I1S1) == 0

    def test_invalid_budget(self):
        with pytest.raises(PlanError):
            select_cover_shapes(self.DEMAND, budget=0)

    def test_empty_demand(self):
        assert select_cover_shapes({}, budget=3) == []

    @settings(max_examples=40, deadline=None)
    @given(
        demand=st.dictionaries(
            TestShapeAlgebra.shapes, st.integers(1, 50), min_size=1, max_size=6
        ),
        budget=st.integers(1, 6),
    )
    def test_cover_always_hosts_all_demand(self, demand, budget):
        covers = select_cover_shapes(demand, budget)
        assert len(covers) <= budget
        for shape in demand:
            assert shape_fits(assign_cover(covers, shape), shape)


class TestLayoutIntegration:
    def test_cover_shapes_bound_table_count(self):
        wide_cover = ChunkShape(ints=4, strs=4, dates=2)
        constrained = build_running_example(
            "chunk", width=2, cover_shapes=[wide_cover]
        )
        plain = build_running_example("chunk", width=2)
        chunk_tables = lambda mtd: {
            t.name
            for t in mtd.db.catalog.tables()
            if t.name.startswith("chunk_") and not t.name.endswith("_ix")
        }
        assert len(chunk_tables(constrained)) == 1
        assert len(chunk_tables(plain)) > 1

    def test_queries_still_correct_under_covers(self):
        wide_cover = ChunkShape(ints=4, strs=4, dates=2)
        mtd = build_running_example("chunk", width=2, cover_shapes=[wide_cover])
        assert mtd.execute(
            17, "SELECT beds FROM account WHERE hospital = 'State'"
        ).rows == [(1042,)]
        assert mtd.execute(17, "SELECT COUNT(*) FROM account").rows == [(2,)]

    def test_dml_still_correct_under_covers(self):
        wide_cover = ChunkShape(ints=4, strs=4, dates=2)
        mtd = build_running_example("chunk", width=2, cover_shapes=[wide_cover])
        mtd.execute(17, "UPDATE account SET beds = 7 WHERE aid = 2")
        assert mtd.execute(
            17, "SELECT beds FROM account WHERE aid = 2"
        ).rows == [(7,)]
        assert mtd.execute(17, "DELETE FROM account WHERE aid = 1").rowcount == 1

    def test_unfittable_chunk_raises(self):
        tiny_cover = ChunkShape(ints=1)
        with pytest.raises(PlanError):
            build_running_example("chunk", width=2, cover_shapes=[tiny_cover])
