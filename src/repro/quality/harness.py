"""Execute every plan alternative; record chosen-vs-best per layout.

For each corpus query, on each layout, the harness:

1. transforms the logical SQL through the layout (identity for the
   "conventional" baseline — the raw engine schema, no mapping),
2. enumerates the bounded plan space (:mod:`.planspace`),
3. executes every alternative under EXPLAIN ANALYZE on both engines,
   recording wall time per engine and a deterministic *work* cost
   (row-level executor counters plus logical page reads — the same
   units the planner's cost model reasons in, immune to timer noise),
4. harvests per-operator actual rows into the database's
   :class:`~repro.engine.feedback.CardinalityFeedback` store, re-plans,
   and records which plan the optimizer picks *after* feedback.

``chosen_work / best_work`` per query is the optimality ratio the CI
gate enforces on the conventional layout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..engine.explain import render_plan
from ..engine.observability import AnalyzeCollector
from ..engine.sql.parser import parse_statement
from .corpus import build_engine_database, build_multitenant, generate_query
from .planspace import enumerate_plans

#: Layouts the harness replays: the raw engine schema plus every
#: schema-mapping layout from the registry.
def all_layouts() -> list[str]:
    from ..core.layouts import LAYOUTS

    return ["conventional"] + sorted(LAYOUTS)


ENGINES = ("tuple", "vectorized")


def work_cost(exec_delta, pool_delta) -> int:
    """Deterministic plan cost in the planner's own units: rows touched
    plus index probes (weighted — a probe is a B+-tree descent, not one
    row) plus buffer-pool logical reads."""
    return (
        exec_delta.rows_scanned
        + exec_delta.rows_fetched
        + 3 * exec_delta.index_lookups
        + exec_delta.materialized_rows
        + pool_delta.logical_total
    )


@dataclass
class PlanMeasurement:
    """One executed plan alternative."""

    signature: str
    work: int
    wall_ms: dict[str, float]
    rows: int
    is_default: bool

    def to_dict(self) -> dict:
        return {
            "signature": self.signature,
            "work": self.work,
            "wall_ms": {k: round(v, 3) for k, v in self.wall_ms.items()},
            "rows": self.rows,
            "is_default": self.is_default,
        }


@dataclass
class QueryOutcome:
    """Chosen-vs-best for one corpus query on one layout."""

    seed: int
    sql: str
    physical_sql: str
    alternatives: int
    best: PlanMeasurement
    chosen: PlanMeasurement  #: the planner's default pick, pre-feedback
    chosen_after: PlanMeasurement  #: default pick after feedback
    max_q_error: float | None
    plan_changed: bool  #: did feedback change the chosen plan?

    @property
    def ratio_before(self) -> float:
        return self.chosen.work / max(1, self.best.work)

    @property
    def ratio_after(self) -> float:
        return self.chosen_after.work / max(1, self.best.work)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "sql": self.sql,
            "alternatives": self.alternatives,
            "best_work": self.best.work,
            "chosen_work": self.chosen.work,
            "chosen_after_work": self.chosen_after.work,
            "ratio_before": round(self.ratio_before, 4),
            "ratio_after": round(self.ratio_after, 4),
            "max_q_error": (
                round(self.max_q_error, 3)
                if self.max_q_error is not None
                else None
            ),
            "plan_changed": self.plan_changed,
            "wall_ms": self.chosen_after.to_dict()["wall_ms"],
        }


@dataclass
class LayoutOutcome:
    layout: str
    feedback: bool
    queries: list[QueryOutcome] = field(default_factory=list)

    def ratios_after(self) -> list[float]:
        return [q.ratio_after for q in self.queries]

    def optimal_rate(self, threshold: float = 1.5) -> float:
        """Fraction of queries whose post-feedback chosen plan is within
        ``threshold`` of the enumerated best."""
        if not self.queries:
            return 1.0
        within = sum(1 for r in self.ratios_after() if r <= threshold)
        return within / len(self.queries)

    def worst_ratio(self) -> float:
        return max(self.ratios_after(), default=1.0)


@dataclass
class HarnessConfig:
    seeds: tuple[int, ...] = tuple(range(15))
    budget: int = 24
    layouts: tuple[str, ...] = ()  #: empty = all layouts
    feedback: bool = True
    tenant: int = 1

    def resolved_layouts(self) -> list[str]:
        return list(self.layouts) if self.layouts else all_layouts()


def _normalized(rows) -> list:
    return sorted(rows, key=repr)


def _measure(db, stmt, directives) -> tuple[object, AnalyzeCollector, PlanMeasurement]:
    """Plan + execute one alternative on both engines.

    Returns the tuple-engine ``(root, collector)`` pair (what feedback
    learns from) and the measurement.  The work cost comes from the
    tuple run; both engines produce identical row counters for the same
    plan (the cross-engine suite asserts exactly that).
    """
    walls: dict[str, float] = {}
    work = rows = 0
    keep_root = keep_collector = keep_rows = None
    signature = ""
    try:
        for mode in ENGINES:
            db.execution = mode
            root = db.plan_ast(stmt, directives)
            collector = AnalyzeCollector()
            exec_before = db.exec_stats.snapshot()
            pool_before = db.pool.stats.snapshot()
            started = time.perf_counter()
            result = db.execute_plan(root, collector=collector)
            walls[mode] = (time.perf_counter() - started) * 1000.0
            if mode == "tuple":
                work = work_cost(
                    db.exec_stats.delta(exec_before),
                    db.pool.stats.delta(pool_before),
                )
                rows = len(result.rows)
                keep_root, keep_collector = root, collector
                keep_rows = _normalized(result.rows)
                signature = render_plan(root)
    finally:
        db.execution = "vectorized"
    measurement = PlanMeasurement(
        signature=signature,
        work=work,
        wall_ms=walls,
        rows=rows,
        is_default=directives is None,
    )
    return keep_root, keep_collector, keep_rows, measurement


def run_layout(
    layout: str,
    seeds,
    *,
    budget: int = 24,
    feedback: bool = True,
    tenant: int = 1,
) -> LayoutOutcome:
    """Replay the corpus on one layout; see the module docstring."""
    if layout == "conventional":
        db = build_engine_database()

        def transform(sql: str) -> str:
            return sql

    else:
        mtd = build_multitenant(layout, primary_tenant=tenant)
        db = mtd.db

        def transform(sql: str) -> str:
            return mtd.transform_sql(tenant, sql)

    if not feedback:
        db.feedback = None
    outcome = LayoutOutcome(layout=layout, feedback=feedback)
    for seed in seeds:
        sql = generate_query(seed)
        physical = transform(sql)
        stmt = parse_statement(physical)
        alternatives = enumerate_plans(db, stmt, budget)
        measured: list[PlanMeasurement] = []
        runs: list[tuple[object, AnalyzeCollector]] = []
        reference_rows = None
        for alternative in alternatives:
            root, collector, rows, measurement = _measure(
                db, stmt, alternative.directives
            )
            measured.append(measurement)
            runs.append((root, collector))
            # Every alternative is the same query; answers must agree —
            # the harness doubles as a directive-correctness check.
            if reference_rows is None:
                reference_rows = rows
            elif rows != reference_rows:
                raise RuntimeError(
                    f"plan alternative changed the answer for seed {seed} "
                    f"on {layout}: {measurement.signature}"
                )
        chosen = next(m for m in measured if m.is_default)
        best = min(measured, key=lambda m: m.work)
        default_root, default_collector = runs[measured.index(chosen)]
        q_errors = [
            stat.q_error
            for stat in default_collector.operators(default_root)
            if stat.q_error is not None
        ]
        if db.feedback is not None:
            for root, collector in runs:
                db.feedback.observe_plan(root, collector)
            after_root = db.plan_ast(stmt)
            after_signature = render_plan(after_root)
            by_signature = {m.signature: m for m in measured}
            if after_signature in by_signature:
                chosen_after = by_signature[after_signature]
            else:
                _, _, _, chosen_after = _measure(db, stmt, None)
        else:
            chosen_after = chosen
        outcome.queries.append(
            QueryOutcome(
                seed=seed,
                sql=sql,
                physical_sql=physical,
                alternatives=len(measured),
                best=best,
                chosen=chosen,
                chosen_after=chosen_after,
                max_q_error=max(q_errors) if q_errors else None,
                plan_changed=chosen_after.signature != chosen.signature,
            )
        )
    return outcome


def run_harness(config: HarnessConfig) -> dict[str, LayoutOutcome]:
    """The full sweep: every configured layout over every seed."""
    return {
        layout: run_layout(
            layout,
            config.seeds,
            budget=config.budget,
            feedback=config.feedback,
            tenant=config.tenant,
        )
        for layout in config.resolved_layouts()
    }
