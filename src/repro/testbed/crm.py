"""The CRM application schema of Figure 5.

Ten tables in a classic DAG-structured OLTP shape with one-to-many
relationships from child to parent:

::

    Campaign          Account
       ▲            ▲   ▲   ▲
       Lead   Opportunity Asset Contact
                 ▲    ▲          ▲   ▲
           LineItem  Product   Case Contract

Each table has about 20 columns; the first is the entity id.  "Every
table has a primary index on the entity ID and a unique compound index
on the tenant ID and the entity ID.  In addition, there are twelve
indexes on selected columns for reporting queries and update tasks."
The twelve reporting indexes are the columns marked ``indexed=True``
below (beyond the entity/parent ids).

To "programmatically increase the overall number of tables without
making them too synthetic", multiple copies of the 10-table schema are
created (:func:`crm_tables` with an instance number); each copy
represents a logically different set of entities (Section 4.1).
"""

from __future__ import annotations

from ..core.schema import Extension, LogicalColumn, LogicalTable
from ..engine.values import BOOLEAN, DATE, DOUBLE, INTEGER, varchar

#: Base table names in definition order.
CRM_TABLE_NAMES = (
    "campaign",
    "account",
    "lead",
    "opportunity",
    "asset",
    "contact",
    "lineitem",
    "product",
    "case_file",  # "case" alone would collide with the SQL keyword
    "contract",
)

#: child -> parent relationships (one-to-many, child holds parent id).
CRM_PARENTS = {
    "lead": "campaign",
    "opportunity": "account",
    "asset": "account",
    "contact": "account",
    "lineitem": "opportunity",
    "product": "opportunity",
    "case_file": "contact",
    "contract": "contact",
}

#: (table, column) pairs carrying the twelve reporting indexes.
REPORTING_INDEXES = (
    ("campaign", "status"),
    ("campaign", "start_date"),
    ("account", "name"),
    ("account", "industry"),
    ("lead", "status"),
    ("opportunity", "stage"),
    ("opportunity", "close_date"),
    ("contact", "last_name"),
    ("lineitem", "ship_date"),
    ("product", "family"),
    ("case_file", "status"),
    ("contract", "end_date"),
)


def _payload_columns(table: str) -> list[LogicalColumn]:
    """~16 generic payload columns so each table lands near the paper's
    'about 20 columns'."""
    indexed = {c for t, c in REPORTING_INDEXES if t == table}

    def col(name, sql_type):
        return LogicalColumn(name, sql_type, indexed=name in indexed)

    return [
        col("name", varchar(60)),
        col("status", varchar(20)),
        col("stage", varchar(20)),
        col("industry", varchar(30)),
        col("family", varchar(30)),
        col("last_name", varchar(40)),
        col("description", varchar(120)),
        col("owner", varchar(40)),
        col("amount", DOUBLE),
        col("quantity", INTEGER),
        col("score", INTEGER),
        col("priority", INTEGER),
        col("active", BOOLEAN),
        col("start_date", DATE),
        col("close_date", DATE),
        col("ship_date", DATE),
        col("end_date", DATE),
        col("created", DATE),
    ]


def instance_table_name(base: str, instance: int) -> str:
    """Physical-logical name of one schema-instance copy of a table."""
    return base if instance == 0 else f"{base}_i{instance}"


def crm_tables(instance: int = 0) -> list[LogicalTable]:
    """One full copy of the 10-table CRM schema."""
    tables = []
    for base in CRM_TABLE_NAMES:
        columns = [LogicalColumn("id", INTEGER, indexed=True, not_null=True)]
        parent = CRM_PARENTS.get(base)
        if parent is not None:
            columns.append(LogicalColumn("parent", INTEGER, indexed=True))
        columns.extend(_payload_columns(base))
        tables.append(
            LogicalTable(instance_table_name(base, instance), tuple(columns))
        )
    return tables


def crm_extensions(instance: int = 0) -> list[Extension]:
    """Optional per-vertical extensions ('the testbed will eventually
    offer a set of possible extensions for each base table') — used by
    the Chunk Folding experiments."""
    account = instance_table_name("account", instance)
    contact = instance_table_name("contact", instance)
    suffix = "" if instance == 0 else f"_i{instance}"
    return [
        Extension(
            f"healthcare{suffix}",
            account,
            (
                LogicalColumn("hospital", varchar(60)),
                LogicalColumn("beds", INTEGER),
                LogicalColumn("accreditation", varchar(30)),
            ),
        ),
        Extension(
            f"automotive{suffix}",
            account,
            (
                LogicalColumn("dealers", INTEGER),
                LogicalColumn("fleet_size", INTEGER),
            ),
        ),
        Extension(
            f"gdpr{suffix}",
            contact,
            (
                LogicalColumn("consent", BOOLEAN),
                LogicalColumn("consent_date", DATE),
            ),
        ),
    ]
