"""The stateless front door: routing, retry, and the asyncio server.

The :class:`Router` holds no tenant data — only the placement catalog
and the shard handles.  Correctness under stale placement comes from
the redirect loop: a shard that no longer owns a tenant raises
:class:`WrongShardError`, the router re-reads the (possibly just
updated) catalog and retries, bounded by ``max_redirects``.

Per-tenant ordering: requests for one tenant are serialized through a
per-tenant ``asyncio.Lock`` *in addition to* the per-shard worker
thread.  The shard thread alone serializes same-shard work, but during
a redirect a tenant's next request could otherwise overtake the
retried one; the lock keeps each tenant's operations in submission
order across redirects and rebalances.

:class:`ClusterServer` exposes the router over TCP with the
length-prefixed JSON protocol; :class:`ClusterClient` is the matching
client.  Frames on one connection are handled sequentially, which maps
the classic database-session model ("one outstanding statement per
connection") onto asyncio.
"""

from __future__ import annotations

import asyncio
from typing import Any

from ..engine.database import Result
from ..engine.errors import EngineError, UnknownObjectError
from ..engine.observability import MetricsRegistry
from . import protocol
from .errors import ClusterError, ProtocolError, WrongShardError
from .placement import PlacementCatalog
from .shard import ShardWorker


class Router:
    """Routes tenant operations to shards, retrying on WrongShard."""

    def __init__(
        self,
        catalog: PlacementCatalog,
        shards: dict[str, ShardWorker],
        *,
        metrics: MetricsRegistry | None = None,
        max_redirects: int = 4,
    ) -> None:
        self.catalog = catalog
        self.shards = shards
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_redirects = max_redirects
        self._tenant_locks: dict[int, asyncio.Lock] = {}
        self._c_requests = self.metrics.counter("cluster.router.requests")
        self._c_redirects = self.metrics.counter("cluster.router.redirects")
        self._h_latency = self.metrics.histogram("cluster.router.latency_ms")

    def tenant_lock(self, tenant_id: int) -> asyncio.Lock:
        lock = self._tenant_locks.get(tenant_id)
        if lock is None:
            lock = self._tenant_locks[tenant_id] = asyncio.Lock()
        return lock

    def shard_for(self, tenant_id: int) -> ShardWorker:
        name = self.catalog.shard_for(tenant_id)
        try:
            return self.shards[name]
        except KeyError:
            raise ClusterError(f"placement names unknown shard {name!r}") from None

    async def _routed(self, tenant_id: int, op) -> Any:
        """Run ``op(shard)`` on the owning shard, following redirects."""
        self._c_requests.inc()
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            async with self.tenant_lock(tenant_id):
                for _attempt in range(self.max_redirects + 1):
                    shard = self.shard_for(tenant_id)
                    try:
                        return await op(shard)
                    except WrongShardError:
                        # A tenant no shard has ever heard of is a
                        # user error, not stale placement.
                        if not any(
                            tenant_id in s.mtd.tenant_ids()
                            for s in self.shards.values()
                        ):
                            raise UnknownObjectError(
                                f"unknown tenant {tenant_id}"
                            ) from None
                        # The catalog may already be newer than the
                        # view this routing used (rebalance cut-over
                        # bumps it before the shard disowns) — loop to
                        # re-read it.  A rebalance still mid-cut-over
                        # resolves within a bounded number of retries
                        # because the cut-over itself holds this
                        # tenant's lock.
                        self._c_redirects.inc()
                        await asyncio.sleep(0)
                raise ClusterError(
                    f"tenant {tenant_id}: placement did not converge after "
                    f"{self.max_redirects} redirects"
                )
        finally:
            self._h_latency.observe((loop.time() - started) * 1000.0)

    async def execute(
        self, tenant_id: int, sql: str, params: tuple = ()
    ) -> Result:
        return await self._routed(
            tenant_id, lambda shard: shard.execute(tenant_id, sql, params)
        )

    async def insert(
        self,
        tenant_id: int,
        table: str,
        values: dict,
        *,
        row_id: int | None = None,
    ) -> int:
        return await self._routed(
            tenant_id,
            lambda shard: shard.insert(tenant_id, table, values, row_id=row_id),
        )


class ClusterServer:
    """Serves the router over TCP (length-prefixed JSON frames)."""

    def __init__(self, router: Router, *, host: str = "127.0.0.1") -> None:
        self.router = router
        self.host = host
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._c_connections = self.router.metrics.counter(
            "cluster.server.connections"
        )
        self._c_frames = self.router.metrics.counter("cluster.server.frames")

    @property
    def port(self) -> int:
        if self._server is None:
            raise ClusterError("server is not running")
        return self._server.sockets[0].getsockname()[1]

    async def start(self, port: int = 0) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._c_connections.inc()
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await protocol.read_frame(reader)
                except ProtocolError:
                    break  # unframeable input: drop the connection
                if request is None:
                    break
                self._c_frames.inc()
                response = await self._dispatch(request)
                await protocol.write_frame(writer, response)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels us mid-read; end the task cleanly
            # (3.11's stream wrapper logs tasks that die cancelled).
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        try:
            if op == "ping":
                return protocol.ok_response(pong=True)
            if op == "placement":
                return protocol.ok_response(
                    version=self.router.catalog.version,
                    shards=self.router.catalog.shards,
                )
            if op == "execute":
                result = await self.router.execute(
                    int(request["tenant_id"]),
                    request["sql"],
                    tuple(request.get("params", ())),
                )
                return protocol.ok_response(
                    columns=result.columns,
                    rows=result.rows,
                    rowcount=result.rowcount,
                )
            if op == "insert":
                row_id = await self.router.insert(
                    int(request["tenant_id"]),
                    request["table"],
                    request["values"],
                    row_id=request.get("row_id"),
                )
                return protocol.ok_response(row_id=row_id)
            return protocol.error_response(
                "BadRequest", f"unknown op {op!r}"
            )
        except WrongShardError as exc:
            return protocol.error_response(
                "WrongShard",
                str(exc),
                shard=exc.shard,
                placement_version=exc.placement_version,
            )
        except EngineError as exc:
            return protocol.error_response(type(exc).__name__, str(exc))
        except (KeyError, TypeError, ValueError) as exc:
            return protocol.error_response(
                "BadRequest", f"malformed request: {exc!r}"
            )


class ClusterClient:
    """A thin async client for :class:`ClusterServer`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._reader = self._writer = None

    async def request(self, message: dict) -> dict:
        if self._reader is None or self._writer is None:
            raise ClusterError("client is not connected")
        await protocol.write_frame(self._writer, message)
        response = await protocol.read_frame(self._reader)
        if response is None:
            raise ClusterError("server closed the connection")
        return response

    async def call(self, message: dict) -> dict:
        """``request`` + raise :class:`ClusterError` on error responses."""
        response = await self.request(message)
        if not response.get("ok"):
            raise ClusterError(
                f"{response.get('error')}: {response.get('message')}"
            )
        return response

    async def ping(self) -> bool:
        return bool((await self.call({"op": "ping"}))["pong"])

    async def execute(
        self, tenant_id: int, sql: str, params: tuple = ()
    ) -> Result:
        response = await self.call(
            {
                "op": "execute",
                "tenant_id": tenant_id,
                "sql": sql,
                "params": list(params),
            }
        )
        return Result(
            response["columns"],
            protocol.decode_rows(response["rows"]),
            response["rowcount"],
        )

    async def insert(
        self,
        tenant_id: int,
        table: str,
        values: dict,
        *,
        row_id: int | None = None,
    ) -> int:
        message: dict = {
            "op": "insert",
            "tenant_id": tenant_id,
            "table": table,
            "values": values,
        }
        if row_id is not None:
            message["row_id"] = row_id
        return int((await self.call(message))["row_id"])
