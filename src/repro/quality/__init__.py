"""Optimizer-quality harness (TAQO-style).

The differential suites prove the engine returns the *same answers* as
SQLite and across layouts; this package measures whether it picks *good
plans*.  For each query in the seeded corpus (:mod:`.corpus`) it
enumerates the bounded plan space (:mod:`.planspace`), executes every
alternative under EXPLAIN ANALYZE on both engines (:mod:`.harness`),
and reports chosen-vs-best cost, per-operator Q-error, and the effect
of cardinality feedback (:class:`~repro.engine.feedback.CardinalityFeedback`)
per schema-mapping layout (:mod:`.report`).

``python -m repro.quality`` runs it from the command line; the CI
``optimizer-quality`` job gates on the optimal-plan rate it reports.
"""

from .corpus import generate_query  # noqa: F401
from .harness import HarnessConfig, all_layouts, run_harness, run_layout  # noqa: F401
from .planspace import Alternative, enumerate_plans  # noqa: F401
from .report import evaluate_gate, render_report, report_to_json  # noqa: F401
