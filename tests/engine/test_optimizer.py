"""Tests for the two optimizer profiles: plan shapes, flattening,
transitive predicate propagation, and predicate-order sensitivity."""

import pytest

from repro.engine import Database, OptimizerProfile
from repro.engine.explain import count_operators, plan_shape, render_plan


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE parent (id INTEGER NOT NULL, col1 INTEGER, col2 VARCHAR(100))"
    )
    database.execute(
        "CREATE TABLE child (id INTEGER NOT NULL, parent INTEGER, col1 INTEGER)"
    )
    database.execute("CREATE UNIQUE INDEX parent_pk ON parent (id)")
    database.execute("CREATE INDEX child_fk ON child (parent, id)")
    for i in range(1, 401):
        database.execute(
            "INSERT INTO parent VALUES (?, ?, ?)",
            [i, i * 10, f"p{i}".ljust(90, "x")],
        )
        for j in range(4):
            database.execute(
                "INSERT INTO child VALUES (?, ?, ?)", [i * 1000 + j, i, j]
            )
    return database


JOIN_SQL = (
    "SELECT p.id, p.col1, c.col1 FROM parent p, child c "
    "WHERE p.id = c.parent AND p.id = ?"
)

# The §6.1 transformation shape: the derived table reconstructs the
# logical source, the *outer* query applies the selective predicate.
NESTED_SQL = (
    "SELECT d.x FROM (SELECT p.col1 AS x, p.id AS pid FROM parent p) AS d "
    "WHERE d.pid = ?"
)


class TestAdvancedProfile:
    def test_uses_indexes_for_point_join(self, db):
        shape = plan_shape(db.plan(JOIN_SQL))
        assert "TBSCAN" not in shape
        assert "IXSCAN" in shape

    SIBLING_SQL = (
        "SELECT c.id, d.id FROM child c, child d "
        "WHERE c.parent = d.parent AND c.parent = ?"
    )

    def test_transitive_propagation_restricts_both_sides(self, db):
        """From c.parent = d.parent and c.parent = ? the second access
        must be keyed on the constant (Figure 8 region 1's pushdown)."""
        plan_text = render_plan(db.plan(self.SIBLING_SQL))
        assert "d.parent = ?" in plan_text

    def test_hash_join_of_two_index_accesses(self, db):
        """With a non-unique driver, both sides are constant-restricted
        index scans combined by a hash join — Figure 8's region 3."""
        shape = plan_shape(db.plan(self.SIBLING_SQL))
        assert "HSJOIN" in shape
        rows = db.execute(self.SIBLING_SQL, [5]).rows
        assert len(rows) == 16

    def test_unique_driver_prefers_nested_loop(self, db):
        """A single-row outer makes per-row index probes cheaper than
        building a hash table."""
        shape = plan_shape(db.plan(JOIN_SQL))
        assert "NLJOIN" in shape

    def test_flattens_nested_from_subquery(self, db):
        shape = plan_shape(db.plan(NESTED_SQL))
        assert "MATERIALIZE" not in shape
        assert "IXSCAN" in shape

    def test_flattened_results_match(self, db):
        rows = db.execute(NESTED_SQL, [9]).rows
        assert rows == [(90,)]

    def test_join_results_match_filter_semantics(self, db):
        rows = db.execute(JOIN_SQL, [7]).rows
        assert len(rows) == 4
        assert all(r[0] == 7 and r[1] == 70 for r in rows)

    def test_nonflattenable_subquery_is_materialized(self, db):
        sql = (
            "SELECT d.n FROM (SELECT c.parent AS pr, COUNT(*) AS n "
            "FROM child c GROUP BY c.parent) AS d WHERE d.pr = 5"
        )
        shape = plan_shape(db.plan(sql))
        assert "MATERIALIZE" in shape
        assert db.execute(sql).rows == [(4,)]


class TestSimpleProfile:
    def test_does_not_flatten(self, db):
        db.profile = OptimizerProfile.SIMPLE
        shape = plan_shape(db.plan(NESTED_SQL))
        assert "MATERIALIZE" in shape

    def test_same_answers_as_advanced(self, db):
        expected = sorted(db.execute(JOIN_SQL, [7]).rows)
        db.profile = OptimizerProfile.SIMPLE
        assert sorted(db.execute(JOIN_SQL, [7]).rows) == expected

    def test_nested_same_answers(self, db):
        expected = db.execute(NESTED_SQL, [9]).rows
        db.profile = OptimizerProfile.SIMPLE
        assert db.execute(NESTED_SQL, [9]).rows == expected

    def test_materialization_costs_more_reads(self, db):
        """The SIMPLE profile builds the whole derived table before
        filtering — the Test 1 penalty."""
        before = db.pool_stats.snapshot()
        db.execute(NESTED_SQL, [9])
        advanced_reads = db.pool_stats.delta(before).logical_total

        db.profile = OptimizerProfile.SIMPLE
        before = db.pool_stats.snapshot()
        db.execute(NESTED_SQL, [9])
        simple_reads = db.pool_stats.delta(before).logical_total
        assert simple_reads > advanced_reads

    def test_predicate_order_changes_plan(self, db):
        """MySQL-style sensitivity: the driving access follows the
        textually first indexable predicate."""
        db.profile = OptimizerProfile.SIMPLE
        selective_first = (
            "SELECT p.id, c.col1 FROM parent p, child c "
            "WHERE p.id = ? AND p.id = c.parent"
        )
        unselective_first = (
            "SELECT p.id, c.col1 FROM child c, parent p "
            "WHERE c.col1 = c.col1 AND p.id = c.parent AND p.id = ?"
        )
        good = render_plan(db.plan(selective_first))
        assert good.find("parent") < good.find("child")

    def test_no_transitive_propagation(self, db):
        db.profile = OptimizerProfile.SIMPLE
        plan_text = render_plan(db.plan(JOIN_SQL))
        assert "child_fk(c.parent = ?)" not in plan_text


class TestIndexOnlyAccess:
    def test_index_only_when_covered(self, db):
        sql = "SELECT c.parent, c.id FROM child c WHERE c.parent = ?"
        plan_text = render_plan(db.plan(sql))
        assert "index-only" in plan_text
        assert "FETCH" not in plan_text

    def test_fetch_when_not_covered(self, db):
        sql = "SELECT c.col1 FROM child c WHERE c.parent = ?"
        plan_text = render_plan(db.plan(sql))
        assert "FETCH" in plan_text

    def test_index_only_results_match(self, db):
        rows = db.execute(
            "SELECT c.parent, c.id FROM child c WHERE c.parent = ?", [3]
        ).rows
        assert sorted(rows) == [(3, 3000), (3, 3001), (3, 3002), (3, 3003)]


class TestRangeScans:
    def test_range_on_leading_index_column(self, db):
        plan_text = render_plan(db.plan("SELECT p.col2 FROM parent p WHERE p.id > 390"))
        assert "IXSCAN" in plan_text
        assert "p.id >= 390" in plan_text

    def test_between_uses_both_bounds(self, db):
        plan_text = render_plan(
            db.plan("SELECT p.col2 FROM parent p WHERE p.id BETWEEN 10 AND 20")
        )
        assert "p.id >= 10" in plan_text
        assert "p.id <= 20" in plan_text

    def test_range_after_equality_prefix(self, db):
        plan_text = render_plan(
            db.plan(
                "SELECT c.col1 FROM child c WHERE c.parent = 5 AND c.id < 5002"
            )
        )
        assert "c.parent = 5" in plan_text
        assert "c.id <= 5002" in plan_text

    def test_exclusive_bounds_recheck_exactly(self, db):
        rows = db.execute(
            "SELECT p.id FROM parent p WHERE p.id > 398 AND p.id < 400"
        ).rows
        assert rows == [(399,)]

    def test_range_scan_reads_fewer_pages_than_table_scan(self, db):
        sql_range = "SELECT COUNT(*) FROM parent p WHERE p.id > 395"
        db.execute(sql_range)  # warm
        before = db.pool_stats.snapshot()
        db.execute(sql_range)
        range_reads = db.pool_stats.delta(before).logical_total
        sql_scan = "SELECT COUNT(*) FROM parent p WHERE p.col1 > 3950"
        db.execute(sql_scan)
        before = db.pool_stats.snapshot()
        db.execute(sql_scan)
        scan_reads = db.pool_stats.delta(before).logical_total
        assert range_reads < scan_reads

    def test_null_range_bound_matches_nothing(self, db):
        rows = db.execute(
            "SELECT p.id FROM parent p WHERE p.id > ?", [None]
        ).rows
        assert rows == []


class TestPlanShapes:
    def test_full_scan_without_predicates(self, db):
        shape = plan_shape(db.plan("SELECT p.id FROM parent p"))
        assert "TBSCAN" in shape

    def test_group_plan_has_grpby(self, db):
        shape = plan_shape(
            db.plan("SELECT c.parent, COUNT(*) FROM child c GROUP BY c.parent")
        )
        assert "GRPBY" in shape

    def test_order_by_adds_sort(self, db):
        shape = plan_shape(db.plan("SELECT p.id FROM parent p ORDER BY p.col1"))
        assert "SORT" in shape

    def test_three_way_join_chains(self, db):
        sql = (
            "SELECT p.id FROM parent p, child c, child d "
            "WHERE p.id = ? AND p.id = c.parent AND d.parent = c.parent"
        )
        root = db.plan(sql)
        joins = count_operators(root, "NLJOIN") + count_operators(root, "HSJOIN")
        assert joins == 2
        rows = db.execute(sql, [5]).rows
        assert len(rows) == 16  # 4 children x 4 children


class TestCorrectnessAcrossProfiles:
    """Differential testing: both profiles must agree on results."""

    QUERIES = [
        ("SELECT p.col1 FROM parent p WHERE p.id = ?", [13]),
        (JOIN_SQL, [21]),
        (NESTED_SQL, [40]),
        (
            "SELECT c.parent, COUNT(*) AS n, SUM(c.col1) AS s FROM child c "
            "GROUP BY c.parent HAVING COUNT(*) > 3 ORDER BY n DESC, c.parent "
            "LIMIT 5",
            [],
        ),
        (
            "SELECT DISTINCT c.col1 FROM child c WHERE c.parent IN (1, 2, 3)",
            [],
        ),
    ]

    @pytest.mark.parametrize("sql,params", QUERIES)
    def test_profiles_agree(self, db, sql, params):
        advanced = sorted(db.execute(sql, params).rows)
        db.profile = OptimizerProfile.SIMPLE
        simple = sorted(db.execute(sql, params).rows)
        assert advanced == simple
