"""Pull-based execution of physical plans.

Every page touch goes through the buffer pool, so the paper's metrics
(logical/physical page reads, hit ratios) accumulate as a side effect of
simply running queries.  The executor additionally counts row-level work
in :class:`ExecStats`; the testbed's cost model turns both into
simulated response times.
"""

from __future__ import annotations

import datetime
import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from .catalog import Catalog
from .errors import ExecutionError, PlanError
from .expr_batch import sort_rows
from .plan import physical as phys
from .values import sort_key


@dataclass
class ExecStats:
    """Row-level work counters for one database (cumulative).

    The row counters are engine-independent: the tuple and vectorized
    executors produce identical values for the same plan (the
    differential suite asserts this).  ``batches`` counts the batches
    operators exchanged and is only advanced by the vectorized engine.
    """

    rows_scanned: int = 0
    index_lookups: int = 0
    rows_fetched: int = 0
    rows_joined: int = 0
    rows_output: int = 0
    sorts: int = 0
    materialized_rows: int = 0
    statements: int = 0
    batches: int = 0

    #: The counters both engines must agree on for identical plans.
    ROW_COUNTERS = (
        "rows_scanned",
        "index_lookups",
        "rows_fetched",
        "rows_joined",
        "rows_output",
        "sorts",
        "materialized_rows",
        "statements",
    )

    def snapshot(self) -> "ExecStats":
        return ExecStats(**vars(self))

    def delta(self, earlier: "ExecStats") -> "ExecStats":
        return ExecStats(
            **{k: getattr(self, k) - getattr(earlier, k) for k in vars(self)}
        )

    def row_counters(self) -> dict:
        """The engine-independent counters, for cross-engine asserts."""
        return {name: getattr(self, name) for name in self.ROW_COUNTERS}


#: Exact types whose native comparisons match ``sort_key`` ordering
#: within a column (bool is excluded: ``sort_key`` segregates it).
_NATIVE_ORDER = (int, float, str, datetime.date)


# _AggState per-row dispatch codes, resolved once per group instead of
# per-row string-tuple membership tests.
_AGG_COUNT_STAR = 0
_AGG_SUM = 1  # SUM and AVG share the running-total fold
_AGG_MIN = 2
_AGG_MAX = 3
_AGG_COUNT = 4  # COUNT(col): the count increment is the whole fold


class _AggState:
    """Accumulator for one aggregate within one group."""

    __slots__ = ("spec", "op", "count", "total", "best", "seen")

    def __init__(self, spec: phys.AggSpec) -> None:
        self.spec = spec
        func = spec.func
        if func == "COUNT_STAR":
            self.op = _AGG_COUNT_STAR
        elif func in ("SUM", "AVG"):
            self.op = _AGG_SUM
        elif func == "MIN":
            self.op = _AGG_MIN
        elif func == "MAX":
            self.op = _AGG_MAX
        else:
            self.op = _AGG_COUNT
        self.count = 0
        self.total = None
        self.best = None
        self.seen: set | None = set() if spec.distinct else None

    def add(self, row: tuple, params: Sequence[object]) -> None:
        if self.op == _AGG_COUNT_STAR:
            self.count += 1
            return
        spec = self.spec
        assert spec.arg is not None
        self.add_value(spec.arg(row, params))

    def add_value(self, value: object) -> None:
        """Fold one already-evaluated argument value (the vectorized
        engine precomputes argument columns per batch)."""
        op = self.op
        if op == _AGG_COUNT_STAR:
            self.count += 1
            return
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if op == _AGG_COUNT:
            return
        if op == _AGG_SUM:
            self.total = value if self.total is None else self.total + value
        elif op == _AGG_MIN:
            best = self.best
            if best is None:
                self.best = value
            elif type(value) is type(best) and type(value) in _NATIVE_ORDER:
                # Fast path: same natively comparable type, no decorated
                # ``sort_key`` tuples per row.
                if value < best:
                    self.best = value
            elif sort_key(value) < sort_key(best):
                self.best = value
        else:
            best = self.best
            if best is None:
                self.best = value
            elif type(value) is type(best) and type(value) in _NATIVE_ORDER:
                if value > best:
                    self.best = value
            elif sort_key(value) > sort_key(best):
                self.best = value

    def final(self) -> object:
        func = self.spec.func
        if func in ("COUNT", "COUNT_STAR"):
            return self.count
        if func == "SUM":
            return self.total
        if func == "AVG":
            if self.count == 0:
                return None
            return self.total / self.count
        return self.best


def index_entries(
    catalog: Catalog,
    stats: ExecStats,
    node: phys.PIndexScan,
    outer_row: tuple,
    params: Sequence[object],
) -> Iterator[tuple]:
    """Yield (key, rid) pairs for an index scan's equality prefix.

    Shared by both executors so index access patterns (and the page
    reads they cause) are identical across engines.
    """
    table = catalog.table(node.table_name)
    info = table.indexes.get(node.index_name.lower())
    if info is None:
        raise ExecutionError(
            f"index {node.index_name} vanished from {node.table_name}"
        )
    prefix = tuple(e(outer_row, params) for e in node.key_exprs)
    stats.index_lookups += 1
    if node.range_low is None and node.range_high is None:
        if (
            info.unique
            and len(prefix) == len(info.column_names)
            and None not in prefix
        ):
            # Full-key probe on a unique index: exact-match descent
            # instead of a prefix iteration — the hot case of every
            # aligning reconstruction join (both engines share this, so
            # access patterns and counters stay identical across them).
            for rid in info.btree.search(prefix):
                yield prefix, rid
            return
        yield from info.btree.scan_prefix(prefix)
        return
    low = prefix
    high = prefix
    if node.range_low is not None:
        value = node.range_low(outer_row, params)
        if value is None:
            return  # NULL bound matches nothing
        low = prefix + (value,)
    if node.range_high is not None:
        value = node.range_high(outer_row, params)
        if value is None:
            return
        high = prefix + (value,)
    yield from info.btree.scan_range(low or None, high or None)


class Executor:
    """Executes physical plans against a catalog, tuple at a time.

    This is the reference interpreter: simple, streaming, and row
    accurate.  The hot read path normally runs through the vectorized
    sibling (:class:`repro.engine.vexecutor.VectorizedExecutor`); this
    engine is kept for differential testing and as the specification of
    the execution semantics.  ``stats`` may be shared with another
    executor so one :class:`Database` reports a single set of counters.
    """

    def __init__(self, catalog: Catalog, stats: ExecStats | None = None) -> None:
        self._catalog = catalog
        self.stats = stats if stats is not None else ExecStats()
        #: Active EXPLAIN ANALYZE collector (None when not analyzing).
        self._collector = None

    # -- public -----------------------------------------------------------

    def run(
        self,
        root: phys.PReturn,
        params: Sequence[object] = (),
        *,
        collector=None,
    ) -> list[tuple]:
        """Execute a plan.  ``collector`` (an
        :class:`~repro.engine.observability.AnalyzeCollector`) wraps each
        operator with row/time accounting for EXPLAIN ANALYZE."""
        self.stats.statements += 1
        cache: dict[int, list[tuple]] = {}
        previous, self._collector = self._collector, collector
        try:
            rows = list(self._iterate(root, (), params, cache))
        finally:
            self._collector = previous
        self.stats.rows_output += len(rows)
        return rows

    # -- node dispatch ----------------------------------------------------------

    def _iterate(
        self,
        node: phys.PNode,
        outer_row: tuple,
        params: Sequence[object],
        cache: dict[int, list[tuple]],
    ) -> Iterator[tuple]:
        iterator = self._dispatch(node, outer_row, params, cache)
        if self._collector is not None:
            return self._collector.wrap(node, iterator)
        return iterator

    def _dispatch(
        self,
        node: phys.PNode,
        outer_row: tuple,
        params: Sequence[object],
        cache: dict[int, list[tuple]],
    ) -> Iterator[tuple]:
        if isinstance(node, phys.PTableScan):
            yield from self._scan_table(node, params)
        elif isinstance(node, phys.PIndexScan):
            yield from self._scan_index_only(node, outer_row, params)
        elif isinstance(node, phys.PFetch):
            yield from self._fetch(node, outer_row, params)
        elif isinstance(node, phys.PMaterialize):
            key = id(node)
            if key not in cache:
                rows = []
                for row in self._iterate(node.child, (), params, cache):
                    if all(p(row, params) is True for p in node.residual):
                        rows.append(row)
                cache[key] = rows
                self.stats.materialized_rows += len(rows)
            yield from cache[key]
        elif isinstance(node, phys.PNLJoin):
            for left_row in self._iterate(node.outer, outer_row, params, cache):
                for right_row in self._iterate(node.inner, left_row, params, cache):
                    self.stats.rows_joined += 1
                    yield left_row + right_row
        elif isinstance(node, phys.PHSJoin):
            table: dict[tuple, list[tuple]] = {}
            for row in self._iterate(node.right, (), params, cache):
                key = tuple(k(row, params) for k in node.right_keys)
                if any(v is None for v in key):
                    continue
                table.setdefault(key, []).append(row)
            for row in self._iterate(node.left, outer_row, params, cache):
                key = tuple(k(row, params) for k in node.left_keys)
                if any(v is None for v in key):
                    continue
                for match in table.get(key, ()):
                    self.stats.rows_joined += 1
                    yield row + match
        elif isinstance(node, phys.PFilter):
            for row in self._iterate(node.child, outer_row, params, cache):
                if all(p(row, params) is True for p in node.predicates):
                    yield row
        elif isinstance(node, phys.PGroup):
            yield from self._group(node, params, cache)
        elif isinstance(node, phys.PProject):
            for row in self._iterate(node.child, outer_row, params, cache):
                yield tuple(e(row, params) for e in node.exprs)
        elif isinstance(node, phys.PSort):
            rows = list(self._iterate(node.child, outer_row, params, cache))
            self.stats.sorts += 1
            # One composite decorated key per row, one sort — not one
            # full re-sort (with per-row key lambdas) per ORDER BY key.
            yield from sort_rows(node, rows, params)
        elif isinstance(node, phys.PDistinct):
            seen: set = set()
            for row in self._iterate(node.child, outer_row, params, cache):
                if row not in seen:
                    seen.add(row)
                    yield row
        elif isinstance(node, phys.PLimit):
            yield from itertools.islice(
                self._iterate(node.child, outer_row, params, cache), node.limit
            )
        elif isinstance(node, phys.PReturn):
            yield from self._iterate(node.child, outer_row, params, cache)
        else:  # pragma: no cover
            raise PlanError(f"unknown physical node {type(node).__name__}")

    # -- leaves -------------------------------------------------------------------

    def _scan_table(
        self, node: phys.PTableScan, params: Sequence[object]
    ) -> Iterator[tuple]:
        table = self._catalog.table(node.table_name)
        for _rid, row in table.heap.scan():
            self.stats.rows_scanned += 1
            if all(p(row, params) is True for p in node.residual):
                yield row

    def _index_entries(
        self, node: phys.PIndexScan, outer_row: tuple, params: Sequence[object]
    ) -> Iterator[tuple]:
        """Yield (key, rid) pairs for the scan's equality prefix."""
        return index_entries(self._catalog, self.stats, node, outer_row, params)

    def _scan_index_only(
        self, node: phys.PIndexScan, outer_row: tuple, params: Sequence[object]
    ) -> Iterator[tuple]:
        table = self._catalog.table(node.table_name)
        info = table.indexes[node.index_name.lower()]
        width = len(table.columns)
        for key, _rid in self._index_entries(node, outer_row, params):
            row = [None] * width
            for pos, value in zip(info.column_positions, key):
                row[pos] = value
            row_tuple = tuple(row)
            self.stats.rows_scanned += 1
            if all(p(row_tuple, params) is True for p in node.residual):
                yield row_tuple

    def _fetch(
        self, node: phys.PFetch, outer_row: tuple, params: Sequence[object]
    ) -> Iterator[tuple]:
        table = self._catalog.table(node.table_name)
        child = node.child
        entries = self._index_entries(child, outer_row, params)
        if self._collector is not None:
            # Attribute the (key, rid) production to the IXSCAN child so
            # the analyzed tree shows its row count, not "never executed".
            entries = self._collector.wrap(child, entries)
        for _key, rid in entries:
            row = table.heap.fetch(rid)
            self.stats.rows_fetched += 1
            if all(p(row, params) is True for p in child.residual):
                yield row

    # -- grouping --------------------------------------------------------------------

    def _group(
        self,
        node: phys.PGroup,
        params: Sequence[object],
        cache: dict[int, list[tuple]],
    ) -> Iterator[tuple]:
        groups: dict[tuple, list[_AggState]] = {}
        for row in self._iterate(node.child, (), params, cache):
            key = tuple(g(row, params) for g in node.group_exprs)
            states = groups.get(key)
            if states is None:
                states = [_AggState(spec) for spec in node.aggs]
                groups[key] = states
            for state in states:
                state.add(row, params)
        if not groups and not node.group_exprs:
            # Global aggregate over the empty input still yields one row.
            groups[()] = [_AggState(spec) for spec in node.aggs]
        for key, states in groups.items():
            pseudo = key + tuple(state.final() for state in states)
            if node.having is not None and node.having(pseudo, params) is not True:
                continue
            yield tuple(out.post(pseudo, params) for out in node.outputs)
