"""The Result Database: response-time collection and the paper's
metrics (95 % quantiles per class, baseline compliance, throughput,
buffer-pool hit ratios)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from .actions import ActionClass


@dataclass(frozen=True)
class ActionResult:
    """One timed action."""

    action: ActionClass
    tenant_id: int
    session_id: int
    start_ms: float
    response_ms: float

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.response_ms


def quantile(values: list[float], q: float) -> float:
    """Nearest-rank quantile (the 95 % response-time quantiles of
    Table 2); 0.0 for empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class ResultSet:
    """Collects :class:`ActionResult` rows for one run."""

    def __init__(self) -> None:
        self.results: list[ActionResult] = []

    def record(self, result: ActionResult) -> None:
        self.results.append(result)

    def __len__(self) -> int:
        return len(self.results)

    def strip_ramp_up(self, fraction: float = 0.1) -> "ResultSet":
        """Drop the warm-up prefix ('the ramp-up phase during which the
        system reached steady state was stripped off')."""
        cut = int(len(self.results) * fraction)
        trimmed = ResultSet()
        trimmed.results = self.results[cut:]
        return trimmed

    def by_class(self) -> dict[ActionClass, list[float]]:
        out: dict[ActionClass, list[float]] = {}
        for result in self.results:
            out.setdefault(result.action, []).append(result.response_ms)
        return out

    def quantiles(self, q: float = 0.95) -> dict[ActionClass, float]:
        return {
            action: quantile(times, q) for action, times in self.by_class().items()
        }

    def baseline_compliance(
        self, baseline: dict[ActionClass, float]
    ) -> float:
        """Percentage of actions whose response time is within the
        baseline quantile for their class (Table 2, first row)."""
        if not self.results:
            return 100.0
        within = sum(
            1
            for r in self.results
            if r.response_ms <= baseline.get(r.action, float("inf"))
        )
        return 100.0 * within / len(self.results)

    def throughput_per_minute(self, sessions: int) -> float:
        """Actions per simulated minute.

        Sessions run concurrently; the run's wall-clock is the busiest
        session's clock.
        """
        if not self.results:
            return 0.0
        end = max(r.end_ms for r in self.results)
        start = min(r.start_ms for r in self.results)
        elapsed_ms = max(1e-9, end - start)
        return len(self.results) / (elapsed_ms / 60_000.0)


@dataclass
class RunMetrics:
    """Everything one Table 2 column reports."""

    variability: float
    total_tables: int
    baseline_compliance: float
    throughput_per_minute: float
    quantiles_ms: dict[ActionClass, float]
    data_hit_ratio: float
    index_hit_ratio: float

    def row(self) -> dict[str, object]:
        out: dict[str, object] = {
            "variability": self.variability,
            "tables": self.total_tables,
            "compliance_pct": round(self.baseline_compliance, 1),
            "throughput_per_min": round(self.throughput_per_minute, 1),
            "data_hit_pct": round(100 * self.data_hit_ratio, 2),
            "index_hit_pct": round(100 * self.index_hit_ratio, 2),
        }
        for action, value in self.quantiles_ms.items():
            out[f"q95_{action.name.lower()}_ms"] = round(value, 1)
        return out
