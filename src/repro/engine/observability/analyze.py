"""EXPLAIN ANALYZE: per-operator row counts and wall times.

The executor wraps every physical operator's iterator in a timing shim
when a collector is supplied, so each node accumulates how many rows it
produced, how many times it was opened (NLJOIN inners re-open per outer
row), and the wall time spent producing its rows.  Times are
*inclusive* — a node's time contains its children's, exactly like the
"actual time" column of PostgreSQL's EXPLAIN ANALYZE or the DB2 snapshot
figures the paper's Figure 8 plans come from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

from ..plan import physical as phys


@dataclass
class OperatorStats:
    """Measured execution of one physical operator."""

    op_name: str
    detail: str
    rows: int = 0
    opens: int = 0
    time_ms: float = 0.0
    #: The planner's cardinality estimate for this operator (copied from
    #: :attr:`PNode.est_rows <repro.engine.plan.physical.PNode>`), or
    #: None when the planner made no claim.  ``actual vs est`` is what
    #: Q-error measures.
    est_rows: float | None = None

    @property
    def q_error(self) -> float | None:
        """``max(est/actual, actual/est)`` per probe — the standard
        cardinality-estimation error metric (1.0 is perfect).  None when
        there is no estimate or the operator never ran.  Both sides are
        +1-smoothed so empty operators yield a finite error (an estimate
        of 60 against 0 actual rows reads 61, not 6e10)."""
        if self.est_rows is None or self.opens == 0:
            return None
        actual = self.rows / self.opens + 1.0
        est = max(self.est_rows, 0.0) + 1.0
        return max(est / actual, actual / est)


class AnalyzeCollector:
    """Accumulates :class:`OperatorStats` keyed by plan-node identity."""

    def __init__(self) -> None:
        self._stats: dict[int, OperatorStats] = {}

    def stats_for(self, node: phys.PNode) -> OperatorStats | None:
        return self._stats.get(id(node))

    def _ensure(self, node: phys.PNode) -> OperatorStats:
        stat = self._stats.get(id(node))
        if stat is None:
            stat = OperatorStats(
                node.op_name,
                node.describe(),
                est_rows=getattr(node, "est_rows", None),
            )
            self._stats[id(node)] = stat
        return stat

    def wrap(self, node: phys.PNode, iterator: Iterator[tuple]) -> Iterator[tuple]:
        """Time an operator's iterator; charges only time spent inside
        ``next()`` (i.e. producing), not the consumer's."""
        stat = self._ensure(node)
        stat.opens += 1
        it = iter(iterator)
        while True:
            t0 = time.perf_counter()
            try:
                row = next(it)
            except StopIteration:
                stat.time_ms += (time.perf_counter() - t0) * 1000.0
                return
            stat.time_ms += (time.perf_counter() - t0) * 1000.0
            stat.rows += 1
            yield row

    def wrap_batches(
        self, node: phys.PNode, batches: Iterator[list]
    ) -> Iterator[list]:
        """Batch-aware sibling of :meth:`wrap` for the vectorized
        executor: one timing probe per *batch*, rows accumulated from
        batch lengths, so analyzed trees from both engines report the
        same row counts."""
        stat = self._ensure(node)
        stat.opens += 1
        it = iter(batches)
        while True:
            t0 = time.perf_counter()
            try:
                batch = next(it)
            except StopIteration:
                stat.time_ms += (time.perf_counter() - t0) * 1000.0
                return
            stat.time_ms += (time.perf_counter() - t0) * 1000.0
            stat.rows += len(batch)
            yield batch

    # -- reporting --------------------------------------------------------

    def operators(self, root: phys.PNode) -> list[OperatorStats]:
        """Stats in plan (pre-)order; nodes never opened appear with
        zero counts so the tree stays complete."""
        out: list[OperatorStats] = []

        def visit(node: phys.PNode) -> None:
            stat = self.stats_for(node)
            if stat is None:
                stat = OperatorStats(
                    node.op_name,
                    node.describe(),
                    est_rows=getattr(node, "est_rows", None),
                )
            out.append(stat)
            for child in node.children():
                visit(child)

        visit(root)
        return out


def render_analyzed_plan(root: phys.PNode, collector: AnalyzeCollector) -> str:
    """The Figure 8 operator tree annotated with measured counts.

    Example line::

        IXSCAN  [chunk_i1s1 AS f0 via ...]  (rows=8 opens=1 time=0.113ms)
    """
    lines: list[str] = []

    def visit(node: phys.PNode, depth: int) -> None:
        detail = node.describe()
        suffix = f"  [{detail}]" if detail else ""
        stat = collector.stats_for(node)
        est = getattr(node, "est_rows", None)
        est_ann = f" est={est:.1f}" if est is not None else ""
        if stat is None:
            ann = "  (never executed)"
        else:
            ann = (
                f"  (rows={stat.rows} opens={stat.opens} "
                f"time={stat.time_ms:.3f}ms{est_ann})"
            )
        lines.append("  " * depth + node.op_name + suffix + ann)
        for child in node.children():
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)
