"""The Section 2 case study: a hosted project-management service.

Conject (the paper's case for extensibility) runs collaborative project
workspaces for the construction and real-estate industries.  Its future
plans — letting participants attach additional attributes, states, and
transitions to objects, per project — are exactly the extensibility
problem schema mapping solves.  This example models that service:
organizations are tenants; workspaces, documents, tasks, and bids are
the base schema; industry-specific process extensions (defect
management, claim tracking) are tenant extensions; and one organization
later migrates to a different physical representation without downtime
for anyone else.

Run:  python examples/conject_projects.py
"""

from repro import Extension, LogicalColumn, LogicalTable, MultiTenantDatabase
from repro.engine.values import BOOLEAN, DATE, DOUBLE, INTEGER, varchar


def define_schema(mtd: MultiTenantDatabase) -> None:
    mtd.define_table(
        LogicalTable(
            "project",
            (
                LogicalColumn("id", INTEGER, indexed=True, not_null=True),
                LogicalColumn("name", varchar(60)),
                LogicalColumn("site", varchar(60)),
                LogicalColumn("started", DATE),
                LogicalColumn("budget", DOUBLE),
            ),
        )
    )
    mtd.define_table(
        LogicalTable(
            "document",
            (
                LogicalColumn("id", INTEGER, indexed=True, not_null=True),
                LogicalColumn("project", INTEGER, indexed=True),
                LogicalColumn("title", varchar(80)),
                LogicalColumn("uploaded", DATE),
                LogicalColumn("shared", BOOLEAN),
            ),
        )
    )
    mtd.define_table(
        LogicalTable(
            "task",
            (
                LogicalColumn("id", INTEGER, indexed=True, not_null=True),
                LogicalColumn("project", INTEGER, indexed=True),
                LogicalColumn("title", varchar(80)),
                LogicalColumn("assignee", varchar(40)),
                LogicalColumn("state", varchar(20), indexed=True),
                LogicalColumn("due", DATE),
            ),
        )
    )
    mtd.define_table(
        LogicalTable(
            "bid",
            (
                LogicalColumn("id", INTEGER, indexed=True, not_null=True),
                LogicalColumn("project", INTEGER, indexed=True),
                LogicalColumn("bidder", varchar(60)),
                LogicalColumn("amount", DOUBLE),
                LogicalColumn("accepted", BOOLEAN),
            ),
        )
    )
    # "Current plans are to allow participants to associate an object
    # with additional attributes, a set of states, and allowable
    # transitions between those states."
    mtd.define_extension(
        Extension(
            "defect_mgmt",
            "task",
            (
                LogicalColumn("defect_class", varchar(30)),
                LogicalColumn("severity", INTEGER),
                LogicalColumn("inspection_due", DATE),
            ),
        )
    )
    mtd.define_extension(
        Extension(
            "claims",
            "bid",
            (
                LogicalColumn("claim_ref", varchar(30)),
                LogicalColumn("claim_amount", DOUBLE),
            ),
        )
    )


def main() -> None:
    mtd = MultiTenantDatabase(layout="chunk_folding", width=6)
    define_schema(mtd)

    # Organizations = tenants.
    mtd.create_tenant(1)  # architect collective, plain schema
    mtd.create_tenant(2, extensions=("defect_mgmt",))  # general contractor
    mtd.create_tenant(3, extensions=("defect_mgmt", "claims"))  # builder

    # Workspaces and activity.
    mtd.insert(1, "project", {"id": 1, "name": "Riverside Tower",
                              "site": "Munich", "started": "2007-04-02",
                              "budget": 48_000_000.0})
    mtd.insert(2, "project", {"id": 1, "name": "Harbor Bridge Retrofit",
                              "site": "Hamburg", "started": "2006-11-20",
                              "budget": 120_000_000.0})
    mtd.insert(2, "task", {"id": 1, "project": 1,
                           "title": "Pier 4 inspection",
                           "assignee": "weber", "state": "open",
                           "due": "2008-07-01",
                           "defect_class": "corrosion", "severity": 4,
                           "inspection_due": "2008-06-20"})
    mtd.insert(2, "task", {"id": 2, "project": 1,
                           "title": "Deck survey", "assignee": "klein",
                           "state": "closed", "due": "2008-05-10",
                           "defect_class": "cracking", "severity": 2,
                           "inspection_due": "2008-05-01"})
    mtd.insert(3, "bid", {"id": 1, "project": 7, "bidder": "steelworks gmbh",
                          "amount": 2_500_000.0, "accepted": True,
                          "claim_ref": "CL-2008-017",
                          "claim_amount": 130_000.0})

    print("Contractor (tenant 2) tracks defects through its extension:")
    result = mtd.execute(
        2,
        "SELECT title, defect_class, severity FROM task "
        "WHERE state = 'open' AND severity >= 3",
    )
    for row in result.rows:
        print(f"  {row}")
    print()

    print("Builder (tenant 3) joins bids with claims:")
    result = mtd.execute(
        3,
        "SELECT bidder, amount, claim_ref, claim_amount FROM bid "
        "WHERE accepted = TRUE",
    )
    for row in result.rows:
        print(f"  {row}")
    print()

    print("The architects (tenant 1) never see those columns:")
    lookup = mtd.schema.logical_lookup(1)
    print(f"  tenant 1's task columns: {lookup('task')}")
    print()

    # Growth: the contractor becomes a whale and gets migrated to
    # private tables — on the fly, nobody else notices.
    print("Migrating tenant 2 to the Private Table Layout on-the-fly...")
    moved = mtd.migrate_tenant(2, "private")
    print(f"  rows moved per table: {moved}")
    result = mtd.execute(
        2, "SELECT title FROM task WHERE defect_class = 'corrosion'"
    )
    print(f"  tenant 2 still sees its data: {result.rows}")
    result = mtd.execute(3, "SELECT COUNT(*) FROM bid")
    print(f"  tenant 3 untouched: {result.rows[0][0]} bids")
    print()

    print("Physical tables now:")
    for table in sorted(t.name for t in mtd.db.catalog.tables()):
        print(f"  {table}")


if __name__ == "__main__":
    main()
