"""Cross-engine EXPLAIN ANALYZE parity over the shared corpus.

Both executors run the *same* physical plan, so an analyzed run must
report identical per-operator actual row counts — on the raw engine
schema and through every schema-mapping layout.  This is what makes the
optimizer-quality harness's feedback loop engine-independent: the
cardinalities it learns do not depend on which executor produced them.

(Opens can legitimately differ — the batched engine opens an NLJOIN
inner once per batch, not once per row — so parity is on rows.)
"""

import pytest

from repro.engine.observability import AnalyzeCollector
from repro.engine.sql.parser import parse_statement
from repro.quality.corpus import (
    build_engine_database,
    build_multitenant,
    generate_query,
)
from repro.quality.harness import all_layouts

SEEDS = range(15)
TENANT = 1


@pytest.fixture(scope="module", params=all_layouts())
def layout_db(request):
    """(engine database, logical→physical SQL transform) per layout."""
    layout = request.param
    if layout == "conventional":
        return build_engine_database(), (lambda sql: sql)
    mtd = build_multitenant(layout, primary_tenant=TENANT)
    return mtd.db, (lambda sql: mtd.transform_sql(TENANT, sql))


def analyzed_rows(db, stmt, mode):
    """[(op_name, rows)] in plan order for one engine's analyzed run."""
    try:
        db.execution = mode
        root = db.plan_ast(stmt)
        collector = AnalyzeCollector()
        db.execute_plan(root, collector=collector)
    finally:
        db.execution = "vectorized"
    return [(stat.op_name, stat.rows) for stat in collector.operators(root)]


@pytest.mark.parametrize("seed", SEEDS)
def test_per_operator_rows_identical_across_engines(layout_db, seed):
    db, transform = layout_db
    sql = transform(generate_query(seed))
    stmt = parse_statement(sql)
    tuple_rows = analyzed_rows(db, stmt, "tuple")
    vector_rows = analyzed_rows(db, stmt, "vectorized")
    assert tuple_rows == vector_rows, sql


def test_analyzed_plans_cover_every_operator(layout_db):
    """Sanity: the collector reports a stat for every plan node (nodes
    never opened still appear, with zero counts)."""
    db, transform = layout_db
    stmt = parse_statement(transform(generate_query(0)))
    db.execution = "tuple"
    try:
        root = db.plan_ast(stmt)
        collector = AnalyzeCollector()
        db.execute_plan(root, collector=collector)
    finally:
        db.execution = "vectorized"

    def count(node):
        return 1 + sum(count(child) for child in node.children())

    assert len(collector.operators(root)) == count(root)
