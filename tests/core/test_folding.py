"""Tests for chunk partitioning, shapes, and the utilization-driven
folding planner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import FoldingPlanner, LogicalColumn
from repro.core.folding import (
    ChunkShape,
    chunk_table_ddl,
    partition_columns,
)
from repro.engine.errors import PlanError
from repro.engine.values import BOOLEAN, DATE, DOUBLE, INTEGER, varchar


def make_columns(spec):
    """spec: list of (name, type, indexed)."""
    return [
        LogicalColumn(name, sql_type, indexed=indexed)
        for name, sql_type, indexed in spec
    ]


MIXED = make_columns(
    [
        ("id", INTEGER, True),
        ("name", varchar(50), False),
        ("opened", DATE, False),
        ("score", DOUBLE, False),
        ("flag", BOOLEAN, False),
        ("notes", varchar(100), False),
    ]
)


class TestChunkShape:
    def test_of_columns_counts_families(self):
        shape = ChunkShape.of_columns(MIXED)
        assert shape == ChunkShape(ints=2, strs=2, dates=1, dbls=1)

    def test_width(self):
        assert ChunkShape(ints=2, strs=1).width == 3

    def test_table_name_encodes_shape(self):
        assert ChunkShape(ints=1, strs=2).table_name(indexed=False) == "chunk_i1s2"
        assert ChunkShape(ints=1).table_name(indexed=True) == "chunk_i1_ix"

    def test_slot_names(self):
        shape = ChunkShape(ints=2, dates=1)
        assert shape.slot_names() == ["int1", "int2", "date1"]


class TestPartitionColumns:
    def test_indexed_columns_get_own_chunks_first(self):
        assignments = partition_columns(MIXED, width=3)
        assert assignments[0].indexed
        assert assignments[0].slots == (("id", "int1"),)

    def test_width_bounds_chunk_size(self):
        assignments = partition_columns(MIXED, width=2)
        for assignment in assignments:
            assert assignment.shape.width <= 2

    def test_width_one_is_pivot_like(self):
        assignments = partition_columns(MIXED, width=1)
        assert len(assignments) == len(MIXED)

    def test_full_width_is_universal_like(self):
        assignments = partition_columns(MIXED, width=len(MIXED))
        # One indexed chunk + one wide chunk.
        assert len(assignments) == 2

    def test_chunk_ids_sequential(self):
        assignments = partition_columns(MIXED, width=2)
        assert [a.chunk_id for a in assignments] == list(range(len(assignments)))

    def test_every_column_assigned_exactly_once(self):
        assignments = partition_columns(MIXED, width=3)
        seen = [name for a in assignments for name, _ in a.slots]
        assert sorted(seen) == sorted(c.lname for c in MIXED)

    def test_invalid_width_rejected(self):
        with pytest.raises(PlanError):
            partition_columns(MIXED, width=0)

    def test_slot_of(self):
        assignments = partition_columns(MIXED, width=10)
        data_chunk = assignments[-1]
        assert data_chunk.slot_of("name") == "str1"
        with pytest.raises(PlanError):
            data_chunk.slot_of("id")  # lives in the indexed chunk

    @settings(max_examples=50, deadline=None)
    @given(
        n_cols=st.integers(1, 30),
        width=st.integers(1, 12),
        seed=st.randoms(use_true_random=False),
    )
    def test_partition_invariants(self, n_cols, width, seed):
        types = [INTEGER, varchar(20), DATE, DOUBLE, BOOLEAN]
        columns = [
            LogicalColumn(
                f"c{i}",
                seed.choice(types),
                indexed=seed.random() < 0.2,
            )
            for i in range(n_cols)
        ]
        assignments = partition_columns(columns, width)
        seen = [name for a in assignments for name, _ in a.slots]
        assert sorted(seen) == sorted(c.lname for c in columns)
        for assignment in assignments:
            assert assignment.shape.width <= max(width, 1)
            if assignment.indexed:
                assert assignment.shape.width == 1
            # Slot names are valid for the shape.
            valid = set(assignment.shape.slot_names())
            for _, slot in assignment.slots:
                assert slot in valid


class TestChunkTableDdl:
    def test_ddl_contains_meta_columns(self):
        ddl, indexes = chunk_table_ddl(ChunkShape(ints=1, strs=1), indexed=False)
        assert "tenant INTEGER NOT NULL" in ddl
        assert "chunk INTEGER NOT NULL" in ddl
        assert any("tcr" in ix for ix in indexes)

    def test_indexed_shape_gets_value_index(self):
        _, indexes = chunk_table_ddl(ChunkShape(ints=1), indexed=True)
        assert any("itcr" in ix for ix in indexes)

    def test_soft_delete_adds_alive(self):
        ddl, _ = chunk_table_ddl(ChunkShape(ints=1), indexed=False, soft_delete=True)
        assert "alive INTEGER NOT NULL" in ddl


class TestFoldingPlanner:
    def test_hot_columns_stay_conventional(self):
        planner = FoldingPlanner(hot_fraction=0.34, chunk_width=2)
        for _ in range(100):
            planner.record_access("t", "name")
        planner.record_access("t", "opened")
        decision = planner.plan("t", MIXED)
        conventional = {c.lname for c in decision.conventional}
        assert "name" in conventional

    def test_indexed_columns_always_conventional(self):
        planner = FoldingPlanner(hot_fraction=0.0, chunk_width=2)
        decision = planner.plan("t", MIXED)
        assert "id" in {c.lname for c in decision.conventional}

    def test_cold_columns_are_chunked(self):
        planner = FoldingPlanner(hot_fraction=0.34, chunk_width=2)
        for _ in range(10):
            planner.record_access("t", "name")
        decision = planner.plan("t", MIXED)
        chunked_names = {
            name for a in decision.chunked for name, _ in a.slots
        }
        conventional = {c.lname for c in decision.conventional}
        assert chunked_names.isdisjoint(conventional)
        assert chunked_names | conventional == {c.lname for c in MIXED}

    def test_hot_fraction_bounds(self):
        with pytest.raises(PlanError):
            FoldingPlanner(hot_fraction=1.5)

    def test_heat_accumulates(self):
        planner = FoldingPlanner()
        planner.record_access("t", "a", weight=3)
        planner.record_access("T", "A")
        assert planner.heat("t", "a") == 4
