"""A pure-Python, page-accurate relational engine.

This package is the *substrate* of the reproduction: the role DB2 and
MySQL play in the paper.  It provides an instrumented buffer pool
(logical/physical page reads, hit ratios split data/index), B+-tree
indexes with prefix compression, slotted-page heap files, a SQL subset,
and a planner with two optimizer profiles (ADVANCED ≈ DB2,
SIMPLE ≈ MySQL) — everything Experiments 1 and 2 measure.
"""

from .catalog import Catalog, Column, IndexInfo, Table  # noqa: F401
from .database import Database, Result  # noqa: F401
from .errors import (  # noqa: F401
    BudgetExceededError,
    CatalogError,
    ConstraintError,
    EngineError,
    ExecutionError,
    NotNullViolation,
    ParseError,
    PlanError,
    TypeMismatchError,
    UniqueViolation,
    UnknownObjectError,
)
from .executor import ExecStats, Executor  # noqa: F401
from .explain import count_operators, plan_shape, render_plan  # noqa: F401
from .feedback import CardinalityFeedback  # noqa: F401
from .heap import InsertStrategy, RowId  # noqa: F401
from .locks import LockStats, LockTable  # noqa: F401
from .observability import (  # noqa: F401
    AnalyzeCollector,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OperatorStats,
    QueryTrace,
    render_analyzed_plan,
)
from .optimizer import OptimizerProfile, PlanDirectives, Planner  # noqa: F401
from .pager import DEFAULT_PAGE_SIZE, BufferPool, PageKind, PoolStats  # noqa: F401
from .vexecutor import BATCH_ROWS, VectorizedExecutor  # noqa: F401
from .values import (  # noqa: F401
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    SqlType,
    TypeKind,
    parse_type,
    varchar,
)
