"""Public facade: a multi-tenant database behind one object.

>>> from repro import MultiTenantDatabase, LogicalTable, LogicalColumn, Extension
>>> from repro.engine.values import INTEGER, varchar
>>> mtd = MultiTenantDatabase(layout="chunk_folding")
>>> mtd.define_table(LogicalTable("account", (
...     LogicalColumn("aid", INTEGER, indexed=True, not_null=True),
...     LogicalColumn("name", varchar(50)),
... )))
>>> mtd.define_extension(Extension("healthcare", "account", (
...     LogicalColumn("hospital", varchar(50)),
...     LogicalColumn("beds", INTEGER),
... )))
>>> mtd.create_tenant(17, extensions=("healthcare",))
>>> _ = mtd.insert(17, "account", {"aid": 1, "name": "Acme",
...                                "hospital": "St. Mary", "beds": 135})
>>> mtd.execute(17, "SELECT beds FROM account WHERE hospital = ?",
...             ["St. Mary"]).rows
[(135,)]
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Sequence

from ..engine.database import Database, Result
from ..engine.errors import CatalogError, PlanError
from ..engine.optimizer import OptimizerProfile
from ..engine.sql import ast
from ..engine.sql.parser import parse_statement
from ..engine.statement_cache import LruCache, count_params
from ..engine.values import parse_type, sort_key
from .layouts import make_layout
from .layouts.base import ALIVE, Layout
from .metadata import MetadataReport
from .migration import Migrator, read_tenant_rows
from .schema import Extension, LogicalColumn, LogicalTable, MultiTenantSchema
from .statement_cache import (
    CachedStatement,
    CrossTenantStatement,
    LogicalPreparedStatement,
    StatementCache,
)
from .transform.crosstenant import CrossTenantTransformer
from .transform.dml import DmlTransformer, UpdateMode
from .transform.flatten import (
    PredicateOrder,
    flatten_transformed,
    order_predicates,
)
from .transform.query import QueryTransformer, TenantParamAllocator


class MultiTenantDatabase:
    """One multi-tenant database: a layout over an engine instance.

    ``layout`` picks the schema-mapping technique (see
    :mod:`repro.core.layouts`); extra keyword arguments are forwarded to
    the layout (e.g. ``width=6`` for chunked layouts).  When the engine
    runs the SIMPLE optimizer profile, transformed queries are flattened
    before execution (Test 1's workaround) using ``predicate_order``.
    """

    def __init__(
        self,
        layout: str = "chunk_folding",
        *,
        db: Database | None = None,
        flatten_for_simple: bool = True,
        predicate_order: PredicateOrder = PredicateOrder.ORIGINAL_FIRST,
        update_mode: UpdateMode = UpdateMode.BUFFERED,
        statement_cache_size: int = 256,
        execution: str | None = None,
        _replay: bool = False,
        **layout_options,
    ) -> None:
        self.db = db if db is not None else Database()
        if execution is not None:
            self.db.execution = execution
        self.schema = MultiTenantSchema()
        #: True while :meth:`recover` replays logged admin operations:
        #: suppresses admin-op WAL brackets (the ops are already in the
        #: log) — see :meth:`_admin`.
        self._replay = _replay
        self.layout = make_layout(layout, self.db, self.schema, **layout_options)
        self.flatten_for_simple = flatten_for_simple
        self.predicate_order = predicate_order
        self.update_mode = update_mode
        self._overrides: dict[int, Layout] = {}
        #: tenant id -> (layout name, options) of its override layout,
        #: recorded so recovery can rebuild the same layout object.
        self._override_specs: dict[int, tuple[str, dict]] = {}
        self._migrator = Migrator(self.schema)
        with self._admin(
            "mtd_init", {"layout": layout, "options": dict(layout_options)}
        ):
            self.layout.bootstrap()
        #: Shape-keyed transformed statements; ``statement_cache_size=0``
        #: disables all caching at this layer (every call re-transforms).
        self._statements = StatementCache(statement_cache_size, self.db.metrics)
        self._parses = LruCache(statement_cache_size)
        #: One QueryTransformer/DmlTransformer per layout instance.
        self._transformers: dict[
            int, tuple[Layout, QueryTransformer, DmlTransformer]
        ] = {}

    # -- schema administration ------------------------------------------------
    #
    # Every administrative method runs inside a WAL admin-operation
    # bracket (:meth:`Database.admin_operation`): a crash mid-operation
    # leaves no partial effect after recovery (the op's records are
    # skipped during replay), a completed operation is replayed from its
    # payload by :meth:`recover`, and the closing marker carries a full
    # bookkeeping snapshot of every layout.  In memory mode the bracket
    # is a no-op context.

    def _admin(self, op: str, payload: dict):
        if self._replay:
            return nullcontext()
        return self.db.admin_operation(op, payload, self._bookkeeping_payload)

    def _bookkeeping_payload(self) -> dict:
        """The ``admin_end`` snapshot: allocator and partition state of
        the default layout and every override layout."""
        return {
            "default": self.layout.bookkeeping(),
            "overrides": {
                tenant_id: {
                    "layout": self._override_specs[tenant_id][0],
                    "options": self._override_specs[tenant_id][1],
                    "state": layout.bookkeeping(),
                }
                for tenant_id, layout in self._overrides.items()
            },
        }

    def define_table(self, table: LogicalTable) -> None:
        """Register (and physically provision) a base table."""
        with self._admin("define_table", {"table": table}):
            self.schema.add_table(table)
            for layout in self._all_layouts():
                layout.on_table_added(table)
            self._invalidate_statements()

    def define_extension(self, extension: Extension) -> None:
        with self._admin("define_extension", {"extension": extension}):
            self.schema.add_extension(extension)
            for layout in self._all_layouts():
                layout.on_extension_added(extension)
            self._invalidate_statements()

    def create_tenant(self, tenant_id: int, extensions: Sequence[str] = ()) -> None:
        with self._admin(
            "create_tenant",
            {"tenant": tenant_id, "extensions": tuple(extensions)},
        ):
            config = self.schema.add_tenant(tenant_id, tuple(extensions))
            self.layout.on_tenant_added(config)

    def drop_tenant(self, tenant_id: int) -> None:
        """Remove a tenant and physically purge its data.

        Crash-atomic: the purge runs as one transaction inside an admin
        bracket, so recovery either replays the whole drop or none of
        it — never a tenant with half its fragments deleted.
        """
        with self._admin("drop_tenant", {"tenant": tenant_id}):
            layout = self.layout_for(tenant_id)
            # Enumerate fragments before the transaction: fragment
            # listing may lazily CREATE missing physical tables, and
            # DDL commits any open transaction.
            purges: list[tuple] = []
            for table in self.schema.tables():
                purges.append(
                    (table.name, layout.fragments(tenant_id, table.name))
                )
            with self.db.atomic():
                for _table_name, fragments in purges:
                    self.db.crashpoint("drop_tenant.table")
                    for fragment in fragments:
                        predicate = None
                        for meta_col, value in fragment.meta:
                            conjunct = ast.BinaryOp(
                                "=",
                                ast.ColumnRef(None, meta_col),
                                ast.Literal(value),
                            )
                            predicate = (
                                conjunct
                                if predicate is None
                                else ast.BinaryOp("AND", predicate, conjunct)
                            )
                        if predicate is not None:
                            self.db.execute_ast(
                                ast.Delete(fragment.table, predicate)
                            )
            config = self.schema.remove_tenant(tenant_id)
            layout.on_tenant_removed(config)
            self._overrides.pop(tenant_id, None)
            self._override_specs.pop(tenant_id, None)
            self._invalidate_statements()

    def grant_extension(self, tenant_id: int, extension_name: str) -> None:
        """Subscribe a tenant to an extension while the system is online."""
        with self._admin(
            "grant_extension",
            {"tenant": tenant_id, "extension": extension_name},
        ):
            self.schema.grant_extension(tenant_id, extension_name)
            self.layout_for(tenant_id).on_extension_granted(
                self.schema.tenant(tenant_id),
                self.schema.extension(extension_name),
            )
            self._invalidate_statements()

    def alter_extension(
        self, extension_name: str, new_columns: Sequence[LogicalColumn]
    ) -> None:
        """Widen an extension online (§6.3 ALTER).  Existing rows read
        NULL for the new columns; generic layouts do this as pure
        bookkeeping (plus NULL backfill), conventional layouts rebuild
        their affected tables."""
        with self._admin(
            "alter_extension",
            {"extension": extension_name, "new_columns": tuple(new_columns)},
        ):
            altered = self.schema.alter_extension(
                extension_name, tuple(new_columns)
            )
            for layout in self._all_layouts():
                layout.on_extension_altered(altered, tuple(new_columns))
            self._invalidate_statements()

    # -- per-tenant layout overrides (on-the-fly migration) ----------------------

    def layout_for(self, tenant_id: int) -> Layout:
        return self._overrides.get(tenant_id, self.layout)

    def _all_layouts(self) -> list[Layout]:
        seen: list[Layout] = [self.layout]
        for layout in self._overrides.values():
            if layout not in seen:
                seen.append(layout)
        return seen

    def migrate_tenant(self, tenant_id: int, layout_name: str, **options) -> dict:
        """Move one tenant to a different representation on-the-fly.

        Returns rows moved per table.  Other tenants keep the default
        layout; this tenant's queries follow it immediately.
        """
        with self._admin(
            "migrate_tenant",
            {"tenant": tenant_id, "layout": layout_name, "options": dict(options)},
        ):
            source = self.layout_for(tenant_id)
            target = make_layout(layout_name, self.db, self.schema, **options)
            target.bootstrap()
            # Replay schema history into the new layout; physical structures
            # that already exist (shared chunk tables, ...) are reused.
            for table in self.schema.tables():
                target.on_table_added(table)
            for extension in self.schema.extensions():
                target.on_extension_added(extension)
            target.on_tenant_added(self.schema.tenant(tenant_id))
            moved = self._migrator.migrate_tenant(tenant_id, source, target)
            self._overrides[tenant_id] = target
            self._override_specs[tenant_id] = (layout_name, dict(options))
            self._invalidate_statements()
        return moved

    # -- statements -----------------------------------------------------------------

    def _invalidate_statements(self) -> None:
        """Schema administration changed tenant shapes or physical
        structure: drop every cached transformed statement (and the
        per-layout transformer memo — override layouts may be gone)."""
        self._statements.invalidate_all()
        self._transformers.clear()

    def _transformer_for(
        self, layout: Layout
    ) -> tuple[QueryTransformer, DmlTransformer]:
        """The memoized transformer pair for one layout instance."""
        entry = self._transformers.get(id(layout))
        if entry is None or entry[0] is not layout:
            entry = (
                layout,
                QueryTransformer(layout, self.schema),
                DmlTransformer(layout, self.schema),
            )
            self._transformers[id(layout)] = entry
        return entry[1], entry[2]

    def _parse_logical(self, sql: str) -> ast.Statement:
        """Parse logical SQL, reusing the AST for repeated texts (the
        nodes are frozen dataclasses, safe to share)."""
        stmt = self._parses.get(sql)
        if stmt is None:
            stmt = parse_statement(sql)
            self._parses.put(sql, stmt)
        return stmt

    def transform_sql(self, tenant_id: int, sql: str) -> str:
        """The physical SQL a logical SELECT turns into (step 4 output,
        flattened when the engine optimizer is SIMPLE)."""
        stmt = parse_statement(sql)
        if not isinstance(stmt, ast.Select):
            raise PlanError("transform_sql takes a SELECT")
        return self._physical_select(tenant_id, stmt).sql()

    def _physical_select(
        self,
        tenant_id: int,
        stmt: ast.Select,
        tenant_params: TenantParamAllocator | None = None,
    ) -> ast.Select:
        transformer, _ = self._transformer_for(self.layout_for(tenant_id))
        physical = transformer.transform_select(
            tenant_id, stmt, tenant_params=tenant_params
        )
        if (
            self.db.profile is OptimizerProfile.SIMPLE
            and self.flatten_for_simple
        ):
            physical = flatten_transformed(physical, self._physical_lookup)
            physical = order_predicates(physical, self.predicate_order)
        return physical

    def _physical_lookup(self, table_name: str) -> list[str]:
        return [c.lname for c in self.db.catalog.table(table_name).columns]

    @property
    def execution(self) -> str:
        """The engine's execution mode (``"vectorized"`` / ``"tuple"``)."""
        return self.db.execution

    @execution.setter
    def execution(self, mode: str) -> None:
        self.db.execution = mode

    def _statement_context(self) -> tuple:
        """Everything besides (sql, layout, shape) that shapes the
        transformed statement; a cached entry built under a different
        context is rebuilt."""
        return (
            self.db.profile,
            self.db.execution,
            self.flatten_for_simple,
            self.predicate_order,
        )

    def _cached_select(
        self, tenant_id: int, sql: str, stmt: ast.Select, layout: Layout
    ) -> CachedStatement | None:
        """The shape-shared cache entry for one logical SELECT, built on
        demand; ``None`` when caching is disabled."""
        if not self._statements.enabled:
            return None
        key = (sql, id(layout), layout.statement_shape(tenant_id))
        context = self._statement_context()
        entry = self._statements.lookup(key, context)
        if entry is not None:
            return entry
        tenant_params = TenantParamAllocator(count_params(stmt))
        physical = self._physical_select(tenant_id, stmt, tenant_params)
        entry = CachedStatement(
            self.db.prepare_ast(physical), tenant_params, context
        )
        self._statements.store(key, entry)
        return entry

    def prepare(self, sql: str) -> LogicalPreparedStatement:
        """Prepare a logical statement for repeated execution.

        The handle is tenant-agnostic: ``handle.execute(tenant_id,
        params)`` serves any tenant, reusing one transformed physical
        statement per schema shape underneath.
        """
        return LogicalPreparedStatement(self, sql, self._parse_logical(sql))

    def execute(
        self, tenant_id: int, sql: str, params: Sequence[object] = ()
    ) -> Result:
        """Run a logical statement on behalf of a tenant."""
        return self._execute_parsed(
            tenant_id, sql, self._parse_logical(sql), params
        )

    # -- cross-tenant statements (MTSQL FOR TENANTS) -------------------------

    def _resolve_tenant_set(self, clause: ast.TenantClause) -> tuple[int, ...]:
        """The concrete, validated, sorted tenant id set of a clause.

        ``FOR ALL TENANTS`` resolves at execution time, so tenants
        created after the statement was first cached are picked up (the
        resolved set is part of the cache key)."""
        if clause.all_tenants:
            return tuple(self.tenant_ids())
        for tenant_id in clause.ids:
            self.schema.tenant(tenant_id)  # validates
        return tuple(sorted(set(clause.ids)))

    def _build_cross(
        self, stmt: ast.Select, ids: tuple[int, ...], context: tuple
    ) -> CrossTenantStatement:
        transformer = CrossTenantTransformer(
            self.schema, self.layout_for, self._physical_lookup
        )
        plan = transformer.transform(stmt, ids)
        prepared = []
        for group in plan.groups:
            physical = group.select
            if (
                self.db.profile is OptimizerProfile.SIMPLE
                and self.flatten_for_simple
            ):
                physical = flatten_transformed(physical, self._physical_lookup)
                physical = order_predicates(physical, self.predicate_order)
            prepared.append(self.db.prepare_ast(physical))
        return CrossTenantStatement(
            prepared, plan.merge, plan.output_names, context
        )

    def execute_cross(self, sql: str, params: Sequence[object] = ()) -> Result:
        """Run one ``SELECT ... FOR TENANTS IN (...)`` / ``FOR ALL
        TENANTS`` statement over the declared tenant set.

        The statement is fused: one physical statement per structure
        group (usually one total on shared layouts) with the tenant-set
        predicate pushed into the shared scans, instead of a per-tenant
        fan-out loop.  ``FOR ALL TENANTS`` over an empty database
        returns an empty result."""
        stmt = self._parse_logical(sql)
        if not isinstance(stmt, ast.Select) or stmt.tenants is None:
            raise PlanError(
                "execute_cross takes a SELECT with a FOR TENANTS clause"
            )
        ids = self._resolve_tenant_set(stmt.tenants)
        if not ids:
            return Result([], [], 0)
        context = self._statement_context()
        entry = None
        key = ("xt", sql, ids)
        if self._statements.enabled:
            entry = self._statements.lookup(key, context)
        if entry is None:
            entry = self._build_cross(stmt, ids, context)
            if self._statements.enabled:
                self._statements.store(key, entry)
        return entry.execute(params)

    def transform_cross_sql(self, sql: str) -> list[str]:
        """The fused physical SQL a cross-tenant SELECT turns into —
        one statement per structure group (flattened when the engine
        optimizer is SIMPLE)."""
        stmt = parse_statement(sql)
        if not isinstance(stmt, ast.Select) or stmt.tenants is None:
            raise PlanError(
                "transform_cross_sql takes a SELECT with a FOR TENANTS clause"
            )
        ids = self._resolve_tenant_set(stmt.tenants)
        transformer = CrossTenantTransformer(
            self.schema, self.layout_for, self._physical_lookup
        )
        plan = transformer.transform(stmt, ids)
        out = []
        for group in plan.groups:
            physical = group.select
            if (
                self.db.profile is OptimizerProfile.SIMPLE
                and self.flatten_for_simple
            ):
                physical = flatten_transformed(physical, self._physical_lookup)
                physical = order_predicates(physical, self.predicate_order)
            out.append(physical.sql())
        return out

    def _execute_parsed(
        self,
        tenant_id: int,
        sql: str,
        stmt: ast.Statement,
        params: Sequence[object],
    ) -> Result:
        self.schema.tenant(tenant_id)  # validates
        layout = self.layout_for(tenant_id)
        if isinstance(stmt, ast.Select):
            if stmt.tenants is not None:
                raise PlanError(
                    "FOR TENANTS statements span tenants; run them "
                    "through execute_cross(), not a per-tenant execute()"
                )
            cached = self._cached_select(tenant_id, sql, stmt, layout)
            if cached is not None:
                return cached.execute(tenant_id, params)
            physical = self._physical_select(tenant_id, stmt)
            return self.db.execute_ast(physical, params)
        _, dml = self._transformer_for(layout)
        if isinstance(stmt, (ast.Insert, ast.Update, ast.Delete)):
            # One logical statement fans out into several physical ones;
            # an atomic block keeps a crash from leaving a logical row
            # with only some of its fragments.  Fragment listing may
            # lazily CREATE physical tables, so force it before the
            # transaction opens (DDL commits any open transaction).
            layout.fragments(tenant_id, stmt.table)
            with self.db.atomic():
                if isinstance(stmt, ast.Insert):
                    count = dml.insert(tenant_id, stmt, params)
                elif isinstance(stmt, ast.Update):
                    count = dml.update(tenant_id, stmt, params, self.update_mode)
                else:
                    count = dml.delete(tenant_id, stmt, params, self.update_mode)
            return Result([], [], count)
        if isinstance(stmt, ast.CreateTable):
            table = LogicalTable(
                stmt.table,
                tuple(
                    LogicalColumn(
                        c.name, parse_type(c.type_text), not_null=c.not_null
                    )
                    for c in stmt.columns
                ),
            )
            self.define_table(table)
            return Result([], [], 0)
        raise PlanError(
            f"unsupported logical statement {type(stmt).__name__}"
        )

    def insert(
        self,
        tenant_id: int,
        table_name: str,
        values: dict,
        *,
        row_id: int | None = None,
    ) -> int:
        """Insert one logical row from a mapping; returns its Row id."""
        self.schema.tenant(tenant_id)
        layout = self.layout_for(tenant_id)
        _, dml = self._transformer_for(layout)
        layout.fragments(tenant_id, table_name)
        with self.db.atomic():
            return dml.insert_values(
                tenant_id, table_name, values, row_id=row_id
            )

    def restore(self, tenant_id: int, table_name: str, row_ids: list[int]) -> int:
        """Bring soft-deleted rows back from the Trashcan."""
        _, dml = self._transformer_for(self.layout_for(tenant_id))
        with self.db.atomic():
            return dml.restore(tenant_id, table_name, row_ids)

    def purge_trashcan(self, tenant_id: int, table_name: str) -> int:
        """Physically delete a tenant's soft-deleted rows."""
        _, dml = self._transformer_for(self.layout_for(tenant_id))
        with self.db.atomic():
            return dml.purge_trashcan(tenant_id, table_name)

    # -- crash recovery -----------------------------------------------------------

    @classmethod
    def recover(cls, db: Database, **kwargs) -> "MultiTenantDatabase":
        """Rebuild the schema-mapping layer on a recovered database.

        The engine's own recovery (:func:`repro.engine.durability.
        recovery.recover`, run by ``Database(path=...)``) restores the
        physical tables; this replays the completed administrative
        operations from the log to rebuild the logical schema, layout
        objects, per-tenant overrides, and allocator bookkeeping.
        Incomplete operations (crash mid-``drop_tenant``/
        ``migrate_tenant``) were already discarded wholesale by the
        engine, so the replay only ever sees consistent state.
        ``kwargs`` override non-durable constructor options
        (``flatten_for_simple``, ``update_mode``, ...).
        """
        ops = db.recovered_admin_ops
        init = next((op for op in ops if op["op"] == "mtd_init"), None)
        if init is None:
            raise CatalogError(
                "log records no multi-tenant schema (was this database "
                "created through MultiTenantDatabase?)"
            )
        mtd = cls(
            init["payload"]["layout"],
            db=db,
            _replay=True,
            **{**init["payload"]["options"], **kwargs},
        )
        try:
            for op in ops:
                mtd._replay_admin(op)
            mtd._restore_row_counters()
        finally:
            mtd._replay = False
        mtd._invalidate_statements()
        return mtd

    def _replay_admin(self, op: dict) -> None:
        """Re-apply one logged administrative operation.

        Structural hooks re-run (their DDL is idempotent — the physical
        tables survived through engine recovery); data-moving hooks
        (extension backfills, table rebuilds, the migration copy) are
        skipped because the engine already replayed their row-level
        effects, and the closing bookkeeping snapshot overwrites any
        allocator state the hooks would have computed.
        """
        name, payload = op["op"], op["payload"]
        if name == "mtd_init":
            pass  # handled by construction in recover()
        elif name == "define_table":
            table = payload["table"]
            self.schema.add_table(table)
            for layout in self._all_layouts():
                layout.on_table_added(table)
        elif name == "define_extension":
            extension = payload["extension"]
            self.schema.add_extension(extension)
            for layout in self._all_layouts():
                layout.on_extension_added(extension)
        elif name == "create_tenant":
            config = self.schema.add_tenant(
                payload["tenant"], tuple(payload["extensions"])
            )
            self.layout.on_tenant_added(config)
        elif name == "drop_tenant":
            tenant_id = payload["tenant"]
            layout = self.layout_for(tenant_id)
            config = self.schema.remove_tenant(tenant_id)
            layout.on_tenant_removed(config)
            self._overrides.pop(tenant_id, None)
            self._override_specs.pop(tenant_id, None)
        elif name == "grant_extension":
            # Schema-level only: the backfill/rebuild DML was replayed
            # by the engine, and partition widening comes back with the
            # bookkeeping snapshot below.
            self.schema.grant_extension(payload["tenant"], payload["extension"])
        elif name == "alter_extension":
            self.schema.alter_extension(
                payload["extension"], tuple(payload["new_columns"])
            )
        elif name == "migrate_tenant":
            tenant_id = payload["tenant"]
            target = make_layout(
                payload["layout"], self.db, self.schema, **payload["options"]
            )
            target.bootstrap()
            for table in self.schema.tables():
                target.on_table_added(table)
            for extension in self.schema.extensions():
                target.on_extension_added(extension)
            target.on_tenant_added(self.schema.tenant(tenant_id))
            self._overrides[tenant_id] = target
            self._override_specs[tenant_id] = (
                payload["layout"],
                dict(payload["options"]),
            )
        else:
            raise CatalogError(f"unknown logged admin operation {name!r}")
        end = op.get("end")
        if end:
            self.layout.restore_bookkeeping(end["default"])
            for tenant_id, entry in end["overrides"].items():
                layout = self._overrides.get(tenant_id)
                if layout is not None:
                    layout.restore_bookkeeping(entry["state"])

    def _restore_row_counters(self) -> None:
        """Advance Row-id allocators past every id visible in the data.

        The bookkeeping snapshots only capture allocator state as of the
        last administrative operation; ordinary inserts after it
        allocated further ids, recoverable from the data itself (MAX of
        the anchor fragment's Row column).  Layouts without a Row
        column (Private Tables) have nothing to restore — their row ids
        are never stored.
        """
        for config in self.schema.tenants():
            layout = self.layout_for(config.tenant_id)
            for table in self.schema.tables():
                anchor = layout.fragments(config.tenant_id, table.name)[0]
                if anchor.row_column is None:
                    continue
                where = " AND ".join(
                    f"{column} = {value!r}" for column, value in anchor.meta
                ) or "1 = 1"
                top = self.db.execute(
                    f"SELECT MAX({anchor.row_column}) FROM {anchor.table} "
                    f"WHERE {where}"
                ).scalar()
                if top is not None:
                    layout.rows.observe(config.tenant_id, table.name, top)

    # -- introspection ------------------------------------------------------------

    def report(self) -> MetadataReport:
        return self.layout.report()

    def tenant_ids(self) -> list[int]:
        """All tenant ids, sorted — the public enumeration surface the
        placement catalog and rebalancer use (callers used to reach into
        ``schema._tenants``)."""
        return sorted(config.tenant_id for config in self.schema.tenants())

    def tenant_row_counts(self, tenant_id: int) -> dict[str, int]:
        """Live logical row count per base table for one tenant.

        Counts the anchor fragment under the tenant's meta-data
        predicate (plus the Trashcan's ``alive`` filter when soft delete
        is on), so the number matches what reconstruction returns —
        the invariant the rebalancer verifies after a move.
        """
        self.schema.tenant(tenant_id)  # validates
        layout = self.layout_for(tenant_id)
        counts: dict[str, int] = {}
        for table in self.schema.tables():
            anchor = layout.fragments(tenant_id, table.name)[0]
            conjuncts = [
                f"{column} = {value!r}" for column, value in anchor.meta
            ]
            if layout.soft_delete:
                conjuncts.append(f"{ALIVE} = 1")
            where = " AND ".join(conjuncts) or "1 = 1"
            counts[table.name] = int(
                self.db.execute(
                    f"SELECT COUNT(*) FROM {anchor.table} WHERE {where}"
                ).scalar()
            )
        return counts

    def export_rows(
        self, tenant_id: int, table_name: str
    ) -> list[tuple[int | None, dict]]:
        """Every logical row of one tenant's table as ``(row_id,
        {column: value})``, reconstructed from the layout's fragments.
        ``row_id`` is ``None`` for layouts without a Row column
        (Private Tables).  This is the snapshot feed of the cluster
        rebalancer: re-inserting the pairs through :meth:`insert`
        (``row_id=`` preserved) reproduces the tenant bit-identically.
        """
        self.schema.tenant(tenant_id)  # validates
        layout = self.layout_for(tenant_id)
        columns, has_row, rows = read_tenant_rows(
            self.db, self.schema, layout, tenant_id, table_name
        )
        width = len(columns)
        # Stable (row-key, values) order: reconstruction row order is an
        # artifact of physical placement (join order, chunk partitions)
        # and differs across layouts, but snapshot feeds are compared
        # across replicas and before/after migrations.
        return sorted(
            (
                (row[width] if has_row else None, dict(zip(columns, row[:width])))
                for row in rows
            ),
            key=lambda pair: (
                sort_key(pair[0]),
                [sort_key(v) for v in pair[1].values()],
            ),
        )

    def explain(self, tenant_id: int, sql: str) -> str:
        """Engine plan for the transformed query."""
        return self.db.explain(self.transform_sql(tenant_id, sql))

    def explain_analyze(
        self, tenant_id: int, sql: str, params: Sequence[object] = ()
    ) -> str:
        """Run the transformed query and render the measured plan."""
        return self.db.explain_analyze(self.transform_sql(tenant_id, sql), params)

    def trace(
        self, tenant_id: int, sql: str, params: Sequence[object] = ()
    ):
        """Per-query engine trace of a logical SELECT (page-read deltas,
        operator timings) — see :meth:`repro.engine.Database.trace`."""
        return self.db.trace(self.transform_sql(tenant_id, sql), params)

    @property
    def metrics(self):
        """The underlying engine's metrics registry."""
        return self.db.metrics
