"""Semantic analyzer: the table-driven bad-SQL suite plus the
"clean statements execute unchanged" property.

Every rejected statement must carry the documented rule id (see
docs/analysis_rules.md), and gating ``Database.prepare()`` on the
analyzer must not change the result of any statement it accepts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.findings import RULES, Severity
from repro.analysis.semantic import CatalogProvider, SemanticAnalyzer
from repro.engine.database import Database
from repro.engine.errors import SemanticError
from repro.engine.sql.parser import parse_statement


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE account ("
        "aid INTEGER NOT NULL, tenant INTEGER NOT NULL, "
        "name VARCHAR(50), beds INTEGER, opened DATE)"
    )
    database.execute("CREATE UNIQUE INDEX account_pk ON account (tenant, aid)")
    rows = [
        (1, 17, "Acme", 135, "2001-05-04"),
        (2, 17, "Gump", 1042, "2003-07-12"),
        (1, 35, "Ball", None, "2006-01-30"),
        (1, 42, "Big", 65, "2007-11-11"),
    ]
    for row in rows:
        database.execute(
            "INSERT INTO account VALUES (?, ?, ?, ?, ?)", list(row)
        )
    return database


def analyze(db, sql):
    analyzer = SemanticAnalyzer(CatalogProvider(db.catalog))
    return analyzer.analyze(parse_statement(sql), locus=sql)


BAD_SQL = [
    ("SELECT aid FROM nosuch", "SEM001"),
    ("SELECT nope FROM account", "SEM002"),
    ("SELECT account.nope FROM account", "SEM002"),
    ("SELECT x.aid FROM account a", "SEM002"),
    ("SELECT a.aid FROM account a, account b", None),  # fine: qualified
    ("SELECT aid FROM account a, account b", "SEM003"),
    ("SELECT a.aid FROM account a, account a", "SEM004"),
    ("INSERT INTO account (aid, tenant, name) VALUES (1, 17)", "SEM005"),
    ("INSERT INTO account (aid, aid, tenant) VALUES (1, 1, 17)", "SEM005"),
    ("INSERT INTO account (aid) VALUES (3)", "SEM008"),  # NOT NULL tenant
    ("SELECT FROO(name) FROM account", "SEM006"),
    ("SELECT LENGTH(name, aid) FROM account", "SEM006"),
    ("SELECT aid FROM account WHERE name > 3", "SEM007"),
    ("SELECT aid FROM account WHERE aid + name > 1", "SEM007"),
    ("UPDATE account SET aid = 'x' WHERE aid = 1", "SEM008"),
    ("INSERT INTO account (aid, tenant, beds) VALUES (4, 17, 'many')", "SEM008"),
    ("SELECT aid FROM account WHERE SUM(aid) > 1", "SEM009"),
    ("SELECT SUM(COUNT(*)) FROM account", "SEM009"),
    ("DELETE FROM account WHERE nope = 1", "SEM002"),
    ("UPDATE account SET nope = 1", "SEM002"),
]


@pytest.mark.parametrize("sql,rule_id", BAD_SQL)
def test_bad_sql_rule_ids(db, sql, rule_id):
    report = analyze(db, sql)
    if rule_id is None:
        assert report.ok, [f.message for f in report.findings]
    else:
        assert rule_id in {f.rule_id for f in report.errors}, (
            f"{sql!r}: expected {rule_id}, got "
            f"{[(f.rule_id, f.message) for f in report.findings]}"
        )


def test_unknown_table_does_not_cascade(db):
    # An opaque source suppresses SEM002 noise for its columns.
    report = analyze(db, "SELECT n.anything FROM nosuch n")
    assert {f.rule_id for f in report.errors} == {"SEM001"}


def test_prepare_rejects_with_rule_id(db):
    with pytest.raises(SemanticError) as excinfo:
        db.prepare("SELECT nope FROM account")
    assert "SEM002" in str(excinfo.value)
    assert excinfo.value.findings
    assert db.metrics.counter("analysis.semantic.rejections").value >= 1


def test_prepare_accepts_clean_sql(db):
    prepared = db.prepare("SELECT aid, name FROM account WHERE tenant = ?")
    assert prepared.execute((17,)).rows == [(1, "Acme"), (2, "Gump")]


def test_correlated_subquery_is_clean(db):
    report = analyze(
        db,
        "SELECT aid FROM account a WHERE beds IN "
        "(SELECT b.beds FROM account b WHERE b.tenant = a.tenant)",
    )
    assert report.ok, [f.message for f in report.findings]


def test_rule_catalog_is_consistent():
    for rule_id, rule in RULES.items():
        assert rule.rule_id == rule_id
        assert isinstance(rule.severity, Severity)
        assert rule.title


# -- property: analyzer-clean statements execute identically -------------

COLUMNS = {
    "aid": "int",
    "tenant": "int",
    "beds": "int",
    "name": "str",
    "opened": "date",
}
LITERALS = {
    "int": st.integers(min_value=-5, max_value=2000).map(str),
    "str": st.sampled_from(["'Acme'", "'Ball'", "'Z%'"]),
    "date": st.sampled_from(["'2001-05-04'", "'2010-01-01'"]),
}


@st.composite
def clean_selects(draw):
    column = draw(st.sampled_from(sorted(COLUMNS)))
    literal = draw(LITERALS[COLUMNS[column]])
    op = draw(st.sampled_from(["=", "<>", "<", ">=", ">"]))
    order = draw(st.sampled_from(["", " ORDER BY aid"]))
    projection = draw(
        st.sampled_from(["aid, name", "COUNT(*)", "aid, tenant, beds"])
    )
    if projection == "COUNT(*)":
        order = ""
    return (
        f"SELECT {projection} FROM account "
        f"WHERE {column} {op} {literal}{order}"
    )


@settings(max_examples=60, deadline=None)
@given(sql=clean_selects())
def test_clean_statements_execute_identically(sql):
    db = Database()
    db.execute(
        "CREATE TABLE account ("
        "aid INTEGER NOT NULL, tenant INTEGER NOT NULL, "
        "name VARCHAR(50), beds INTEGER, opened DATE)"
    )
    for row in [
        (1, 17, "Acme", 135, "2001-05-04"),
        (1, 35, "Ball", None, "2006-01-30"),
    ]:
        db.execute("INSERT INTO account VALUES (?, ?, ?, ?, ?)", list(row))
    report = analyze(db, sql)
    assert report.ok, (sql, [f.message for f in report.findings])
    # The analyzer gate on prepare() must not change the answer the
    # ungated text path produces.
    assert db.prepare(sql).execute().rows == db.execute(sql).rows
