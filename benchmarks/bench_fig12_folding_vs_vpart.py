"""Figure 12 (Test 6) — Chunk Folding vs. plain vertical partitioning.

Vertical partitioning keeps each chunk in its own physical table
(identified by table name); Chunk Folding folds chunks of many tables
into shared Chunk Tables with an extra Chunk meta-data column.  The
paper reports >50 % response-time improvements for folding at widths
3-6 (shared tables keep the buffer pool effective) and a ~10 %
degradation at width 90, where the layouts are nearly identical except
for the Chunk column's index overhead (~25 % more physical data reads).
"""

import pytest

from conftest import BENCH_CONFIG
from repro.experiments.report import render_series

WIDTHS = (3, 6, 15, 90)
SCALES = (3, 30, 60, 90)


@pytest.fixture(scope="module")
def improvements(pool):
    """% response-time improvement of folding over vertical
    partitioning, cold cache (buffer-pool effects included)."""
    from bench_fig11_cold_cache import cold_ms

    out: dict[int, dict[int, float]] = {}
    for width in WIDTHS:
        out[width] = {}
        for scale in SCALES:
            folded = cold_ms(pool.measure(f"chunk{width}", scale, cold=True))
            unfolded = cold_ms(
                pool.measure(f"chunk{width}-vp", scale, cold=True)
            )
            out[width][scale] = 100.0 * (unfolded - folded) / unfolded
    return out


class TestFigure12:
    def test_report(self, benchmark, improvements, report):
        series = {
            f"chunk{width}": [
                (scale, improvements[width][scale]) for scale in SCALES
            ]
            for width in WIDTHS
        }
        benchmark.pedantic(lambda: None, rounds=1)
        report(
            "fig12_folding_vs_vpart",
            render_series(
                "Figure 12: Response-time improvement of Chunk Folding "
                "over vertical partitioning [%] (cold cache)",
                "q2_scale",
                series,
            ),
        )

    def test_folding_helps_narrow_chunks(self, improvements):
        """Paper: >50 % improvement for the 3- and 6-column configs."""
        assert improvements[3][90] > 20.0
        assert improvements[6][90] > 10.0

    def test_folding_roughly_neutral_at_full_width(self, improvements):
        """Paper: nearly identical layouts at width 90, folding ~10 %
        slower from the extra Chunk column."""
        assert -40.0 < improvements[90][90] < 25.0

    def test_improvement_declines_with_width(self, improvements):
        at_90 = [improvements[width][90] for width in WIDTHS]
        assert at_90[0] > at_90[-1]

    def test_vertical_partitioning_needs_more_tables(self, pool):
        folded = pool.experiment("chunk6").mtd.db.catalog.table_count
        unfolded = pool.experiment("chunk6-vp").mtd.db.catalog.table_count
        assert unfolded > folded

    def test_both_layouts_agree_on_answers(self, pool):
        from repro.experiments.chunkqueries import TENANT, q2_sql

        folded = pool.experiment("chunk6")
        unfolded = pool.experiment("chunk6-vp")
        sql = q2_sql(9)
        assert sorted(folded.mtd.execute(TENANT, sql, [5]).rows) == sorted(
            unfolded.mtd.execute(TENANT, sql, [5]).rows
        )

    def test_benchmark_folded_vs_unfolded_wallclock(self, benchmark, pool):
        from repro.experiments.chunkqueries import TENANT, q2_sql

        exp = pool.experiment("chunk6")
        sql = exp.mtd.transform_sql(TENANT, q2_sql(12))
        exp.mtd.db.execute(sql, [1])

        def run():
            return exp.mtd.db.execute(sql, [1])

        result = benchmark(run)
        assert result.rows
