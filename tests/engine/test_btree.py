"""Tests for the B+-tree: correctness against a model, splits,
prefix scans, and prefix compression."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.btree import BTreeIndex
from repro.engine.errors import UniqueViolation
from repro.engine.heap import RowId
from repro.engine.pager import BufferPool, PageKind


def make_index(unique=False, prefix_compression=True, capacity=256):
    pool = BufferPool(capacity_pages=capacity)
    return BTreeIndex(
        pool, segment_id=1, unique=unique, prefix_compression=prefix_compression
    ), pool


def rid(n):
    return RowId(page_id=n, slot=0)


class TestBasics:
    def test_insert_search(self):
        index, _ = make_index()
        index.insert((5,), rid(1))
        assert index.search((5,)) == [rid(1)]

    def test_missing_key_returns_empty(self):
        index, _ = make_index()
        assert index.search((42,)) == []

    def test_duplicate_keys_accumulate_rids(self):
        index, _ = make_index()
        index.insert((5,), rid(1))
        index.insert((5,), rid(2))
        assert set(index.search((5,))) == {rid(1), rid(2)}

    def test_unique_rejects_duplicates(self):
        index, _ = make_index(unique=True)
        index.insert((5,), rid(1))
        with pytest.raises(UniqueViolation):
            index.insert((5,), rid(2))

    def test_delete(self):
        index, _ = make_index()
        index.insert((5,), rid(1))
        assert index.delete((5,), rid(1)) is True
        assert index.search((5,)) == []

    def test_delete_missing_returns_false(self):
        index, _ = make_index()
        assert index.delete((5,), rid(1)) is False

    def test_distinct_keys_counter(self):
        index, _ = make_index()
        index.insert((1,), rid(1))
        index.insert((1,), rid(2))
        index.insert((2,), rid(3))
        assert index.distinct_keys == 2
        index.delete((1,), rid(1))
        assert index.distinct_keys == 2
        index.delete((1,), rid(2))
        assert index.distinct_keys == 1


class TestSplits:
    def test_many_inserts_split_and_stay_searchable(self):
        index, _ = make_index()
        n = 3000
        for i in range(n):
            index.insert((i, f"value-{i}"), rid(i))
        assert index.height > 1
        for i in (0, 1, n // 2, n - 1):
            assert index.search((i, f"value-{i}")) == [rid(i)]

    def test_reverse_insert_order(self):
        index, _ = make_index()
        for i in reversed(range(2000)):
            index.insert((i,), rid(i))
        keys = [k for k, _ in index.scan_prefix(())]
        assert keys == [(i,) for i in range(2000)]

    def test_descent_reads_one_page_per_level(self):
        index, pool = make_index()
        for i in range(5000):
            index.insert((i,), rid(i))
        before = pool.stats.snapshot()
        index.search((2500,))
        delta = pool.stats.delta(before)
        assert delta.logical_index == index.height


class TestPrefixScan:
    def test_prefix_scan_filters_leading_columns(self):
        index, _ = make_index()
        for tenant in (17, 35, 42):
            for row in range(10):
                index.insert((tenant, 0, row), rid(tenant * 100 + row))
        results = list(index.scan_prefix((17,)))
        assert len(results) == 10
        assert all(k[0] == 17 for k, _ in results)

    def test_empty_prefix_scans_everything(self):
        index, _ = make_index()
        for i in range(100):
            index.insert((i % 5, i), rid(i))
        assert len(list(index.scan_prefix(()))) == 100

    def test_prefix_scan_in_key_order(self):
        index, _ = make_index()
        for i in reversed(range(50)):
            index.insert((1, i), rid(i))
        keys = [k for k, _ in index.scan_prefix((1,))]
        assert keys == sorted(keys, key=lambda k: k[1])

    def test_prefix_scan_across_leaf_boundaries(self):
        index, _ = make_index()
        for i in range(3000):
            index.insert((7, i), rid(i))
        index.insert((8, 0), rid(9999))
        assert len(list(index.scan_prefix((7,)))) == 3000

    def test_range_scan(self):
        index, _ = make_index()
        for i in range(100):
            index.insert((i,), rid(i))
        results = [k[0] for k, _ in index.scan_range((10,), (20,))]
        assert results == list(range(10, 21))


class TestPrefixCompression:
    def test_compression_reduces_index_pages(self):
        """Redundant leading columns (Tenant, Table, Chunk) compress well
        — the paper's partitioned-B-tree argument."""
        compressed, _ = make_index(prefix_compression=True)
        plain, _ = make_index(prefix_compression=False)
        for i in range(4000):
            key = ("tenant-000017", "account_table", 3, i)
            compressed.insert(key, rid(i))
            plain.insert(key, rid(i))
        assert compressed.page_count < plain.page_count


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 1000)), max_size=400
        )
    )
    def test_matches_dict_model(self, entries):
        index, _ = make_index()
        model: dict[tuple, list] = {}
        for i, (a, b) in enumerate(entries):
            key = (a, b)
            index.insert(key, rid(i))
            model.setdefault(key, []).append(rid(i))
        for key, rids in model.items():
            assert sorted(index.search(key), key=lambda r: r.page_id) == sorted(
                rids, key=lambda r: r.page_id
            )
        scanned = list(index.scan_prefix(()))
        assert len(scanned) == sum(len(v) for v in model.values())
        keys = [k for k, _ in scanned]
        assert keys == sorted(keys)

    @settings(max_examples=30, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 200), min_size=1, max_size=200),
        deletions=st.data(),
    )
    def test_insert_delete_interleaving(self, keys, deletions):
        index, _ = make_index()
        live: dict[tuple, list] = {}
        for i, k in enumerate(keys):
            index.insert((k,), rid(i))
            live.setdefault((k,), []).append(rid(i))
            if deletions.draw(st.booleans()) and live:
                victim_key = deletions.draw(st.sampled_from(sorted(live)))
                victim_rid = live[victim_key][0]
                assert index.delete(victim_key, victim_rid)
                live[victim_key].remove(victim_rid)
                if not live[victim_key]:
                    del live[victim_key]
        assert index.entry_count == sum(len(v) for v in live.values())
        for key, rids in live.items():
            assert set(index.search(key)) == set(rids)
