"""Tests for on-the-fly migration between representations."""

import itertools

import pytest

from .conftest import build_running_example

PAIRS = [
    ("extension", "chunk_folding"),
    ("chunk_folding", "extension"),
    ("universal", "chunk"),
    ("chunk", "pivot"),
    ("pivot", "universal"),
    ("private", "chunk_folding"),
    ("chunk_folding", "private"),
]


class TestMigration:
    @pytest.mark.parametrize("source,target", PAIRS)
    def test_roundtrip_preserves_data(self, source, target):
        mtd = build_running_example(source)
        before = {
            tenant: sorted(
                mtd.execute(tenant, "SELECT * FROM account").rows
            )
            for tenant in (17, 35, 42)
        }
        moved = mtd.migrate_tenant(17, target)
        assert moved["account"] == 2
        after17 = sorted(mtd.execute(17, "SELECT * FROM account").rows)
        assert after17 == before[17]
        # Untouched tenants still on the old layout, still correct.
        for tenant in (35, 42):
            assert (
                sorted(mtd.execute(tenant, "SELECT * FROM account").rows)
                == before[tenant]
            )

    def test_migrated_tenant_is_writable(self):
        mtd = build_running_example("extension")
        mtd.migrate_tenant(17, "chunk_folding")
        mtd.insert(
            17,
            "account",
            {"aid": 3, "name": "PostMove", "hospital": "New", "beds": 1},
        )
        assert mtd.execute(17, "SELECT COUNT(*) FROM account").rows == [(3,)]

    def test_row_ids_preserved(self):
        mtd = build_running_example("extension")
        mtd.migrate_tenant(17, "chunk")
        new_row = mtd.insert(17, "account", {"aid": 99, "name": "x"})
        # Two rows existed with ids 0 and 1; the next must be 2+.
        assert new_row >= 2

    def test_source_fragments_purged(self):
        mtd = build_running_example("universal")
        universal = mtd.db.catalog.table("universal")
        before = universal.row_count
        mtd.migrate_tenant(17, "chunk")
        assert universal.row_count == before - 2

    def test_updates_follow_the_move(self):
        mtd = build_running_example("pivot")
        mtd.migrate_tenant(17, "chunk_folding")
        mtd.execute(17, "UPDATE account SET beds = 5 WHERE aid = 1")
        assert mtd.execute(
            17, "SELECT beds FROM account WHERE aid = 1"
        ).rows == [(5,)]

    def test_layout_override_reported(self):
        mtd = build_running_example("extension")
        assert mtd.layout_for(17) is mtd.layout
        mtd.migrate_tenant(17, "chunk")
        assert mtd.layout_for(17) is not mtd.layout
        assert mtd.layout_for(35) is mtd.layout
