"""Cross-tenant SELECT transformation: the MTSQL ``FOR TENANTS`` path.

A statement carrying a :class:`~repro.engine.sql.ast.TenantClause` is
evaluated once over the union of the declared tenants' data.  Instead of
re-running the §6.1 single-tenant transformation N times (the fan-out
loop every SaaS report degenerates into), the transformer fuses the
tenant dimension into the physical statement itself, MTBase-style:

* the per-fragment meta-data filter widens from ``tenant = t`` to
  ``tenant IN (t1, ..., tk)``, pushed into the shared scan;
* every table reconstruction exposes the tenant identity as a visible
  ``__tenant`` output column, row-alignment joins widen to the compound
  (tenant, row) key, and join queries gain cross-source tenant-equality
  conjuncts so joins never pair rows of different tenants;
* ``TENANT_ID()`` in the select list / WHERE / GROUP BY becomes a
  reference to that column, so a grouped-by-tenant rollup runs as ONE
  grouped scan over the shared physical tables.

Tenants whose physical representation differs (per-tenant Private
Tables, legacy unfolded chunk tables, a granted-extension set that
changes which fragments the queried columns live in) cannot share one
statement.  The transformer groups the tenant set by *reconstruction
signature* — the physical SQL the tenant needs, modulo the tenant
filter — and emits one fused statement per structure group.  Shared
layouts collapse to a single group (true fusion); only structurally
distinct stragglers pay an extra statement, and only *their* physical
tables are read at all (tenant-set pruning).  Multi-group results are
merged in Python: plain rows are concatenated, aggregates are
decomposed into mergeable partials (``AVG`` ships as ``SUM`` +
``COUNT``) and recombined per group key.

Tenant identities are inlined as literals, not parameters: the declared
tenant set is part of the statement's identity (the isolation prover
checks literal domination — every tenant guard must stay inside the
declared set) and of the statement-cache key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ...engine.errors import PlanError
from ...engine.expr import _ARITH, _COMPARE, _coerce_pair
from ...engine.plan.logical import (
    QueryBlock,
    build_block,
    conjoin,
    output_name,
    qualify_block,
)
from ...engine.sql import ast
from ...engine.values import sort_key
from ..layouts.base import ALIVE, Fragment, TENANT_META
from ..schema import MultiTenantSchema
from .query import select_needed_fragments, used_columns

#: Output column every fused reconstruction exposes the tenant id as.
TENANT_COLUMN = "__tenant"
#: The dialect function addressing the tenant dimension.
TENANT_FUNC = "TENANT_ID"


def contains_tenant_fn(expr: ast.Expr | ast.Star) -> bool:
    """Whether ``TENANT_ID()`` appears anywhere in an expression."""
    if isinstance(expr, ast.FuncCall):
        if expr.name.upper() == TENANT_FUNC:
            return True
        return any(contains_tenant_fn(a) for a in expr.args)
    if isinstance(expr, ast.BinaryOp):
        return contains_tenant_fn(expr.left) or contains_tenant_fn(expr.right)
    if isinstance(expr, (ast.UnaryOp, ast.IsNull)):
        return contains_tenant_fn(expr.operand)
    if isinstance(expr, ast.InList):
        return contains_tenant_fn(expr.operand) or any(
            contains_tenant_fn(i) for i in expr.items
        )
    return False


def _rewrite_tenant_fn(expr: ast.Expr, replacement: ast.Expr) -> ast.Expr:
    """Replace every ``TENANT_ID()`` call with ``replacement``."""
    if isinstance(expr, ast.FuncCall):
        if expr.name.upper() == TENANT_FUNC:
            if expr.args or expr.star:
                raise PlanError("TENANT_ID() takes no arguments")
            return replacement
        return ast.FuncCall(
            expr.name,
            tuple(_rewrite_tenant_fn(a, replacement) for a in expr.args),
            expr.star,
            expr.distinct,
        )
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op,
            _rewrite_tenant_fn(expr.left, replacement),
            _rewrite_tenant_fn(expr.right, replacement),
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _rewrite_tenant_fn(expr.operand, replacement))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(
            _rewrite_tenant_fn(expr.operand, replacement), expr.negated
        )
    if isinstance(expr, ast.InList):
        return ast.InList(
            _rewrite_tenant_fn(expr.operand, replacement),
            tuple(_rewrite_tenant_fn(i, replacement) for i in expr.items),
            expr.negated,
        )
    return expr


def tenant_set_predicate(
    column: ast.ColumnRef, tenant_ids: Sequence[int]
) -> ast.Expr:
    """The pushed-down tenant-set filter: ``= t`` or ``IN (t1, ...)``."""
    if len(tenant_ids) == 1:
        return ast.BinaryOp("=", column, ast.Literal(tenant_ids[0]))
    return ast.InList(column, tuple(ast.Literal(t) for t in tenant_ids))


def build_cross_reconstruction(
    fragments: list[Fragment],
    used: list[str],
    binding: str,
    *,
    tenant_ids: Sequence[int] | None,
    literal_tenant: int,
    soft_delete: bool = False,
) -> ast.SubquerySource:
    """A table reconstruction widened to a tenant *set*.

    Mirrors :func:`~repro.core.transform.query.build_reconstruction`
    with three changes: the tenant meta filter is a set predicate over
    ``tenant_ids``, the tenant identity is exposed as the
    :data:`TENANT_COLUMN` output column, and row-alignment joins include
    the tenant column so rows of different tenants never align.

    ``tenant_ids=None`` builds the *signature probe*: the same statement
    with the tenant filter omitted, used to decide which tenants can
    share a fused statement (equal probe SQL = equal structure).
    ``literal_tenant`` supplies the exposed tenant id for fragments with
    no tenant meta column (Private Tables) — those are necessarily
    single-tenant statements.
    """
    needed = select_needed_fragments(fragments, used, binding)
    aliases = {id(f): f"f{i}" for i, f in enumerate(needed)}
    anchor = needed[0]
    if len(needed) > 1 and any(f.row_column is None for f in needed):
        raise PlanError(
            f"source {binding!r} needs row alignment but a fragment has no row column"
        )

    items: list[ast.SelectItem] = []
    emitted: set[str] = set()
    for column in used:
        if column in emitted:
            continue
        emitted.add(column)
        for fragment in needed:
            if fragment.covers(column):
                loc = fragment.column_map()[column]
                expr: ast.Expr = ast.ColumnRef(aliases[id(fragment)], loc.physical)
                if loc.cast:
                    expr = ast.FuncCall(loc.cast, (expr,))
                items.append(ast.SelectItem(expr, column))
                break

    anchor_alias = aliases[id(anchor)]
    anchor_meta = dict(anchor.meta)
    if TENANT_META in anchor_meta or any(
        c == TENANT_META for c, _ in anchor.meta
    ):
        tenant_expr: ast.Expr = ast.ColumnRef(anchor_alias, TENANT_META)
    else:
        # No tenant meta column (Private Tables): the physical table IS
        # the tenant scope, so the identity is a constant.
        if tenant_ids is not None and len(tenant_ids) != 1:
            raise PlanError(
                f"source {binding!r} has per-tenant physical tables; "
                "it cannot fuse multiple tenants into one statement"
            )
        tenant_expr = ast.Literal(
            tenant_ids[0] if tenant_ids is not None else literal_tenant
        )
    items.append(ast.SelectItem(tenant_expr, TENANT_COLUMN))

    sources = [ast.TableSource(f.table, aliases[id(f)]) for f in needed]

    conjuncts: list[ast.Expr] = []
    for fragment in needed:
        alias = aliases[id(fragment)]
        for meta_col, value in fragment.meta:
            if meta_col == TENANT_META:
                if tenant_ids is not None:
                    conjuncts.append(
                        tenant_set_predicate(
                            ast.ColumnRef(alias, TENANT_META), tenant_ids
                        )
                    )
                continue
            conjuncts.append(
                ast.BinaryOp(
                    "=", ast.ColumnRef(alias, meta_col), ast.Literal(value)
                )
            )
        if soft_delete:
            conjuncts.append(
                ast.BinaryOp("=", ast.ColumnRef(alias, ALIVE), ast.Literal(1))
            )
    for fragment in needed[1:]:
        alias = aliases[id(fragment)]
        if any(c == TENANT_META for c, _ in fragment.meta) and any(
            c == TENANT_META for c, _ in anchor.meta
        ):
            conjuncts.append(
                ast.BinaryOp(
                    "=",
                    ast.ColumnRef(anchor_alias, TENANT_META),
                    ast.ColumnRef(alias, TENANT_META),
                )
            )
        conjuncts.append(
            ast.BinaryOp(
                "=",
                ast.ColumnRef(anchor_alias, anchor.row_column),
                ast.ColumnRef(alias, fragment.row_column),
            )
        )

    select = ast.Select(
        items=tuple(items), sources=tuple(sources), where=conjoin(conjuncts)
    )
    return ast.SubquerySource(select, binding)


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AggPartial:
    """One logical aggregate decomposed into mergeable partial columns.

    ``columns`` are absolute positions in the partial statement's output
    row; AVG carries two (its SUM and COUNT), everything else one.
    """

    fingerprint: str  # sql() of the rewritten aggregate call
    func: str  # COUNT | COUNT_STAR | SUM | MIN | MAX | AVG
    columns: tuple[int, ...]


@dataclass
class MergeSpec:
    """How to combine per-group results into the final answer."""

    aggregated: bool
    distinct: bool = False
    limit: int | None = None
    # concat path: (output column index, descending) sort keys.
    order_indexes: tuple[tuple[int, bool], ...] = ()
    # aggregate path:
    key_fingerprints: tuple[str, ...] = ()
    partial_ops: tuple[str, ...] = ()  # count | sum | min | max, per partial col
    aggs: tuple[AggPartial, ...] = ()
    item_exprs: tuple[ast.Expr, ...] = ()
    having: ast.Expr | None = None
    order_exprs: tuple[tuple[ast.Expr, bool], ...] = ()
    alias_positions: dict[str, int] = field(default_factory=dict)


@dataclass
class CrossGroup:
    """One structure group: the tenants and their fused statement."""

    tenant_ids: tuple[int, ...]
    select: ast.Select


@dataclass
class CrossPlan:
    """The transformed cross-tenant statement: one fused physical
    statement per structure group plus (for multiple groups) the merge
    recipe.  ``merge is None`` means the single group's statement IS the
    answer — ORDER BY / LIMIT / HAVING ran inside the engine."""

    tenant_ids: tuple[int, ...]
    groups: list[CrossGroup]
    merge: MergeSpec | None
    output_names: list[str]


# ---------------------------------------------------------------------------
# The transformer
# ---------------------------------------------------------------------------

_UNSUPPORTED = (
    "cross-tenant statements do not support {what}: the per-tenant "
    "fan-out loop is the escape hatch"
)


class CrossTenantTransformer:
    """Transforms ``FOR TENANTS`` SELECTs into fused physical plans.

    ``layout_for`` resolves a tenant id to its layout — per-tenant
    overrides from on-the-fly migration included, which is exactly what
    makes migrated tenants land in their own structure group.
    """

    def __init__(
        self,
        schema: MultiTenantSchema,
        layout_for: Callable[[int], object],
        physical_lookup: Callable[[str], list[str]] | None = None,
    ) -> None:
        self.schema = schema
        self.layout_for = layout_for
        self._physical_lookup = physical_lookup

    # -- validation ---------------------------------------------------------

    def _validate(self, select: ast.Select) -> None:
        for source in select.sources:
            if isinstance(source, ast.SubquerySource):
                raise PlanError(_UNSUPPORTED.format(what="FROM subqueries"))

        def check(expr: ast.Expr | None) -> None:
            if expr is None:
                return
            if isinstance(expr, ast.InSubquery):
                raise PlanError(_UNSUPPORTED.format(what="IN (SELECT ...)"))
            if isinstance(expr, ast.FuncCall):
                if expr.distinct and expr.is_aggregate:
                    raise PlanError(
                        _UNSUPPORTED.format(what="DISTINCT aggregates")
                    )
                for arg in expr.args:
                    check(arg)
            elif isinstance(expr, ast.BinaryOp):
                check(expr.left)
                check(expr.right)
            elif isinstance(expr, (ast.UnaryOp, ast.IsNull)):
                check(expr.operand)
            elif isinstance(expr, ast.InList):
                check(expr.operand)
                for item in expr.items:
                    check(item)

        for item in select.items:
            if not isinstance(item.expr, ast.Star):
                check(item.expr)
        check(select.where)
        for expr in select.group_by:
            check(expr)
        check(select.having)
        for order in select.order_by:
            check(order.expr)

    # -- entry point --------------------------------------------------------

    def transform(
        self, select: ast.Select, tenant_ids: Sequence[int]
    ) -> CrossPlan:
        if not tenant_ids:
            raise PlanError("cross-tenant statement over an empty tenant set")
        ids = tuple(sorted(set(tenant_ids)))
        self._validate(select)
        if select.tenants is not None:
            select = ast.Select(
                items=select.items,
                sources=select.sources,
                where=select.where,
                group_by=select.group_by,
                having=select.having,
                order_by=select.order_by,
                limit=select.limit,
                distinct=select.distinct,
            )

        lookup = self._lookup_for(ids[0])
        block = qualify_block(build_block(select), lookup)
        # Expand ORDER BY alias references into their select-item
        # expressions: the engine resolves aliases post-projection, but
        # flattening a fused reconstruction renames physical columns out
        # from under that resolution (generic layouts map ``name`` to
        # ``col2``), so only fully-expanded order expressions are safe.
        aliases = {
            item.alias.lower(): item.expr
            for item in block.items
            if item.alias is not None and not isinstance(item.expr, ast.Star)
        }
        if aliases and block.order_by:
            block.order_by = [
                ast.OrderItem(
                    aliases.get(order.expr.column.lower(), order.expr)
                    if isinstance(order.expr, ast.ColumnRef)
                    and order.expr.table is None
                    else order.expr,
                    order.descending,
                )
                for order in block.order_by
            ]
        usage = used_columns(block)

        # Which FROM sources are tenant-mapped logical tables.
        recon_specs: list[tuple[int, str, str, list[str]]] = []
        for position, source in enumerate(block.sources):
            if isinstance(source, ast.TableSource) and self.schema.has_table(
                source.name
            ):
                binding = source.binding.lower()
                recon_specs.append(
                    (position, source.name, binding, usage.get(binding, []))
                )

        groups = self._group_tenants(ids, recon_specs)
        aggregated = block.is_aggregating

        if len(groups) == 1:
            (layout, members) = groups[0]
            fused = self._fused_select(block, recon_specs, layout, members)
            names = [output_name(i, n) for n, i in enumerate(fused.items)]
            return CrossPlan(ids, [CrossGroup(members, fused)], None, names)

        if aggregated:
            return self._aggregate_plan(block, recon_specs, ids, groups)
        return self._concat_plan(block, recon_specs, ids, groups)

    # -- tenant grouping ----------------------------------------------------

    def _lookup_for(self, tenant_id: int):
        logical = self.schema.logical_lookup(tenant_id)

        def lookup(table_name: str) -> list[str]:
            if self.schema.has_table(table_name):
                return logical(table_name)
            if self._physical_lookup is not None:
                return self._physical_lookup(table_name)
            return logical(table_name)  # raises UnknownObjectError

        return lookup

    def _group_tenants(
        self,
        tenant_ids: tuple[int, ...],
        recon_specs: list[tuple[int, str, str, list[str]]],
    ) -> list[tuple[object, tuple[int, ...]]]:
        """Partition the tenant set into structure groups.

        The signature is the probe reconstruction's SQL (tenant filter
        omitted): tenants producing byte-identical probes read exactly
        the same physical tables/columns and can share one statement.
        """
        buckets: dict[tuple, tuple[object, list[int]]] = {}
        for tenant_id in tenant_ids:
            layout = self.layout_for(tenant_id)
            parts = []
            for _pos, table_name, binding, used in recon_specs:
                fragments = layout.fragments(tenant_id, table_name)
                probe = build_cross_reconstruction(
                    fragments,
                    used,
                    binding,
                    tenant_ids=None,
                    literal_tenant=tenant_id,
                    soft_delete=layout.soft_delete,
                )
                parts.append(probe.select.sql())
            signature = tuple(parts)
            bucket = buckets.get(signature)
            if bucket is None:
                buckets[signature] = (layout, [tenant_id])
            else:
                bucket[1].append(tenant_id)
        return [
            (layout, tuple(members)) for layout, members in buckets.values()
        ]

    # -- fused statement assembly -------------------------------------------

    def _build_sources(
        self,
        block: QueryBlock,
        recon_specs: list[tuple[int, str, str, list[str]]],
        layout,
        members: tuple[int, ...],
    ) -> tuple[list[ast.Source], list[ast.Expr], ast.ColumnRef]:
        """The fused FROM clause for one group: reconstructions with the
        tenant-set filter pushed down, plus cross-source tenant-equality
        conjuncts, plus the canonical ``TENANT_ID()`` replacement ref."""
        recon_at = {pos: (name, binding, used) for pos, name, binding, used in recon_specs}
        sources: list[ast.Source] = []
        tenant_refs: list[ast.ColumnRef] = []
        representative = members[0]
        for position, source in enumerate(block.sources):
            spec = recon_at.get(position)
            if spec is None:
                sources.append(source)
                continue
            table_name, binding, used = spec
            fragments = layout.fragments(representative, table_name)
            sources.append(
                build_cross_reconstruction(
                    fragments,
                    used,
                    binding,
                    tenant_ids=members,
                    literal_tenant=representative,
                    soft_delete=layout.soft_delete,
                )
            )
            tenant_refs.append(ast.ColumnRef(binding, TENANT_COLUMN))
        if not tenant_refs:
            raise PlanError(
                "cross-tenant statement references no tenant-mapped table"
            )
        # Joins must stay within one tenant: equate every source's
        # exposed tenant id with the first's.
        equalities: list[ast.Expr] = [
            ast.BinaryOp("=", tenant_refs[0], other)
            for other in tenant_refs[1:]
        ]
        return sources, equalities, tenant_refs[0]

    def _rewrite_items(
        self, items: list[ast.SelectItem], tenant_ref: ast.ColumnRef
    ) -> list[ast.SelectItem]:
        out = []
        for item in items:
            alias = item.alias
            if (
                alias is None
                and isinstance(item.expr, ast.FuncCall)
                and item.expr.name.upper() == TENANT_FUNC
            ):
                alias = "tenant_id"
            out.append(
                ast.SelectItem(_rewrite_tenant_fn(item.expr, tenant_ref), alias)
            )
        return out

    def _fused_select(
        self,
        block: QueryBlock,
        recon_specs: list[tuple[int, str, str, list[str]]],
        layout,
        members: tuple[int, ...],
    ) -> ast.Select:
        """The complete fused statement for a single structure group —
        ORDER BY / LIMIT / HAVING run inside the engine."""
        sources, equalities, tenant_ref = self._build_sources(
            block, recon_specs, layout, members
        )
        conjuncts = equalities + [
            _rewrite_tenant_fn(c, tenant_ref) for c in block.conjuncts
        ]
        return ast.Select(
            items=tuple(self._rewrite_items(block.items, tenant_ref)),
            sources=tuple(sources),
            where=conjoin(conjuncts),
            group_by=tuple(
                _rewrite_tenant_fn(e, tenant_ref) for e in block.group_by
            ),
            having=_rewrite_tenant_fn(block.having, tenant_ref)
            if block.having is not None
            else None,
            order_by=tuple(
                ast.OrderItem(_rewrite_tenant_fn(o.expr, tenant_ref), o.descending)
                for o in block.order_by
            ),
            limit=block.limit,
            distinct=block.distinct,
        )

    # -- multi-group plans ---------------------------------------------------

    def _concat_plan(
        self,
        block: QueryBlock,
        recon_specs,
        ids: tuple[int, ...],
        groups,
    ) -> CrossPlan:
        """Non-aggregating multi-group plan: per-group statements keep
        ORDER BY / LIMIT (a valid per-group top-k), the merge re-sorts
        and re-limits globally."""
        group_plans: list[CrossGroup] = []
        names: list[str] = []
        for layout, members in groups:
            fused = self._fused_select(block, recon_specs, layout, members)
            # HAVING without aggregation behaves as a WHERE; keep it.
            group_plans.append(CrossGroup(members, fused))
            if not names:
                names = [output_name(i, n) for n, i in enumerate(fused.items)]

        alias_positions = {
            name: position for position, name in enumerate(names)
        }
        rewritten_items = group_plans[0].select.items
        item_fps = [item.expr.sql() for item in rewritten_items]
        order_indexes: list[tuple[int, bool]] = []
        for order in group_plans[0].select.order_by:
            expr = order.expr
            index: int | None = None
            if isinstance(expr, ast.ColumnRef) and expr.table is None:
                index = alias_positions.get(expr.column.lower())
            if index is None:
                fp = expr.sql()
                index = next(
                    (n for n, f in enumerate(item_fps) if f == fp), None
                )
            if index is None:
                raise PlanError(
                    _UNSUPPORTED.format(
                        what="ORDER BY on unselected expressions over "
                        "structurally heterogeneous tenant sets"
                    )
                )
            order_indexes.append((index, order.descending))
        merge = MergeSpec(
            aggregated=False,
            distinct=block.distinct,
            limit=block.limit,
            order_indexes=tuple(order_indexes),
        )
        return CrossPlan(ids, group_plans, merge, names)

    def _aggregate_plan(
        self,
        block: QueryBlock,
        recon_specs,
        ids: tuple[int, ...],
        groups,
    ) -> CrossPlan:
        """Aggregating multi-group plan: per-group statements compute
        partial aggregates keyed by the GROUP BY exprs; the merge
        recombines partials, applies HAVING, evaluates the original
        select items, then sorts/limits."""
        # Rewrite once against a canonical tenant ref to fix fingerprints
        # (the rewritten exprs are identical across groups: bindings come
        # from the logical statement).
        first_layout, first_members = groups[0]
        _sources, _eq, tenant_ref = self._build_sources(
            block, recon_specs, first_layout, first_members
        )
        key_exprs = [_rewrite_tenant_fn(e, tenant_ref) for e in block.group_by]
        items = self._rewrite_items(block.items, tenant_ref)
        having = (
            _rewrite_tenant_fn(block.having, tenant_ref)
            if block.having is not None
            else None
        )
        order_exprs = [
            (_rewrite_tenant_fn(o.expr, tenant_ref), o.descending)
            for o in block.order_by
        ]

        # Collect every distinct aggregate call reachable from the final
        # expressions and decompose it into mergeable partials.
        agg_calls: dict[str, ast.FuncCall] = {}

        def collect(expr: ast.Expr | None) -> None:
            if expr is None:
                return
            if isinstance(expr, ast.FuncCall) and expr.is_aggregate:
                agg_calls.setdefault(expr.sql(), expr)
                return
            if isinstance(expr, ast.BinaryOp):
                collect(expr.left)
                collect(expr.right)
            elif isinstance(expr, (ast.UnaryOp, ast.IsNull)):
                collect(expr.operand)
            elif isinstance(expr, ast.FuncCall):
                for arg in expr.args:
                    collect(arg)
            elif isinstance(expr, ast.InList):
                collect(expr.operand)
                for i in expr.items:
                    collect(i)

        for item in items:
            collect(item.expr)
        collect(having)
        for expr, _desc in order_exprs:
            collect(expr)

        key_count = len(key_exprs)
        partial_items: list[ast.SelectItem] = [
            ast.SelectItem(expr, f"k{n}") for n, expr in enumerate(key_exprs)
        ]
        partial_ops: list[str] = []
        aggs: list[AggPartial] = []
        for fingerprint, call in agg_calls.items():
            name = call.name.upper()
            position = key_count + len(partial_ops)
            if name == "AVG":
                partial_items.append(
                    ast.SelectItem(ast.FuncCall("SUM", call.args), f"a{len(partial_ops)}")
                )
                partial_items.append(
                    ast.SelectItem(
                        ast.FuncCall("COUNT", call.args), f"a{len(partial_ops) + 1}"
                    )
                )
                partial_ops.extend(("sum", "count"))
                aggs.append(AggPartial(fingerprint, "AVG", (position, position + 1)))
                continue
            partial_items.append(ast.SelectItem(call, f"a{len(partial_ops)}"))
            if name == "COUNT":
                partial_ops.append("count")
                aggs.append(
                    AggPartial(
                        fingerprint,
                        "COUNT_STAR" if call.star else "COUNT",
                        (position,),
                    )
                )
            elif name == "SUM":
                partial_ops.append("sum")
                aggs.append(AggPartial(fingerprint, "SUM", (position,)))
            else:  # MIN / MAX
                partial_ops.append(name.lower())
                aggs.append(AggPartial(fingerprint, name, (position,)))

        # Validate the final expressions are evaluable from key values
        # and merged aggregates alone.
        env_fps = {e.sql() for e in key_exprs} | set(agg_calls)
        alias_names = {
            item.alias.lower() for item in items if item.alias is not None
        }
        for item in items:
            _check_final_expr(item.expr, env_fps, alias_names)
        if having is not None:
            _check_final_expr(having, env_fps, alias_names)
        for expr, _desc in order_exprs:
            _check_final_expr(expr, env_fps, alias_names)

        group_plans: list[CrossGroup] = []
        for layout, members in groups:
            sources, equalities, ref = self._build_sources(
                block, recon_specs, layout, members
            )
            conjuncts = equalities + [
                _rewrite_tenant_fn(c, ref) for c in block.conjuncts
            ]
            partial = ast.Select(
                items=tuple(partial_items),
                sources=tuple(sources),
                where=conjoin(conjuncts),
                group_by=tuple(key_exprs),
            )
            group_plans.append(CrossGroup(members, partial))

        names = [output_name(i, n) for n, i in enumerate(items)]
        merge = MergeSpec(
            aggregated=True,
            distinct=block.distinct,
            limit=block.limit,
            key_fingerprints=tuple(e.sql() for e in key_exprs),
            partial_ops=tuple(partial_ops),
            aggs=tuple(aggs),
            item_exprs=tuple(item.expr for item in items),
            having=having,
            order_exprs=tuple(order_exprs),
            alias_positions={
                item.alias.lower(): n
                for n, item in enumerate(items)
                if item.alias is not None
            },
        )
        return CrossPlan(ids, group_plans, merge, names)


# ---------------------------------------------------------------------------
# Merge-time evaluation
# ---------------------------------------------------------------------------

_SCALAR_FUNCS = {"LENGTH", "UPPER", "LOWER", "ABS", "COALESCE"}


def _check_final_expr(
    expr: ast.Expr, env_fps: set[str], alias_names: set[str]
) -> None:
    if expr.sql() in env_fps:
        return
    if isinstance(expr, ast.Literal):
        return
    if isinstance(expr, ast.ColumnRef):
        if expr.table is None and expr.column.lower() in alias_names:
            return
        raise PlanError(
            f"column {expr.sql()} is neither grouped nor aggregated in a "
            "cross-tenant rollup"
        )
    if isinstance(expr, ast.BinaryOp):
        _check_final_expr(expr.left, env_fps, alias_names)
        _check_final_expr(expr.right, env_fps, alias_names)
        return
    if isinstance(expr, (ast.UnaryOp, ast.IsNull)):
        _check_final_expr(expr.operand, env_fps, alias_names)
        return
    if isinstance(expr, ast.FuncCall) and expr.name.upper() in _SCALAR_FUNCS:
        for arg in expr.args:
            _check_final_expr(arg, env_fps, alias_names)
        return
    raise PlanError(
        f"cannot merge expression {expr.sql()} across structure groups"
    )


def _eval_final(
    expr: ast.Expr,
    env: dict[str, object],
    out_row: tuple | None = None,
    alias_positions: dict[str, int] | None = None,
):
    fingerprint = expr.sql()
    if fingerprint in env:
        return env[fingerprint]
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        if (
            expr.table is None
            and alias_positions is not None
            and out_row is not None
        ):
            index = alias_positions.get(expr.column.lower())
            if index is not None:
                return out_row[index]
        raise PlanError(f"unresolved merge reference {expr.sql()}")
    if isinstance(expr, ast.BinaryOp):
        op = expr.op.upper()
        left = _eval_final(expr.left, env, out_row, alias_positions)
        if op == "AND":
            if left is False:
                return False
            right = _eval_final(expr.right, env, out_row, alias_positions)
            if right is False:
                return False
            return None if left is None or right is None else True
        if op == "OR":
            if left is True:
                return True
            right = _eval_final(expr.right, env, out_row, alias_positions)
            if right is True:
                return True
            return None if left is None or right is None else False
        right = _eval_final(expr.right, env, out_row, alias_positions)
        if left is None or right is None:
            return None
        if op in _COMPARE:
            left, right = _coerce_pair(left, right)
            try:
                return _COMPARE[op](left, right)
            except TypeError:
                return _COMPARE[op](sort_key(left), sort_key(right))
        if op in _ARITH:
            return _ARITH[op](left, right)
        raise PlanError(f"unsupported merge operator {expr.op!r}")
    if isinstance(expr, ast.UnaryOp):
        value = _eval_final(expr.operand, env, out_row, alias_positions)
        if expr.op.upper() == "NOT":
            return None if value is None else not value
        return None if value is None else -value
    if isinstance(expr, ast.IsNull):
        value = _eval_final(expr.operand, env, out_row, alias_positions)
        return value is not None if expr.negated else value is None
    if isinstance(expr, ast.FuncCall):
        name = expr.name.upper()
        args = [
            _eval_final(a, env, out_row, alias_positions) for a in expr.args
        ]
        if name == "COALESCE":
            return next((a for a in args if a is not None), None)
        if args and args[0] is None:
            return None
        if name == "LENGTH":
            return len(str(args[0]))
        if name == "UPPER":
            return str(args[0]).upper()
        if name == "LOWER":
            return str(args[0]).lower()
        if name == "ABS":
            return abs(args[0])
    raise PlanError(f"cannot evaluate merge expression {expr.sql()}")


def _combine(op: str, a, b):
    if op == "count":
        return a + b
    if b is None:
        return a
    if a is None:
        return b
    if op == "sum":
        return a + b
    if op == "min":
        return b if sort_key(b) < sort_key(a) else a
    return b if sort_key(b) > sort_key(a) else a


def _finalize(agg: AggPartial, partials: list):
    if agg.func == "AVG":
        total = partials_at(partials, agg.columns[0])
        count = partials_at(partials, agg.columns[1])
        if not count:
            return None
        return total / count
    return partials_at(partials, agg.columns[0])


def partials_at(partials: list, absolute: int):
    return partials[absolute]


def merge_results(
    spec: MergeSpec, results: Sequence[Sequence[tuple]]
) -> list[tuple]:
    """Combine per-group result rows into the final answer."""
    if not spec.aggregated:
        rows = [row for group_rows in results for row in group_rows]
        if spec.distinct:
            seen: set = set()
            unique = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            rows = unique
        for index, descending in reversed(spec.order_indexes):
            rows.sort(key=lambda r: sort_key(r[index]), reverse=descending)
        if spec.limit is not None:
            rows = rows[: spec.limit]
        return rows

    key_count = len(spec.key_fingerprints)
    merged: dict[tuple, list] = {}
    for group_rows in results:
        for row in group_rows:
            key = tuple(row[:key_count])
            partials = merged.get(key)
            if partials is None:
                merged[key] = list(row)
            else:
                for n, op in enumerate(spec.partial_ops):
                    index = key_count + n
                    partials[index] = _combine(op, partials[index], row[index])

    out: list[tuple[tuple, dict]] = []
    for key, partials in merged.items():
        env: dict[str, object] = {
            fp: key[n] for n, fp in enumerate(spec.key_fingerprints)
        }
        for agg in spec.aggs:
            env[agg.fingerprint] = _finalize(agg, partials)
        if spec.having is not None:
            if _eval_final(spec.having, env) is not True:
                continue
        row = tuple(_eval_final(expr, env) for expr in spec.item_exprs)
        out.append((row, env))

    rows = [row for row, _env in out]
    if spec.order_exprs:
        decorated = out
        for expr, descending in reversed(spec.order_exprs):
            decorated = sorted(
                decorated,
                key=lambda pair: sort_key(
                    _eval_final(expr, pair[1], pair[0], spec.alias_positions)
                ),
                reverse=descending,
            )
        rows = [row for row, _env in decorated]
    if spec.limit is not None:
        rows = rows[: spec.limit]
    return rows
