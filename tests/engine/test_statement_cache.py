"""Engine plan cache and prepared statements.

Covers the cache's three contracts: correctness (prepared execution ≡
ad-hoc execution), reuse (repeated texts skip parse+plan, observable
through ``db.plan_cache.*`` metrics and ``QueryTrace.cache_hit``), and
invalidation (any CREATE/DROP TABLE/INDEX bumps ``Catalog.version`` and
forces a re-plan; so does switching the optimizer profile).
"""

import pytest

from repro.engine.database import Database
from repro.engine.errors import PlanError, UnknownObjectError
from repro.engine.optimizer import OptimizerProfile
from repro.engine.sql import ast
from repro.engine.sql.parser import parse_statement
from repro.engine.statement_cache import LruCache, count_params


def make_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.execute("CREATE TABLE t (id INTEGER NOT NULL, grp INTEGER, name VARCHAR(20))")
    db.execute("CREATE UNIQUE INDEX t_id ON t (id)")
    for i in range(20):
        db.execute("INSERT INTO t VALUES (?, ?, ?)", [i, i % 4, f"n{i}"])
    return db


def counter(db: Database, name: str) -> float:
    return db.metrics.value(f"db.plan_cache.{name}")


class TestLruCache:
    def test_evicts_least_recently_used(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_capacity_zero_disables(self):
        cache = LruCache(0)
        cache.put("a", 1)
        assert not cache.enabled
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear_reports_count(self):
        cache = LruCache(8)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0


class TestCountParams:
    def test_counts_highest_slot(self):
        stmt = parse_statement("SELECT name FROM t WHERE id = ? AND grp > ?")
        assert count_params(stmt) == 2

    def test_zero_without_params(self):
        assert count_params(parse_statement("SELECT * FROM t")) == 0

    def test_sees_params_in_dml(self):
        stmt = parse_statement("UPDATE t SET name = ? WHERE id = ?")
        assert count_params(stmt) == 2


class TestPreparedStatements:
    def test_prepared_select_matches_adhoc(self):
        db = make_db()
        prepared = db.prepare("SELECT name FROM t WHERE id = ?")
        for i in (3, 7, 11):
            assert prepared.execute([i]).rows == db.execute(
                "SELECT name FROM t WHERE id = ?", [i]
            ).rows

    def test_prepared_insert_and_update_and_delete(self):
        db = make_db()
        insert = db.prepare("INSERT INTO t VALUES (?, ?, ?)")
        insert.execute([100, 1, "x"])
        insert.execute([101, 1, "y"])
        update = db.prepare("UPDATE t SET name = ? WHERE id = ?")
        assert update.execute(["z", 100]).rowcount == 1
        delete = db.prepare("DELETE FROM t WHERE id = ?")
        assert delete.execute([101]).rowcount == 1
        assert db.execute("SELECT name FROM t WHERE id = ?", [100]).rows == [("z",)]
        assert db.execute("SELECT name FROM t WHERE id = ?", [101]).rows == []

    def test_prepare_rejects_ddl(self):
        db = make_db()
        with pytest.raises(PlanError):
            db.prepare("CREATE TABLE u (id INTEGER)")

    def test_prepare_shares_cache_entry(self):
        db = make_db()
        first = db.prepare("SELECT COUNT(*) FROM t")
        second = db.prepare("SELECT COUNT(*) FROM t")
        assert first is second

    def test_execute_ast_skips_text_round_trip(self):
        db = make_db()
        stmt = parse_statement("SELECT name FROM t WHERE id = ?")
        assert db.execute_ast(stmt, [5]).rows == [("n5",)]
        delete = ast.Delete(
            "t", ast.BinaryOp("=", ast.ColumnRef(None, "id"), ast.Literal(5))
        )
        assert db.execute_ast(delete).rowcount == 1


class TestPlanCacheReuse:
    def test_repeated_execute_hits(self):
        db = make_db()
        sql = "SELECT name FROM t WHERE id = ?"
        db.execute(sql, [1])
        misses = counter(db, "misses")
        db.execute(sql, [2])
        db.execute(sql, [3])
        assert counter(db, "hits") >= 2
        assert counter(db, "misses") == misses  # no new parse

    def test_trace_flags_cache_hit(self):
        db = make_db()
        sql = "SELECT name FROM t WHERE grp = ?"
        assert db.trace(sql, [1]).cache_hit is False
        assert db.trace(sql, [2]).cache_hit is True

    def test_eviction_counted(self):
        db = make_db(plan_cache_size=2)
        for i in range(4):
            db.execute(f"SELECT COUNT(*) FROM t WHERE grp = {i}")
        assert counter(db, "evictions") >= 1

    def test_disabled_cache_still_correct(self):
        db = make_db(plan_cache_size=0)
        sql = "SELECT name FROM t WHERE id = ?"
        assert db.execute(sql, [4]).rows == [("n4",)]
        assert db.execute(sql, [4]).rows == [("n4",)]
        assert counter(db, "hits") == 0
        assert counter(db, "misses") == 0


class TestInvalidation:
    def test_ddl_bumps_catalog_version(self):
        db = make_db()
        version = db.catalog.version
        db.execute("CREATE TABLE u (id INTEGER)")
        db.execute("CREATE INDEX u_id ON u (id)")
        db.execute("DROP INDEX u_id ON u")
        db.execute("DROP TABLE u")
        assert db.catalog.version == version + 4

    def test_create_index_replans_cached_select(self):
        db = make_db()
        sql = "SELECT name FROM t WHERE grp = ?"
        db.execute(sql, [1])
        db.execute(sql, [1])  # plan now cached and reused
        db.execute("CREATE INDEX t_grp ON t (grp)")
        invalidations = counter(db, "invalidations")
        result = db.execute(sql, [1])
        assert counter(db, "invalidations") == invalidations + 1
        assert sorted(result.rows) == sorted(
            [(f"n{i}",) for i in range(20) if i % 4 == 1]
        )
        # The re-planned statement actually uses the new index.
        assert "t_grp" in db.explain(sql)

    def test_dropped_table_not_served_stale(self):
        db = make_db()
        db.execute("CREATE TABLE u (id INTEGER)")
        db.execute("INSERT INTO u VALUES (1)")
        sql = "SELECT * FROM u"
        assert db.execute(sql).rows == [(1,)]
        db.execute("DROP TABLE u")
        with pytest.raises(UnknownObjectError):
            db.execute(sql)

    def test_profile_switch_replans(self):
        db = make_db()
        sql = "SELECT COUNT(*) FROM t"
        db.execute(sql)
        db.execute(sql)
        db.profile = OptimizerProfile.SIMPLE
        invalidations = counter(db, "invalidations")
        assert db.execute(sql).scalar() == 20
        assert counter(db, "invalidations") == invalidations + 1

    def test_prepared_insert_revalidates_after_ddl(self):
        db = make_db()
        insert = db.prepare("INSERT INTO t VALUES (?, ?, ?)")
        insert.execute([200, 0, "a"])
        db.execute("CREATE INDEX t_name ON t (name)")
        insert.execute([201, 0, "b"])  # re-compiled against new version
        rows = db.execute("SELECT id FROM t WHERE name = ?", ["b"]).rows
        assert rows == [(201,)]
