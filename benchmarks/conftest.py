"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one of the paper's tables or
figures: it runs the corresponding experiment harness on the simulated
substrate, prints the reproduced rows/series, writes them under
``benchmarks/results/``, and asserts the *shape* claims the paper makes
(who wins, roughly by what factor, where crossovers fall).  The
``benchmark`` fixture additionally wall-clock-times the core operation
of each experiment so ``pytest benchmarks/ --benchmark-only`` yields
real timings of this implementation.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
import shutil
import tempfile

import pytest

from repro.experiments.chunkqueries import (
    ChunkQueryConfig,
    ChunkQueryExperiment,
    PAPER_WIDTHS,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Benchmarks run the vectorized engine (the default); set
#: ``REPRO_BENCH_TUPLE=1`` to re-run the suite on the tuple-at-a-time
#: reference interpreter for comparison.
BENCH_EXECUTION = (
    "tuple" if os.environ.get("REPRO_BENCH_TUPLE") == "1" else "vectorized"
)

#: Scaled-down Experiment 2 dataset (paper: 10,000 x 100; DESIGN.md §2).
BENCH_CONFIG = ChunkQueryConfig(
    parents=60, children_per_parent=6, execution=BENCH_EXECUTION
)

#: The paper flushed "the database buffer pool and the disk cache
#: between every run", so Experiment 2 runs on the disk-backed pager by
#: default — cold-cache physical reads are real file reads.  Set
#: ``REPRO_BENCH_MEMORY=1`` to fall back to the all-in-memory engine.
BENCH_IN_MEMORY = os.environ.get("REPRO_BENCH_MEMORY") == "1"

#: Q2 scale factors measured (paper sweeps 0..90 in steps of 6).
BENCH_SCALES = (3, 15, 30, 45, 60, 75, 90)


@pytest.fixture(scope="session")
def report():
    """Print a reproduced table/series and persist it."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _report


class _ExperimentPool:
    """Lazily built, session-cached Experiment 2 layouts."""

    def __init__(self) -> None:
        self._experiments: dict[str, ChunkQueryExperiment] = {}
        self._measurements: dict[tuple, object] = {}
        self._base_dir: str | None = None

    def _config(self, label: str) -> ChunkQueryConfig:
        if BENCH_IN_MEMORY:
            return BENCH_CONFIG
        if self._base_dir is None:
            self._base_dir = tempfile.mkdtemp(prefix="repro-bench-")
        return dataclasses.replace(
            BENCH_CONFIG, db_path=os.path.join(self._base_dir, label)
        )

    def cleanup(self) -> None:
        if self._base_dir is not None:
            shutil.rmtree(self._base_dir, ignore_errors=True)

    def experiment(self, label: str) -> ChunkQueryExperiment:
        if label not in self._experiments:
            config = self._config(label)
            if label == "conventional":
                exp = ChunkQueryExperiment("private", config)
            elif label.endswith("-vp"):
                width = int(label[len("chunk") : -len("-vp")])
                exp = ChunkQueryExperiment(
                    "chunk", config, width=width, folded=False
                )
            else:
                width = int(label[len("chunk") :])
                exp = ChunkQueryExperiment("chunk", config, width=width)
            exp.load()
            self._experiments[label] = exp
        return self._experiments[label]

    def measure(self, label: str, scale: int, *, cold: bool = False):
        key = (label, scale, cold)
        if key not in self._measurements:
            self._measurements[key] = self.experiment(label).measure(
                scale, cold=cold
            )
        return self._measurements[key]


@pytest.fixture(scope="session")
def pool():
    instance = _ExperimentPool()
    yield instance
    instance.cleanup()


def chunk_labels() -> list[str]:
    return [f"chunk{w}" for w in PAPER_WIDTHS]
