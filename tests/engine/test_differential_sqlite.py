"""Differential testing: the engine vs. SQLite on the same statements.

SQLite serves as the reference implementation for the SQL subset's
semantics.  Hand-picked cases cover the constructs the transformation
layer relies on; a hypothesis-driven case generates random conjunctive
point/range queries over a shared dataset; and the shared corpus
generator (:func:`repro.quality.corpus.generate_query` — the same
queries the optimizer-quality harness replays) composes whole SELECTs —
projections, predicates incl. IN/BETWEEN, two- and three-way joins,
GROUP BY/HAVING, ORDER BY expressions — that must match SQLite row for
row.
"""

import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro.quality.corpus import (
    ENGINE_DDL,
    ENGINE_INDEXES,
    build_engine_database,
    corpus_rows,
    generate_query,
)


def normalize(rows):
    """SQLite returns lists of tuples too; normalize value types:
    booleans come back as 0/1 from SQLite."""
    out = []
    for row in rows:
        out.append(
            tuple(int(v) if isinstance(v, bool) else v for v in row)
        )
    return sorted(out, key=repr)


@pytest.fixture(scope="module")
def pair():
    """Identically-populated engine and SQLite databases, built from the
    shared corpus so harness findings replay here verbatim."""
    engine = build_engine_database()
    lite = sqlite3.connect(":memory:")
    for sql in ENGINE_DDL:
        lite.execute(
            sql.replace("VARCHAR(30)", "TEXT").replace("VARCHAR(10)", "TEXT")
        )
    for sql in ENGINE_INDEXES:
        lite.execute(sql)
    rows_p, rows_c = corpus_rows()
    for row in rows_p:
        lite.execute("INSERT INTO p VALUES (?, ?, ?, ?)", row)
    for row in rows_c:
        lite.execute("INSERT INTO c VALUES (?, ?, ?, ?)", row)
    return engine, lite


def compare(pair, sql, params=()):
    engine, lite = pair
    ours = engine.execute(sql, list(params)).rows
    theirs = lite.execute(sql, tuple(params)).fetchall()
    assert normalize(ours) == normalize(theirs), sql


CASES = [
    "SELECT id, name FROM p WHERE grp = 3",
    "SELECT p.id, c.val FROM p, c WHERE p.id = c.parent AND p.id = 17",
    "SELECT grp, COUNT(*), SUM(amount) FROM p GROUP BY grp",
    "SELECT grp, COUNT(*) AS n FROM p GROUP BY grp HAVING COUNT(*) > 8",
    "SELECT DISTINCT tag FROM c",
    "SELECT name FROM p WHERE amount BETWEEN 20 AND 40 ORDER BY name, id",
    "SELECT id FROM p WHERE name LIKE 'name1%' ORDER BY id",
    "SELECT id FROM p WHERE grp IN (1, 2) AND amount > 50 ORDER BY id",
    "SELECT p.grp, MAX(c.val) FROM p, c WHERE p.id = c.parent GROUP BY p.grp",
    "SELECT id FROM p WHERE id IN (SELECT parent FROM c WHERE val = 16)",
    "SELECT COUNT(*) FROM p WHERE grp = 99",
    "SELECT amount + grp FROM p WHERE id = 7",
    "SELECT id FROM p ORDER BY amount DESC, id LIMIT 5",
    "SELECT MIN(amount), MAX(amount), COUNT(DISTINCT grp) FROM p",
    "SELECT c.tag, AVG(c.val) FROM c GROUP BY c.tag ORDER BY c.tag",
    "SELECT p.name, c.tag FROM p, c WHERE p.id = c.parent AND c.val = 0 "
    "AND p.grp = 1 ORDER BY p.name, c.tag LIMIT 10",
    "SELECT grp, COUNT(*) FROM p GROUP BY grp ORDER BY COUNT(*) DESC, grp",
    "SELECT grp FROM p GROUP BY grp ORDER BY SUM(amount) DESC, grp",
    "SELECT id FROM p WHERE id > 40 AND id <= 45 ORDER BY id",
    "SELECT id FROM p WHERE amount >= 90 ORDER BY id",
]


class TestHandPickedCases:
    @pytest.mark.parametrize("sql", CASES)
    def test_same_answers(self, pair, sql):
        compare(pair, sql)

    @pytest.mark.parametrize(
        "sql,params",
        [
            ("SELECT name FROM p WHERE id = ?", [13]),
            ("SELECT id FROM p WHERE grp = ? AND amount < ?", [2, 60]),
            (
                "SELECT p.id, c.id FROM p, c WHERE p.id = c.parent "
                "AND c.val = ? ORDER BY p.id, c.id",
                [4],
            ),
        ],
    )
    def test_parameterized(self, pair, sql, params):
        compare(pair, sql, params)


class TestDmlAgreement:
    def test_update_then_select(self, pair):
        engine, lite = pair
        engine.execute("UPDATE p SET amount = amount + 5 WHERE grp = 4")
        lite.execute("UPDATE p SET amount = amount + 5 WHERE grp = 4")
        compare(pair, "SELECT id, amount FROM p WHERE grp = 4")

    def test_delete_then_count(self, pair):
        engine, lite = pair
        engine.execute("DELETE FROM c WHERE val = 16")
        lite.execute("DELETE FROM c WHERE val = 16")
        compare(pair, "SELECT COUNT(*) FROM c")


# -- shared corpus generator ---------------------------------------------------


class TestGeneratedQueries:
    """Row-for-row agreement on corpus-generator output.  The seeds are
    fixed, so the suite always runs the same 45 queries — the first 15
    of which are exactly the optimizer-quality harness's corpus."""

    @pytest.mark.parametrize("seed", range(45))
    def test_generated_query_matches_sqlite(self, pair, seed):
        compare(pair, generate_query(seed))

    def test_generator_is_deterministic(self):
        assert [generate_query(s) for s in range(10)] == [
            generate_query(s) for s in range(10)
        ]

    def test_generator_covers_shapes(self):
        queries = [generate_query(s) for s in range(45)]
        assert any("GROUP BY" in q for q in queries)
        assert any("p, c" in q and "AS d" not in q for q in queries)
        assert any("p, c, c AS d" in q for q in queries)
        assert any(" IN (" in q for q in queries)
        assert any(" BETWEEN " in q for q in queries)
        assert any(" HAVING " in q for q in queries)
        assert any(
            "ORDER BY" in q and " + " in q.split("ORDER BY")[-1]
            for q in queries
        )
        assert any("WHERE" in q and "GROUP BY" not in q for q in queries)


def run_both_engines(engine, sql, params=()):
    """Trace one statement under the tuple and vectorized executors;
    returns ``(tuple_trace, vectorized_trace)`` with the engine restored
    to its default mode."""
    traces = {}
    try:
        for mode in ("tuple", "vectorized"):
            engine.execution = mode
            traces[mode] = engine.trace(sql, list(params), analyze=False)
    finally:
        engine.execution = "vectorized"
    return traces["tuple"], traces["vectorized"]


class TestCrossEngine:
    """The vectorized executor against the tuple-at-a-time reference:
    identical rows (in identical order — both engines are
    order-preserving), identical ExecStats row counters, identical
    buffer-pool logical reads.  Under LIMIT only the rows must agree:
    the batched engine may scan up to one batch past the cutoff."""

    @pytest.mark.parametrize("seed", range(45))
    def test_generated_query_same_rows_and_stats(self, pair, seed):
        engine, _ = pair
        sql = generate_query(seed)
        t, v = run_both_engines(engine, sql)
        assert t.rows == v.rows, sql
        assert t.exec.row_counters() == v.exec.row_counters(), sql
        assert t.pool.logical_total == v.pool.logical_total, sql

    @pytest.mark.parametrize("sql", CASES)
    def test_hand_picked_same_rows(self, pair, sql):
        engine, _ = pair
        t, v = run_both_engines(engine, sql)
        assert t.rows == v.rows, sql
        if "LIMIT" not in sql:
            assert t.exec.row_counters() == v.exec.row_counters(), sql
            assert t.pool.logical_total == v.pool.logical_total, sql

    def test_only_vectorized_counts_batches(self, pair):
        engine, _ = pair
        t, v = run_both_engines(engine, "SELECT grp, COUNT(*) FROM p GROUP BY grp")
        assert t.exec.batches == 0
        assert v.exec.batches > 0


class TestRandomizedQueries:
    @settings(max_examples=60, deadline=None)
    @given(
        column=st.sampled_from(["id", "grp", "amount"]),
        op=st.sampled_from(["=", "<", ">", "<=", ">=", "<>"]),
        value=st.integers(-5, 110),
        order=st.sampled_from(["id", "amount", "name"]),
        limit=st.integers(1, 30),
    )
    def test_single_table_predicates(self, pair, column, op, value, order, limit):
        sql = (
            f"SELECT id, {column} FROM p WHERE {column} {op} ? "
            f"ORDER BY {order}, id LIMIT {limit}"
        )
        engine, lite = pair
        ours = engine.execute(sql, [value]).rows
        theirs = lite.execute(sql, (value,)).fetchall()
        # LIMIT with ties is nondeterministic across engines, so compare
        # without LIMIT when the cutoff could differ.
        if len(ours) < limit and len(theirs) < limit:
            assert normalize(ours) == normalize(theirs)
        else:
            base = sql.rsplit(" LIMIT", 1)[0]
            assert normalize(engine.execute(base, [value]).rows) == normalize(
                lite.execute(base, (value,)).fetchall()
            )

    @settings(max_examples=40, deadline=None)
    @given(
        grp=st.integers(0, 8),
        threshold=st.integers(0, 20),
    )
    def test_join_aggregates(self, pair, grp, threshold):
        sql = (
            "SELECT p.id, COUNT(*), SUM(c.val) FROM p, c "
            "WHERE p.id = c.parent AND p.grp = ? AND c.val >= ? "
            "GROUP BY p.id"
        )
        compare(pair, sql, [grp, threshold])
