"""Tests for pages, the LRU buffer pool, and its counters."""

import pytest

from repro.engine.errors import EngineError
from repro.engine.pager import PAGE_HEADER, BufferPool, PageKind


def make_pool(capacity=4):
    return BufferPool(capacity_pages=capacity, page_size=8192)


class TestAllocation:
    def test_allocate_assigns_increasing_ids(self):
        pool = make_pool()
        a = pool.allocate(1, PageKind.DATA)
        b = pool.allocate(1, PageKind.DATA)
        assert b.page_id > a.page_id

    def test_capacity_excludes_header(self):
        pool = make_pool()
        page = pool.allocate(1, PageKind.DATA)
        assert page.capacity == 8192 - PAGE_HEADER

    def test_allocation_counts_as_write(self):
        pool = make_pool()
        pool.allocate(1, PageKind.DATA)
        assert pool.stats.writes == 1

    def test_pool_requires_a_frame(self):
        with pytest.raises(EngineError):
            BufferPool(capacity_pages=0)


class TestReadCounters:
    def test_resident_read_is_logical_only(self):
        pool = make_pool()
        page = pool.allocate(1, PageKind.DATA)
        pool.read(page.page_id)
        assert pool.stats.logical_data == 1
        assert pool.stats.physical_data == 0

    def test_miss_counts_physical(self):
        pool = make_pool(capacity=1)
        a = pool.allocate(1, PageKind.DATA)
        pool.allocate(1, PageKind.DATA)  # evicts a
        pool.read(a.page_id)
        assert pool.stats.physical_data == 1

    def test_index_and_data_counted_separately(self):
        pool = make_pool()
        d = pool.allocate(1, PageKind.DATA)
        i = pool.allocate(2, PageKind.INDEX)
        pool.read(d.page_id)
        pool.read(i.page_id)
        assert pool.stats.logical_data == 1
        assert pool.stats.logical_index == 1

    def test_read_unknown_page_raises(self):
        pool = make_pool()
        with pytest.raises(EngineError):
            pool.read(999)


class TestEviction:
    def test_lru_evicts_least_recent(self):
        pool = make_pool(capacity=2)
        a = pool.allocate(1, PageKind.DATA)
        b = pool.allocate(1, PageKind.DATA)
        pool.read(a.page_id)  # a is now most recent
        pool.allocate(1, PageKind.DATA)  # must evict b
        pool.read(a.page_id)
        assert pool.stats.physical_data == 0
        pool.read(b.page_id)
        assert pool.stats.physical_data == 1

    def test_pinned_pages_survive_eviction(self):
        pool = make_pool(capacity=2)
        a = pool.allocate(1, PageKind.DATA)
        pool.read(a.page_id, pin=True)
        pool.allocate(1, PageKind.DATA)
        pool.allocate(1, PageKind.DATA)
        pool.read(a.page_id)
        assert pool.stats.physical_data == 0
        pool.unpin(a.page_id)

    def test_flush_empties_pool(self):
        pool = make_pool()
        a = pool.allocate(1, PageKind.DATA)
        pool.flush()
        assert pool.resident_pages == 0
        pool.read(a.page_id)
        assert pool.stats.physical_data == 1

    def test_resize_shrinks_pool(self):
        pool = make_pool(capacity=4)
        pages = [pool.allocate(1, PageKind.DATA) for _ in range(4)]
        pool.resize(1)
        assert pool.resident_pages == 1
        # Only the most recently used page stays.
        pool.read(pages[-1].page_id)
        assert pool.stats.physical_data == 0


class TestHitRatio:
    def test_perfect_hit_ratio(self):
        pool = make_pool()
        page = pool.allocate(1, PageKind.DATA)
        for _ in range(10):
            pool.read(page.page_id)
        assert pool.stats.hit_ratio() == 1.0

    def test_hit_ratio_by_kind(self):
        pool = make_pool(capacity=1)
        d = pool.allocate(1, PageKind.DATA)
        i = pool.allocate(2, PageKind.INDEX)  # evicts d
        pool.read(d.page_id)  # miss
        pool.read(d.page_id)  # hit
        assert pool.stats.hit_ratio(PageKind.DATA) == 0.5
        assert pool.stats.hit_ratio(PageKind.INDEX) == 1.0

    def test_no_reads_is_ratio_one(self):
        assert make_pool().stats.hit_ratio() == 1.0


class TestSnapshots:
    def test_delta_isolates_an_interval(self):
        pool = make_pool()
        page = pool.allocate(1, PageKind.DATA)
        pool.read(page.page_id)
        before = pool.stats.snapshot()
        pool.read(page.page_id)
        pool.read(page.page_id)
        delta = pool.stats.delta(before)
        assert delta.logical_data == 2


class TestSegments:
    def test_free_segment_drops_pages(self):
        pool = make_pool()
        a = pool.allocate(1, PageKind.DATA)
        pool.allocate(2, PageKind.DATA)
        dropped = pool.free_segment(1)
        assert dropped == 1
        with pytest.raises(EngineError):
            pool.read(a.page_id)

    def test_resident_ratio(self):
        pool = make_pool(capacity=1)
        pool.allocate(1, PageKind.DATA)
        pool.allocate(1, PageKind.DATA)
        assert pool.resident_ratio({1}) == 0.5
