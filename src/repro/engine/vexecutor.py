"""Batch-at-a-time (vectorized) execution of physical plans.

Runs the *same* physical plan trees as the tuple-at-a-time
:class:`~repro.engine.executor.Executor`, but operators exchange
fixed-size batches (lists of row tuples, :data:`BATCH_ROWS` by default)
and every predicate / projection / key extraction is compiled **once
per plan node** into a batch-level closure by
:mod:`repro.engine.expr_batch`.  Per-row cost drops from one Python
dispatch per operator per row (generator resumption + ``all()`` /
``tuple()`` allocations) to one closure call per batch whose inner loop
is a C-level comprehension or ``itemgetter``.

Accounting is bit-identical to the tuple engine where it matters: all
:class:`~repro.engine.executor.ExecStats` row counters, every buffer
pool page touch, and every index traversal happen in the same order and
quantity for the same plan (the differential suite asserts this across
all seven schema-mapping layouts).  The one intentional divergence:
under ``LIMIT`` the batched engine may scan up to one batch beyond the
cutoff where the tuple engine stops mid-row.

EXPLAIN ANALYZE keeps working: the
:class:`~repro.engine.observability.AnalyzeCollector` wraps operators
with its batch-aware shim, so analyzed trees show the same per-operator
row counts as the tuple engine.
"""

from __future__ import annotations

from itertools import islice
from operator import itemgetter
from typing import Iterator, Sequence

from .catalog import Catalog
from .errors import PlanError
from .executor import ExecStats, _NATIVE_ORDER, index_entries
from .expr_batch import (
    _codegen,
    compile_filter,
    compile_tuples,
    compile_values,
    node_program,
    sort_rows,
)
from .plan import physical as phys
from .values import sort_key

#: Default rows per batch.  Large enough to amortize per-batch Python
#: overhead, small enough to keep working sets cache-resident.
BATCH_ROWS = 256

_row_of = itemgetter(1)  # (rid, row) -> row


def _finalize_agg(spec: phys.AggSpec, acc) -> object:
    """Fold one group's accumulated raw values into the aggregate result.

    Must agree exactly with :class:`~repro.engine.executor._AggState`
    (the tuple engine's per-row accumulator): NULLs are skipped,
    DISTINCT deduplicates by hash equality, SUM chains ``+`` for
    non-numeric operands, and MIN/MAX fall back to ``sort_key`` ordering
    the moment a group's column mixes types.  Homogeneous native columns
    — the overwhelmingly common case — fold with C-speed builtins.
    """
    func = spec.func
    if func == "COUNT_STAR":
        return acc
    if spec.distinct:
        values, seen = [], set()
        for v in acc:
            if v is None or v in seen:
                continue
            seen.add(v)
            values.append(v)
        if func == "COUNT":
            return len(values)
    else:
        if func == "COUNT":
            # COUNT(col) counts without materializing a NULL-stripped
            # copy of the accumulator.
            return len(acc) - acc.count(None)
        # NULL-free accumulators (the common case) fold in place, no
        # copy — SUM/AVG/MIN/MAX all share this.
        values = acc if None not in acc else [v for v in acc if v is not None]
    if not values:
        return None
    if func in ("SUM", "AVG"):
        if set(map(type, values)) <= {int, float}:
            total = sum(values)
        else:
            total = values[0]
            for v in values[1:]:
                total = total + v
        return total / len(values) if func == "AVG" else total
    kinds = set(map(type, values))
    if len(kinds) == 1 and next(iter(kinds)) in _NATIVE_ORDER:
        return min(values) if func == "MIN" else max(values)
    return (min if func == "MIN" else max)(values, key=sort_key)


def _batched(iterator: Iterator, batch_rows: int) -> Iterator[list]:
    """Slice an iterator into lists of at most ``batch_rows``."""
    while True:
        batch = list(islice(iterator, batch_rows))
        if not batch:
            return
        yield batch


def _rebatch(rows: list, batch_rows: int) -> Iterator[list]:
    """Yield an in-memory row list as batches (no copy when it fits)."""
    if len(rows) <= batch_rows:
        if rows:
            yield rows
        return
    for start in range(0, len(rows), batch_rows):
        yield rows[start : start + batch_rows]


def _index_row_builder(positions: Sequence[int], width: int):
    """Codegen: (key, rid) entries -> index-only row tuples.

    ``positions[i]`` is the row slot filled from key component ``i``;
    every other slot reads NULL (never populated by an index-only scan).
    """
    by_slot = {position: i for i, position in enumerate(positions)}
    parts = [
        f"k[{by_slot[slot]}]" if slot in by_slot else "None"
        for slot in range(width)
    ]
    body = ", ".join(parts) + ("," if len(parts) == 1 else "")
    return _codegen(f"lambda entries: [({body}) for k, _ in entries]", {})


class VectorizedExecutor:
    """Executes physical plans batch at a time.

    Drop-in peer of :class:`~repro.engine.executor.Executor`: same
    ``run(root, params, collector=)`` contract, same stats object
    (shareable so one :class:`~repro.engine.database.Database` keeps a
    single counter set regardless of the active engine).
    """

    def __init__(
        self,
        catalog: Catalog,
        stats: ExecStats | None = None,
        *,
        batch_rows: int = BATCH_ROWS,
        metrics=None,
    ) -> None:
        self._catalog = catalog
        self.stats = stats if stats is not None else ExecStats()
        self.batch_rows = max(1, batch_rows)
        self._collector = None
        #: Resolved once: per-batch metric updates skip registry lookups.
        self._batch_counter = (
            metrics.counter("db.exec.batches") if metrics is not None else None
        )
        self._batch_hist = (
            metrics.histogram("mt.exec.batch_rows")
            if metrics is not None
            else None
        )

    # -- public -----------------------------------------------------------

    def run(
        self,
        root: phys.PReturn,
        params: Sequence[object] = (),
        *,
        collector=None,
    ) -> list[tuple]:
        """Execute a plan and return all result rows."""
        self.stats.statements += 1
        cache: dict[int, list[tuple]] = {}
        previous, self._collector = self._collector, collector
        try:
            rows: list[tuple] = []
            for batch in self._batches(root, (), params, cache):
                rows.extend(batch)
        finally:
            self._collector = previous
        self.stats.rows_output += len(rows)
        return rows

    # -- batch plumbing ---------------------------------------------------

    def _batches(
        self,
        node: phys.PNode,
        outer_row: tuple,
        params: Sequence[object],
        cache: dict[int, list[tuple]],
    ) -> Iterator[list]:
        gen = self._dispatch(node, outer_row, params, cache)
        if self._collector is not None:
            gen = self._collector.wrap_batches(node, gen)
        return self._counted(gen)

    def _counted(self, gen: Iterator[list]) -> Iterator[list]:
        stats = self.stats
        counter = self._batch_counter
        hist = self._batch_hist
        for batch in gen:
            stats.batches += 1
            if counter is not None:
                counter.inc()
                hist.observe(len(batch))
            yield batch

    def _program(self, node: phys.PNode, key: str, builder):
        return node_program(node, key, builder)

    # -- node dispatch ----------------------------------------------------

    def _dispatch(
        self,
        node: phys.PNode,
        outer_row: tuple,
        params: Sequence[object],
        cache: dict[int, list[tuple]],
    ) -> Iterator[list]:
        if isinstance(node, phys.PTableScan):
            return self._scan_table(node, params)
        if isinstance(node, phys.PIndexScan):
            return self._scan_index_only(node, outer_row, params)
        if isinstance(node, phys.PFetch):
            return self._fetch(node, outer_row, params)
        if isinstance(node, phys.PMaterialize):
            return self._materialize(node, params, cache)
        if isinstance(node, phys.PNLJoin):
            return self._nljoin(node, outer_row, params, cache)
        if isinstance(node, phys.PHSJoin):
            return self._hsjoin(node, outer_row, params, cache)
        if isinstance(node, phys.PFilter):
            return self._filter(node, outer_row, params, cache)
        if isinstance(node, phys.PGroup):
            return self._group(node, params, cache)
        if isinstance(node, phys.PProject):
            return self._project(node, outer_row, params, cache)
        if isinstance(node, phys.PSort):
            return self._sort(node, outer_row, params, cache)
        if isinstance(node, phys.PDistinct):
            return self._distinct(node, outer_row, params, cache)
        if isinstance(node, phys.PLimit):
            return self._limit(node, outer_row, params, cache)
        if isinstance(node, phys.PReturn):
            return self._batches(node.child, outer_row, params, cache)
        raise PlanError(
            f"unknown physical node {type(node).__name__}"
        )  # pragma: no cover

    # -- leaves -----------------------------------------------------------

    def _scan_table(
        self, node: phys.PTableScan, params: Sequence[object]
    ) -> Iterator[list]:
        table = self._catalog.table(node.table_name)
        residual = self._program(
            node, "residual", lambda: compile_filter(node.residual)
        )
        stats = self.stats
        if (
            node.used_columns is not None
            and getattr(table.heap, "storage_kind", None) == "columnar"
        ):
            batches = table.heap.scan_batches(
                self.batch_rows, node.used_columns
            )
        else:
            batches = table.heap.scan_batches(self.batch_rows)
        for batch in batches:
            stats.rows_scanned += len(batch)
            if residual is not None:
                batch = residual(batch, params)
                if not batch:
                    continue
            yield batch

    def _scan_index_only(
        self, node: phys.PIndexScan, outer_row: tuple, params: Sequence[object]
    ) -> Iterator[list]:
        table = self._catalog.table(node.table_name)
        info = table.indexes[node.index_name.lower()]
        build = self._program(
            node,
            "index_rows",
            lambda: _index_row_builder(
                info.column_positions, len(table.columns)
            ),
        )
        residual = self._program(
            node, "residual", lambda: compile_filter(node.residual)
        )
        entries = index_entries(
            self._catalog, self.stats, node, outer_row, params
        )
        stats = self.stats
        for entry_batch in _batched(entries, self.batch_rows):
            rows = build(entry_batch)
            stats.rows_scanned += len(rows)
            if residual is not None:
                rows = residual(rows, params)
                if not rows:
                    continue
            yield rows

    def _fetch(
        self, node: phys.PFetch, outer_row: tuple, params: Sequence[object]
    ) -> Iterator[list]:
        table = self._catalog.table(node.table_name)
        child = node.child
        residual = self._program(
            child, "residual", lambda: compile_filter(child.residual)
        )
        entries = index_entries(
            self._catalog, self.stats, child, outer_row, params
        )
        entry_batches = _batched(entries, self.batch_rows)
        if self._collector is not None:
            # Attribute (key, rid) production to the IXSCAN child so the
            # analyzed tree shows its row count, not "never executed".
            entry_batches = self._collector.wrap_batches(child, entry_batches)
        fetch = table.heap.fetch
        stats = self.stats
        for entry_batch in entry_batches:
            rows = [fetch(rid) for _key, rid in entry_batch]
            stats.rows_fetched += len(rows)
            if residual is not None:
                rows = residual(rows, params)
                if not rows:
                    continue
            yield rows

    def _materialize(
        self,
        node: phys.PMaterialize,
        params: Sequence[object],
        cache: dict[int, list[tuple]],
    ) -> Iterator[list]:
        key = id(node)
        if key not in cache:
            residual = self._program(
                node, "residual", lambda: compile_filter(node.residual)
            )
            rows: list[tuple] = []
            for batch in self._batches(node.child, (), params, cache):
                if residual is not None:
                    batch = residual(batch, params)
                rows.extend(batch)
            cache[key] = rows
            self.stats.materialized_rows += len(rows)
        yield from _rebatch(cache[key], self.batch_rows)

    # -- joins ------------------------------------------------------------

    def _nljoin(
        self,
        node: phys.PNLJoin,
        outer_row: tuple,
        params: Sequence[object],
        cache: dict[int, list[tuple]],
    ) -> Iterator[list]:
        batch_rows = self.batch_rows
        stats = self.stats
        # Index nested loops probe the inner side once per outer row and
        # typically hit a handful of rows; for a bare access node the
        # batch plumbing (generator layers + per-batch accounting) costs
        # more than the rows, so probe it with a fused row-level closure.
        # Page touches, index traversals, and row counters are identical
        # by construction.  EXPLAIN ANALYZE keeps the generic path so
        # per-operator rows stay attributed.
        probe = None
        if self._collector is None:
            probe = self._inner_probe(node.inner, params)
        out: list[tuple] = []
        for left_batch in self._batches(node.outer, outer_row, params, cache):
            for left_row in left_batch:
                # The inner access node re-runs per outer row, keyed by
                # it (IXSCAN key_exprs close over the outer schema) —
                # same access pattern as the tuple engine.
                if probe is not None:
                    inner_rows = probe(left_row)
                    if inner_rows:
                        if len(inner_rows) == 1:
                            # Aligning joins hit exactly one inner row
                            # per probe; skip the comprehension.
                            stats.rows_joined += 1
                            out.append(left_row + inner_rows[0])
                        else:
                            stats.rows_joined += len(inner_rows)
                            out.extend(
                                [left_row + right for right in inner_rows]
                            )
                else:
                    for inner_batch in self._batches(
                        node.inner, left_row, params, cache
                    ):
                        stats.rows_joined += len(inner_batch)
                        out.extend(
                            [left_row + right for right in inner_batch]
                        )
                if len(out) >= batch_rows:
                    yield out
                    out = []
        if out:
            yield out

    def _inner_probe(self, inner: phys.PNode, params: Sequence[object]):
        """Row-level probe closure for an access-node join inner, or
        ``None`` when the inner side needs the generic batch path."""
        catalog = self._catalog
        stats = self.stats
        if isinstance(inner, phys.PFetch):
            child = inner.child
            residual = self._program(
                child, "residual", lambda: compile_filter(child.residual)
            )
            table = catalog.table(inner.table_name)
            fetch = table.heap.fetch
            info = table.indexes.get(child.index_name.lower())
            key_exprs = child.key_exprs
            if (
                info is not None
                and info.unique
                and child.range_low is None
                and child.range_high is None
                and len(key_exprs) == len(info.column_names)
            ):
                # Full-key probe on a unique index — the aligning
                # reconstruction join's hot case.  Fuse out the
                # index_entries generator: same descent, same counters,
                # no per-row generator frames, and ``search_one``
                # instead of ``search`` so the hit path allocates
                # nothing but the fetched row.  (NULL keys keep the
                # generic prefix semantics via scan_prefix, exactly as
                # index_entries would.)
                search_one = info.btree.search_one
                scan_prefix = info.btree.scan_prefix

                # Probe keys in reconstruction joins are mostly
                # constant (Tenant/Table/Chunk literals) with a single
                # row-dependent column; pre-fill the constants once per
                # closure instead of re-evaluating every expression per
                # probe.  Compiled readers advertise their shape via
                # the .const/.param/.slot metadata; anything fancier
                # falls back to the generic evaluation.
                _sent = object()
                template: list = []
                slot_positions: list[tuple[int, int]] = []
                generic = False
                for i, e in enumerate(key_exprs):
                    const = getattr(e, "const", _sent)
                    if const is not _sent:
                        template.append(const)
                        continue
                    if getattr(e, "param", None) is not None:
                        template.append(e(None, params))
                        continue
                    slot = getattr(e, "slot", None)
                    if slot is not None:
                        template.append(None)
                        slot_positions.append((i, slot))
                        continue
                    generic = True
                    break
                if generic:
                    def make_key(left_row: tuple) -> tuple:
                        return tuple(
                            [e(left_row, params) for e in key_exprs]
                        )
                elif len(slot_positions) == 1:
                    (pos0, slot0) = slot_positions[0]

                    def make_key(
                        left_row: tuple, base=template, i=pos0, s=slot0
                    ) -> tuple:
                        base[i] = left_row[s]
                        return tuple(base)
                else:
                    def make_key(
                        left_row: tuple, base=template, ps=slot_positions
                    ) -> tuple:
                        for i, s in ps:
                            base[i] = left_row[s]
                        return tuple(base)

                def probe_unique(left_row: tuple) -> list[tuple]:
                    key = make_key(left_row)
                    stats.index_lookups += 1
                    if None in key:
                        rows = [fetch(rid) for _k, rid in scan_prefix(key)]
                        stats.rows_fetched += len(rows)
                        if residual is not None and rows:
                            rows = residual(rows, params)
                        return rows
                    rid = search_one(key)
                    if rid is None:
                        return []
                    stats.rows_fetched += 1
                    rows = [fetch(rid)]
                    if residual is not None:
                        rows = residual(rows, params)
                    return rows

                return probe_unique

            def probe(left_row: tuple) -> list[tuple]:
                rows = [
                    fetch(rid)
                    for _key, rid in index_entries(
                        catalog, stats, child, left_row, params
                    )
                ]
                stats.rows_fetched += len(rows)
                if residual is not None and rows:
                    rows = residual(rows, params)
                return rows

            return probe
        if isinstance(inner, phys.PIndexScan):
            table = catalog.table(inner.table_name)
            info = table.indexes[inner.index_name.lower()]
            build = self._program(
                inner,
                "index_rows",
                lambda: _index_row_builder(
                    info.column_positions, len(table.columns)
                ),
            )
            residual = self._program(
                inner, "residual", lambda: compile_filter(inner.residual)
            )

            def probe(left_row: tuple) -> list[tuple]:
                rows = build(
                    list(
                        index_entries(catalog, stats, inner, left_row, params)
                    )
                )
                stats.rows_scanned += len(rows)
                if residual is not None and rows:
                    rows = residual(rows, params)
                return rows

            return probe
        return None

    def _hsjoin(
        self,
        node: phys.PHSJoin,
        outer_row: tuple,
        params: Sequence[object],
        cache: dict[int, list[tuple]],
    ) -> Iterator[list]:
        left_keys = self._program(
            node, "left_keys", lambda: compile_tuples(node.left_keys)
        )
        right_keys = self._program(
            node, "right_keys", lambda: compile_tuples(node.right_keys)
        )
        table: dict[tuple, list[tuple]] = {}
        setdefault = table.setdefault
        for batch in self._batches(node.right, (), params, cache):
            for row, key in zip(batch, right_keys(batch, params)):
                if None in key:
                    continue  # NULL join keys never match
                setdefault(key, []).append(row)
        stats = self.stats
        get = table.get
        for batch in self._batches(node.left, outer_row, params, cache):
            out: list[tuple] = []
            extend = out.extend
            for row, key in zip(batch, left_keys(batch, params)):
                if None in key:
                    continue
                matches = get(key)
                if matches:
                    stats.rows_joined += len(matches)
                    extend(row + match for match in matches)
            if out:
                yield out

    # -- row transforms ---------------------------------------------------

    def _filter(
        self,
        node: phys.PFilter,
        outer_row: tuple,
        params: Sequence[object],
        cache: dict[int, list[tuple]],
    ) -> Iterator[list]:
        predicate = self._program(
            node, "predicates", lambda: compile_filter(node.predicates)
        )
        for batch in self._batches(node.child, outer_row, params, cache):
            if predicate is not None:
                batch = predicate(batch, params)
                if not batch:
                    continue
            yield batch

    def _project(
        self,
        node: phys.PProject,
        outer_row: tuple,
        params: Sequence[object],
        cache: dict[int, list[tuple]],
    ) -> Iterator[list]:
        project = self._program(
            node, "project", lambda: compile_tuples(node.exprs)
        )
        for batch in self._batches(node.child, outer_row, params, cache):
            yield project(batch, params)

    def _sort(
        self,
        node: phys.PSort,
        outer_row: tuple,
        params: Sequence[object],
        cache: dict[int, list[tuple]],
    ) -> Iterator[list]:
        rows: list[tuple] = []
        for batch in self._batches(node.child, outer_row, params, cache):
            rows.extend(batch)
        self.stats.sorts += 1
        yield from _rebatch(sort_rows(node, rows, params), self.batch_rows)

    def _distinct(
        self,
        node: phys.PDistinct,
        outer_row: tuple,
        params: Sequence[object],
        cache: dict[int, list[tuple]],
    ) -> Iterator[list]:
        seen: set = set()
        add = seen.add
        for batch in self._batches(node.child, outer_row, params, cache):
            out = []
            append = out.append
            for row in batch:
                if row not in seen:
                    add(row)
                    append(row)
            if out:
                yield out

    def _limit(
        self,
        node: phys.PLimit,
        outer_row: tuple,
        params: Sequence[object],
        cache: dict[int, list[tuple]],
    ) -> Iterator[list]:
        remaining = node.limit
        if remaining <= 0:
            return
        for batch in self._batches(node.child, outer_row, params, cache):
            if len(batch) >= remaining:
                yield batch[:remaining]
                return
            remaining -= len(batch)
            yield batch

    # -- grouping ---------------------------------------------------------

    def _group(
        self,
        node: phys.PGroup,
        params: Sequence[object],
        cache: dict[int, list[tuple]],
    ) -> Iterator[list]:
        single_key = len(node.group_exprs) == 1
        if single_key:
            # One grouping column: key on the raw values (often the
            # stored column itself) instead of allocating a 1-tuple per
            # row — tuples reappear only on output.
            group_keys = self._program(
                node,
                "group_key_values",
                lambda: compile_values(node.group_exprs[0]),
            )
        else:
            group_keys = self._program(
                node, "group_keys", lambda: compile_tuples(node.group_exprs)
            )
        arg_programs = self._program(
            node,
            "agg_args",
            lambda: [
                compile_values(spec.arg) if spec.arg is not None else None
                for spec in node.aggs
            ],
        )
        specs = node.aggs
        stars = [spec.func == "COUNT_STAR" for spec in specs]
        # key -> one accumulator per aggregate: a running count for
        # COUNT(*), a raw value list otherwise.  Per-row Python work is
        # one dict probe plus one int append; value movement and the
        # aggregate folds happen batch-at-a-time at C speed.
        groups: dict[tuple, list] = {}
        get = groups.get
        for batch in self._batches(node.child, (), params, cache):
            keys = group_keys(batch, params)
            columns = [
                program(batch, params) if program is not None else None
                for program in arg_programs
            ]
            index_lists: dict[tuple, list[int]] = {}
            index_get = index_lists.get
            for i, key in enumerate(keys):
                rows = index_get(key)
                if rows is None:
                    index_lists[key] = [i]
                else:
                    rows.append(i)
            for key, idxs in index_lists.items():
                accs = groups.get(key)
                if accs is None:
                    accs = groups[key] = [
                        0 if star else [] for star in stars
                    ]
                for j, column in enumerate(columns):
                    if stars[j]:
                        accs[j] += len(idxs)
                    elif column is not None:
                        accs[j].extend([column[i] for i in idxs])
        if not groups and not node.group_exprs:
            # Global aggregate over the empty input still yields one row.
            groups[()] = [0 if star else [] for star in stars]
        having = node.having
        outputs = node.outputs
        out: list[tuple] = []
        batch_rows = self.batch_rows
        for key, accs in groups.items():
            key_tuple = (key,) if single_key else key
            pseudo = key_tuple + tuple(
                _finalize_agg(spec, acc) for spec, acc in zip(specs, accs)
            )
            if having is not None and having(pseudo, params) is not True:
                continue
            out.append(tuple(spec.post(pseudo, params) for spec in outputs))
            if len(out) >= batch_rows:
                yield out
                out = []
        if out:
            yield out
