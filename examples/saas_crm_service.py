"""A hosted CRM service: the paper's motivating workload end-to-end.

Builds a multi-tenant CRM (the Figure 5 schema) under Chunk Folding,
loads a fleet of tenants — some subscribed to vertical-industry
extensions — and runs a day of the Figure 6 action mix through the MTD
testbed machinery.  Prints the service-level metrics the paper's
Experiment 1 reports.

Run:  python examples/saas_crm_service.py
"""

from repro.core.api import MultiTenantDatabase
from repro.engine.database import Database
from repro.testbed.actions import ActionExecutor
from repro.testbed.controller import Controller
from repro.testbed.crm import crm_extensions, crm_tables
from repro.testbed.deck import CardDeck
from repro.testbed.generator import DataGenerator, TenantDataProfile
from repro.testbed.simtime import CostModel
from repro.testbed.worker import LockOverlap, Session, Worker

TENANTS = 24
SESSIONS = 6
ACTIONS = 300


def build_service() -> MultiTenantDatabase:
    mtd = MultiTenantDatabase(
        layout="chunk_folding",
        width=6,
        db=Database(memory_bytes=8 * 1024 * 1024),
    )
    for table in crm_tables():
        mtd.define_table(table)
    for extension in crm_extensions():
        mtd.define_extension(extension)
    return mtd


def onboard_tenants(mtd: MultiTenantDatabase) -> None:
    """A third of the fleet runs the health-care vertical, a third the
    automotive one, the rest the vanilla CRM."""
    generator = DataGenerator(seed=7)
    profile = TenantDataProfile(default_rows=6)
    for tenant in range(1, TENANTS + 1):
        if tenant % 3 == 1:
            extensions: tuple = ("healthcare",)
        elif tenant % 3 == 2:
            extensions = ("automotive",)
        else:
            extensions = ()
        mtd.create_tenant(tenant, extensions=extensions)
        generator.load_tenant(mtd, tenant, crm_tables(), profile)


def run_workload(mtd: MultiTenantDatabase):
    executor = ActionExecutor(
        mtd,
        TenantDataProfile(default_rows=6),
        DataGenerator(seed=7),
        tenant_instance={t: 0 for t in range(1, TENANTS + 1)},
        seed=99,
    )
    worker = Worker(mtd, executor, CostModel(), LockOverlap())
    deck = CardDeck(ACTIONS, list(range(1, TENANTS + 1)), seed=5)
    sessions = [Session(i) for i in range(SESSIONS)]
    return Controller(worker, deck, sessions).run()


def main() -> None:
    print(f"Onboarding {TENANTS} tenants onto one Chunk-Folding database...")
    mtd = build_service()
    onboard_tenants(mtd)
    report = mtd.report()
    print(
        f"  physical tables: {report.physical_tables} "
        f"(vs {TENANTS * 10} under the Private Table Layout)"
    )
    print(f"  meta-data bytes: {report.metadata_bytes}")
    print()

    print("A health-care tenant queries its extension columns:")
    result = mtd.execute(
        1,
        "SELECT name, hospital, beds FROM account "
        "WHERE beds IS NOT NULL ORDER BY beds DESC LIMIT 3",
    )
    for row in result.rows:
        print(f"  {row}")
    print()

    print(f"Running {ACTIONS} actions of the Figure 6 mix "
          f"over {SESSIONS} sessions...")
    results = run_workload(mtd)
    print(f"  actions executed: {len(results)}")
    print(f"  throughput: {results.throughput_per_minute(SESSIONS):,.0f} "
          "actions/min (simulated)")
    print("  95% response times by class (simulated ms):")
    for action, q95 in sorted(
        results.quantiles(0.95).items(), key=lambda kv: kv[0].value
    ):
        print(f"    {action.value:<16} {q95:8.2f}")
    print()

    pool = mtd.db.pool_stats
    from repro.engine.pager import PageKind

    print("Buffer pool after the run:")
    print(f"  data hit ratio:  {100 * pool.hit_ratio(PageKind.DATA):.2f}%")
    print(f"  index hit ratio: {100 * pool.hit_ratio(PageKind.INDEX):.2f}%")
    print()

    print("Business pivot: tenant 3 adopts the GDPR contact extension "
          "online (pure bookkeeping, no DDL):")
    mtd.grant_extension(3, "gdpr")
    mtd.insert(
        3,
        "contact",
        {"id": 999, "last_name": "Doe", "consent": True,
         "consent_date": "2008-06-09"},
    )
    result = mtd.execute(
        3, "SELECT last_name, consent FROM contact WHERE id = 999"
    )
    print(f"  -> {result.rows}")


if __name__ == "__main__":
    main()
