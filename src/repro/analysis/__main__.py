"""CLI: ``python -m repro.analysis [--strict] ...``.

By default, runs the semantic, tenant-isolation, and layout-invariant
passes over the Figure 5 CRM testbed at the Table 1 variability levels,
printing a per-configuration summary and every finding.

``--sanitize`` / ``--lockorder`` / ``--lint`` select the concurrency &
durability tooling instead: the dynamic sanitizer scenario (CON rules),
the static lock-order pass (LCK rules), and the protocol lint (LNT
rules).  Any combination runs only the selected passes; without those
flags the legacy layout analysis runs.

``--strict`` exits non-zero on any ERROR-severity finding — the CI
gates.  ``--mutate`` applies one seeded defect first (the matching gate
must then fail): the layout mutations feed the testbed passes,
``skip-wal-append`` feeds ``--sanitize``, ``lock-order-inversion``
feeds ``--lockorder``.
"""

from __future__ import annotations

import argparse
import sys

from .findings import AnalysisReport, RULES
from .lint import analyze_lint
from .lockorder import MUTATE_LOCK_INVERSION, analyze_lock_order
from .mutation import MUTATIONS
from .runner import (
    ALL_LAYOUTS,
    PAPER_VARIABILITIES,
    AnalysisConfig,
    run_analysis,
)
from .sanitizers import MUTATE_SKIP_APPEND, run_sanitized_scenario


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis over the multi-tenant CRM testbed, "
        "plus the concurrency/durability sanitizer and lint passes.",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on any ERROR-severity finding",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run the dynamic sanitizer scenario (CON rules)",
    )
    parser.add_argument(
        "--lockorder",
        action="store_true",
        help="run the static lock-order pass (LCK rules)",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="run the protocol lint pass (LNT rules)",
    )
    parser.add_argument(
        "--layouts",
        nargs="+",
        default=list(ALL_LAYOUTS),
        choices=list(ALL_LAYOUTS),
        help="layouts to analyze (default: all seven)",
    )
    parser.add_argument(
        "--variability",
        nargs="+",
        type=float,
        default=list(PAPER_VARIABILITIES),
        help="Table 1 schema-variability levels (default: %(default)s)",
    )
    parser.add_argument(
        "--tenants", type=int, default=4, help="tenants per configuration"
    )
    parser.add_argument(
        "--rows", type=int, default=2, help="rows per populated table"
    )
    parser.add_argument(
        "--width", type=int, default=6, help="chunk width for chunked layouts"
    )
    parser.add_argument(
        "--mutate",
        choices=sorted(MUTATIONS) + [MUTATE_SKIP_APPEND, MUTATE_LOCK_INVERSION],
        default=None,
        help="apply a seeded defect first (the gate must then fail)",
    )
    parser.add_argument(
        "--no-admin-ops",
        action="store_true",
        help="skip the grant/migrate/drop administrative replay",
    )
    parser.add_argument(
        "--recovery",
        action="store_true",
        help="crash and recover each testbed from disk before analyzing it",
    )
    parser.add_argument(
        "--rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.rules:
        for rule in RULES.values():
            print(f"{rule.rule_id}  {rule.severity!s:7s}  {rule.title}")
        return 0

    tooling = args.sanitize or args.lockorder or args.lint
    if tooling:
        report = AnalysisReport()
        if args.sanitize:
            sanitize_mutate = (
                args.mutate if args.mutate == MUTATE_SKIP_APPEND else None
            )
            sub, overhead = run_sanitized_scenario(mutate=sanitize_mutate)
            print(
                f"sanitize: {len(sub.findings)} finding(s) over "
                f"{sub.checked} boundary check(s), "
                f"{overhead:.2f}x instrumentation overhead"
            )
            report.extend(sub)
        if args.lockorder:
            lock_mutate = (
                args.mutate if args.mutate == MUTATE_LOCK_INVERSION else None
            )
            sub = analyze_lock_order(mutate=lock_mutate)
            print(
                f"lockorder: {len(sub.findings)} finding(s) over "
                f"{sub.checked} acquisition edge(s)"
            )
            report.extend(sub)
        if args.lint:
            sub = analyze_lint()
            print(
                f"lint: {len(sub.findings)} finding(s) over "
                f"{sub.checked} site(s)"
            )
            report.extend(sub)
        print()
        print(report.render(limit=50))
        if args.strict and not report.ok:
            return 1
        return 0

    if args.mutate in (MUTATE_SKIP_APPEND, MUTATE_LOCK_INVERSION):
        parser.error(
            f"--mutate {args.mutate} applies to the --sanitize/--lockorder "
            "passes, not the layout analysis"
        )

    config = AnalysisConfig(
        layouts=tuple(args.layouts),
        variabilities=tuple(args.variability),
        tenants=args.tenants,
        rows_per_table=args.rows,
        width=args.width,
        mutate=args.mutate,
        admin_ops=not args.no_admin_ops,
        crash_recover=args.recovery,
    )
    report = run_analysis(config, log=print)
    print()
    print(report.render(limit=50))
    if args.strict and not report.ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
