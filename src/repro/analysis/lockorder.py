"""Static lock-order / resource-acquisition analysis (the ``LCK`` rules).

The engine is cooperative today, but the ROADMAP's MVCC and sharding
work will run its subsystems concurrently — at which point "who calls
into whom" becomes "who acquires whose latch while holding their own".
This pass extracts that acquisition graph *statically*, before any of
it can deadlock:

1. Engine classes are mapped to **resource classes** (``HeapFile`` and
   ``ColumnStore`` are both the ``heap`` resource, ``WriteAheadLog`` is
   ``wal``, ...).  The :class:`~repro.engine.database.Database` facade
   and the executors are orchestrators, not resources — they hold
   nothing while calling, so they are deliberately absent.
2. Every method body of a resource class is walked with :mod:`ast`; a
   call through a receiver that names another resource
   (``self._pool.read(...)``, ``db.pool.write_back_all(...)``,
   ``entry.table.delete_row(...)``) adds the edge *my resource → its
   resource*: code of the first would hold its latch while entering
   the second.
3. The edges are checked against :data:`HIERARCHY` — the one global
   acquisition order every future latch must follow.  A cycle in the
   graph is a potential deadlock (**LCK001**); an edge that runs
   *backwards* through the hierarchy inverts the declared order
   (**LCK002**); a resource class the hierarchy forgot is **LCK003**.

One modelled exception: ``BufferPool`` calls
``DurabilityManager.before_page_write`` on writeback, which would read
as pool → durability — backwards, and a cycle with the checkpoint path
(durability → pool).  That method only flushes the WAL (it takes no
durability-wide latch), so :data:`CALL_TARGET_OVERRIDES` narrows its
edge to the ``wal`` resource, which is forward for both callers.

The ``lock-order-inversion`` seeded mutation injects a synthetic
``wal → heap`` edge (a log hook calling back into row storage) and must
make both LCK001 and LCK002 fire — the gate's proof that the pass can
actually catch an inversion.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from .findings import AnalysisReport, Finding

#: Seeded defect for the CLI gate: a synthetic back-edge ``wal → heap``.
MUTATE_LOCK_INVERSION = "lock-order-inversion"

#: The declared global acquisition order, outermost first: code may
#: enter resources to the *right* of its own while working, never to
#: the left.  Transactions sit outermost (a statement enters everything
#: else under its transaction), the lock table is a leaf (nothing may
#: call out of it while it updates its ledger).
HIERARCHY: list[str] = [
    "txn",
    "catalog",
    "heap",
    "btree",
    "durability",
    "pool",
    "wal",
    "store",
    "locks",
]

#: Engine class name → resource class.
CLASS_RESOURCES: dict[str, str] = {
    "TransactionManager": "txn",
    "Catalog": "catalog",
    "Table": "catalog",
    "HeapFile": "heap",
    "ColumnStore": "heap",
    "BTreeIndex": "btree",
    "DurabilityManager": "durability",
    "BufferPool": "pool",
    "WriteAheadLog": "wal",
    "DiskPageStore": "store",
    "LockTable": "locks",
}

#: Receiver attribute/variable name → resource class.  This is how call
#: targets are resolved without type inference: the engine's naming is
#: disciplined (``self._pool`` is always the buffer pool, a ``table``
#: is always a catalog Table, ...).
ATTR_RESOURCES: dict[str, str] = {
    "locks": "locks",
    "catalog": "catalog",
    "table": "catalog",
    "transactions": "txn",
    "heap": "heap",
    "_heap": "heap",
    "btree": "btree",
    "pool": "pool",
    "_pool": "pool",
    "durability": "durability",
    "_durability": "durability",
    "wal": "wal",
    "store": "store",
    "_store": "store",
}

#: Methods whose effective resource is narrower than their class (see
#: module docstring).
CALL_TARGET_OVERRIDES: dict[str, str] = {
    "before_page_write": "wal",
}

#: Default scan root: the engine package.
ENGINE_ROOT = os.path.join(os.path.dirname(__file__), "..", "engine")


@dataclass(frozen=True)
class AcquisitionEdge:
    """One *src holds its latch while entering dst* relationship."""

    src: str
    dst: str


@dataclass
class AcquisitionGraph:
    """The extracted graph: edges with the call sites that induced them."""

    edges: dict[AcquisitionEdge, list[str]] = field(default_factory=dict)
    #: Resource classes actually seen in the scanned source.
    resources: set[str] = field(default_factory=set)

    def add(self, src: str, dst: str, locus: str) -> None:
        self.edges.setdefault(AcquisitionEdge(src, dst), []).append(locus)
        self.resources.add(src)
        self.resources.add(dst)

    def successors(self, resource: str) -> list[str]:
        return sorted(
            {e.dst for e in self.edges if e.src == resource}
        )


def _receiver_name(call: ast.Call) -> str | None:
    """``self._pool.read(...)`` → ``"_pool"``; ``durability.log(...)``
    → ``"durability"``; anything unresolvable → None."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name) and value.id != "self":
        return value.id
    return None


def _engine_files(root: str) -> list[str]:
    files = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                files.append(os.path.join(dirpath, filename))
    return sorted(files)


def build_graph(
    root: str = ENGINE_ROOT, *, mutate: str | None = None
) -> AcquisitionGraph:
    """Extract the resource-acquisition graph from the engine source."""
    graph = AcquisitionGraph()
    for path in _engine_files(root):
        with open(path, encoding="utf-8") as handle:
            tree = ast.parse(handle.read(), filename=path)
        rel = os.path.relpath(path, os.path.join(root, os.pardir))
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            src = CLASS_RESOURCES.get(node.name)
            if src is None:
                continue
            graph.resources.add(src)
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                receiver = _receiver_name(call)
                if receiver is None:
                    continue
                dst = ATTR_RESOURCES.get(receiver)
                if dst is None:
                    continue
                assert isinstance(call.func, ast.Attribute)
                dst = CALL_TARGET_OVERRIDES.get(call.func.attr, dst)
                if dst == src:
                    continue
                graph.add(
                    src, dst, f"{rel}:{call.lineno} ({node.name})"
                )
    if mutate == MUTATE_LOCK_INVERSION:
        # A log hook calling back into row storage: wal → heap closes
        # the heap → pool → wal chain into a deadlock-capable cycle.
        graph.add("wal", "heap", "seeded:lock-order-inversion")
    return graph


def _find_cycles(graph: AcquisitionGraph) -> list[list[str]]:
    """Elementary cycles via DFS over the (small) resource graph; each
    cycle is reported once, rotated to start at its smallest node."""
    cycles: set[tuple[str, ...]] = set()
    adjacency = {r: graph.successors(r) for r in graph.resources}

    def walk(node: str, path: list[str], on_path: set[str]) -> None:
        for succ in adjacency.get(node, ()):
            if succ in on_path:
                cycle = path[path.index(succ):]
                smallest = min(range(len(cycle)), key=lambda i: cycle[i])
                cycles.add(tuple(cycle[smallest:] + cycle[:smallest]))
                continue
            path.append(succ)
            on_path.add(succ)
            walk(succ, path, on_path)
            on_path.discard(succ)
            path.pop()

    for start in sorted(graph.resources):
        walk(start, [start], {start})
    return [list(c) for c in sorted(cycles)]


def analyze_lock_order(
    root: str = ENGINE_ROOT, *, mutate: str | None = None
) -> AnalysisReport:
    """Run the full LCK pass; one ``checked`` tick per edge examined."""
    graph = build_graph(root, mutate=mutate)
    report = AnalysisReport()
    order = {resource: i for i, resource in enumerate(HIERARCHY)}
    for resource in sorted(graph.resources):
        if resource not in order:
            report.add(
                Finding(
                    "LCK003",
                    f"resource class {resource!r} is acquired but missing "
                    "from the declared hierarchy",
                )
            )
    for cycle in _find_cycles(graph):
        report.add(
            Finding(
                "LCK001",
                "potential deadlock: acquisition cycle "
                + " -> ".join(cycle + [cycle[0]]),
            )
        )
    for edge in sorted(graph.edges, key=lambda e: (e.src, e.dst)):
        report.checked += 1
        src_pos = order.get(edge.src)
        dst_pos = order.get(edge.dst)
        if src_pos is None or dst_pos is None:
            continue  # LCK003 already covers unranked resources
        if src_pos > dst_pos:
            loci = graph.edges[edge]
            report.add(
                Finding(
                    "LCK002",
                    f"{edge.src} acquires {edge.dst} against the declared "
                    f"order ({edge.dst} precedes {edge.src})",
                    loci[0],
                )
            )
    return report
