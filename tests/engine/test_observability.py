"""Tests for the observability layer: metrics registry, query traces,
and EXPLAIN ANALYZE."""

import pytest

from repro import LogicalColumn, LogicalTable, MultiTenantDatabase
from repro.engine import Database
from repro.engine.errors import EngineError
from repro.engine.observability import (
    Counter,
    Gauge,
    Histogram,
    HISTOGRAM_RESERVOIR,
    MetricsRegistry,
)
from repro.engine.values import INTEGER, varchar


# -- registry primitives ------------------------------------------------------


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_decrease(self):
        with pytest.raises(EngineError):
            Counter("x").inc(-1)


class TestGauge:
    def test_moves_both_ways(self):
        g = Gauge("x")
        g.set(10)
        g.set(3)
        assert g.value == 3


class TestHistogram:
    def test_exact_count_sum_min_max(self):
        h = Histogram("x")
        for v in (5.0, 1.0, 9.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 15.0
        assert h.min == 1.0
        assert h.max == 9.0
        assert h.mean == 5.0

    def test_percentiles(self):
        h = Histogram("x")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert h.percentile(95) == pytest.approx(95.0, abs=1.0)
        assert h.percentile(99) == pytest.approx(99.0, abs=1.0)

    def test_empty_percentile_is_zero(self):
        assert Histogram("x").percentile(95) == 0.0

    def test_reservoir_stays_bounded(self):
        h = Histogram("x")
        n = HISTOGRAM_RESERVOIR * 3
        for v in range(n):
            h.observe(float(v))
        assert h.count == n
        assert len(h._samples) <= HISTOGRAM_RESERVOIR
        # Exact aggregates survive decimation.
        assert h.min == 0.0
        assert h.max == float(n - 1)
        # The decimated reservoir still approximates the distribution.
        assert h.percentile(50) == pytest.approx(n / 2, rel=0.1)

    def test_summary_keys(self):
        h = Histogram("x")
        h.observe(2.0)
        summary = h.summary()
        assert set(summary) == {
            "count", "sum", "mean", "min", "max", "p50", "p95", "p99"
        }


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")

    def test_type_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(EngineError):
            r.gauge("a")

    def test_value_and_contains(self):
        r = MetricsRegistry()
        r.counter("a").inc(4)
        assert "a" in r
        assert r.value("a") == 4
        assert r.value("missing", default=-1.0) == -1.0

    def test_snapshot_and_render(self):
        r = MetricsRegistry()
        r.counter("pool.reads").inc(3)
        r.histogram("db.ms").observe(1.5)
        snap = r.snapshot()
        assert snap["pool.reads"] == 3
        assert snap["db.ms"]["count"] == 1
        text = r.render("pool.")
        assert "pool.reads  3" in text
        assert "db.ms" not in text


# -- engine wiring ------------------------------------------------------------


@pytest.fixture()
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (id INTEGER NOT NULL, grp INTEGER, name VARCHAR(20))"
    )
    database.execute("CREATE UNIQUE INDEX t_pk ON t (id)")
    for i in range(40):
        database.execute(
            "INSERT INTO t VALUES (?, ?, ?)", [i, i % 4, f"n{i}"]
        )
    return database


class TestEngineMetrics:
    def test_pool_counters_match_stats(self, db):
        db.execute("SELECT name FROM t WHERE id = 3")
        assert db.metrics.value("pool.data.logical_reads") == (
            db.pool_stats.logical_data
        )
        assert db.metrics.value("pool.index.logical_reads") == (
            db.pool_stats.logical_index
        )
        assert db.metrics.value("pool.writes") == db.pool_stats.writes

    def test_structure_counters_accumulate(self, db):
        before = db.metrics.value("btree.descents")
        db.execute("SELECT name FROM t WHERE id = 5")
        assert db.metrics.value("btree.descents") > before
        assert db.metrics.value("heap.inserts") == 40
        assert db.metrics.value("heap.fetches") > 0

    def test_statement_histogram_grows(self, db):
        before = db.metrics.histogram("db.statement_ms").count
        db.trace("SELECT COUNT(*) FROM t")
        assert db.metrics.histogram("db.statement_ms").count == before + 1

    def test_resident_gauge_tracks_pool(self, db):
        assert db.metrics.value("pool.resident_pages") == (
            db.pool.resident_pages
        )
        db.flush_cache()
        assert db.metrics.value("pool.resident_pages") == 0


class TestQueryTrace:
    def test_trace_isolates_one_query(self, db):
        db.execute("SELECT name FROM t WHERE id = 1")  # warm
        trace = db.trace("SELECT name FROM t WHERE id = 1")
        assert trace.rows == [("n1",)]
        assert trace.rowcount == 1
        assert trace.logical_reads > 0
        assert trace.physical_reads == 0  # warm cache
        assert trace.logical_reads == (
            trace.pool.logical_data + trace.pool.logical_index
        )
        assert trace.elapsed_ms > 0.0

    def test_trace_deltas_are_per_query(self, db):
        """Two traces of the same warm query report identical reads —
        the defining difference from cumulative global counters."""
        db.execute("SELECT name FROM t WHERE id = 2")
        first = db.trace("SELECT name FROM t WHERE id = 2")
        second = db.trace("SELECT name FROM t WHERE id = 2")
        assert first.logical_reads == second.logical_reads
        assert first.index_reads == second.index_reads

    def test_index_read_share(self, db):
        db.execute("SELECT name FROM t WHERE id = 3")
        trace = db.trace("SELECT name FROM t WHERE id = 3")
        assert 0.0 < trace.index_read_share < 1.0
        assert trace.index_reads + trace.data_reads == trace.logical_reads

    def test_trace_select_has_operators_and_plan(self, db):
        trace = db.trace("SELECT grp, COUNT(*) FROM t GROUP BY grp")
        assert trace.plan is not None
        assert trace.operators
        names = [op.op_name for op in trace.operators]
        assert "RETURN" in names
        assert "GRPBY" in names

    def test_trace_non_select(self, db):
        trace = db.trace("UPDATE t SET grp = 9 WHERE id = 0")
        assert trace.rowcount == 1
        assert trace.plan is None
        assert trace.pool.writes > 0

    def test_trace_scalar_and_render(self, db):
        trace = db.trace("SELECT COUNT(*) FROM t")
        assert trace.scalar() == 40
        text = trace.render()
        assert "pool:" in text
        assert "exec:" in text
        assert "locks:" in text

    def test_analyze_false_skips_plan(self, db):
        trace = db.trace("SELECT COUNT(*) FROM t", analyze=False)
        assert trace.plan is None
        assert trace.operators == []
        assert trace.scalar() == 40


class TestExplainAnalyze:
    def test_operator_annotations(self, db):
        text = db.explain_analyze("SELECT name FROM t WHERE id = 4")
        lines = text.splitlines()
        assert lines[0].startswith("RETURN")
        for token in ("rows=", "opens=", "time="):
            assert token in text
        assert "IXSCAN" in text
        assert "(never executed)" not in text

    def test_sql_statement_form(self, db):
        result = db.execute("EXPLAIN ANALYZE SELECT name FROM t WHERE id = 4")
        assert result.columns == ["plan"]
        assert result.rows[0][0].startswith("RETURN")
        assert any("rows=" in row[0] for row in result.rows)

    def test_plain_explain_statement(self, db):
        result = db.execute("EXPLAIN SELECT name FROM t WHERE id = 4")
        assert result.rows[0][0].startswith("RETURN")
        assert all("rows=" not in row[0] for row in result.rows)

    def test_analyze_rejects_non_select(self, db):
        with pytest.raises(EngineError):
            db.explain_analyze("UPDATE t SET grp = 1 WHERE id = 1")

    def test_rows_attributed_per_operator(self, db):
        text = db.explain_analyze("SELECT name FROM t WHERE grp = 2")
        for line in text.splitlines():
            if line.strip().startswith("TBSCAN"):
                # The scan produced only the filtered rows (residual
                # predicates apply inside the scan).
                assert "rows=10" in line
                break
        else:  # pragma: no cover
            pytest.fail(f"no TBSCAN in: {text}")

    def test_nested_loop_opens_count(self, db):
        db.execute(
            "CREATE TABLE s (id INTEGER NOT NULL, t_id INTEGER)"
        )
        db.execute("CREATE INDEX s_fk ON s (t_id)")
        for i in range(6):
            db.execute("INSERT INTO s VALUES (?, ?)", [i, i % 3])
        text = db.explain_analyze(
            "SELECT t.name, s.id FROM t, s WHERE t.id = s.t_id"
        )
        assert "NLJOIN" in text or "HSJOIN" in text


class TestChunkFoldingAcceptance:
    """The issue's acceptance case: EXPLAIN ANALYZE over a chunk-folding
    query prints an operator tree with per-operator rows and timings."""

    def test_chunk_folding_analyzed_plan(self):
        mtd = MultiTenantDatabase(layout="chunk_folding", width=2)
        mtd.define_table(
            LogicalTable(
                "account",
                (
                    LogicalColumn("aid", INTEGER, indexed=True, not_null=True),
                    LogicalColumn("name", varchar(30)),
                    LogicalColumn("balance", INTEGER),
                ),
            )
        )
        mtd.create_tenant(7)
        for i in range(12):
            mtd.insert(
                7, "account", {"aid": i, "name": f"a{i}", "balance": i * 10}
            )
        text = mtd.explain_analyze(
            7, "SELECT name, balance FROM account WHERE aid = ?", [3]
        )
        lines = text.splitlines()
        assert lines[0].startswith("RETURN")
        assert any("IXSCAN" in line for line in lines)
        for token in ("rows=", "opens=", "time="):
            assert token in text
        # The trace carries the per-query page-read deltas Figure 10
        # consumes.
        trace = mtd.trace(
            7, "SELECT name, balance FROM account WHERE aid = ?", [3]
        )
        assert trace.logical_reads > 0
        assert trace.index_read_share > 0.0
        assert trace.rows == [("a3", 30)]
