"""Crashpoint coverage: every crashpoint in ``src/`` must be reachable.

A crashpoint no workload hits is dead instrumentation — the crash
matrix silently stops sampling that instant, and recovery bugs hiding
behind it go unexposed.  This is the dynamic half of the LNT003 lint
rule: the census workload (an unarmed :class:`FaultInjector` under the
full admin-operation surface) must exercise every crashpoint name
referenced anywhere in the source tree.
"""

import pytest

from repro.analysis.lint import run_crashpoint_census, static_crashpoints


@pytest.fixture(scope="module")
def census():
    return run_crashpoint_census()


def test_census_hits_every_static_crashpoint(census):
    refs = static_crashpoints()
    assert refs, "no crashpoints found in src/ — the scanner broke"
    hit_names = [name for name, count in census.items() if count > 0]
    unexercised = [
        ref.pattern
        for ref in refs
        if not any(ref.matches(name) for name in hit_names)
    ]
    assert unexercised == []


def test_census_covers_known_protocol_points(census):
    """The load-bearing instants must each be hit at least once (an
    empty census matching zero static refs would also 'pass' above)."""
    for name in (
        "txn.commit",
        "pager.writeback",
        "checkpoint.begin",
        "checkpoint.end",
        "wal.flush",
        "wal.checkpoint_reset",
        "migrate.after_purge",
        "drop_tenant.table",
    ):
        assert census.get(name, 0) >= 1, name


def test_admin_brackets_are_balanced(census):
    """Every admin.<op>.begin seen by the census has a matching end —
    an unbalanced bracket means an operation path skips its marker."""
    begins = {
        name[len("admin."):-len(".begin")]: count
        for name, count in census.items()
        if name.startswith("admin.") and name.endswith(".begin")
    }
    ends = {
        name[len("admin."):-len(".end")]: count
        for name, count in census.items()
        if name.startswith("admin.") and name.endswith(".end")
    }
    assert begins and begins == ends
