"""Physical plan nodes.

Operator names follow the DB2 vocabulary the paper's Figure 8 uses:
``TBSCAN``, ``IXSCAN``, ``FETCH``, ``NLJOIN``, ``HSJOIN``, ``GRPBY``,
``SORT``, ``FILTER``, ``RETURN`` — so rendered plans are directly
comparable with the figure.

Nodes are built by :mod:`repro.engine.optimizer` with expressions
already compiled (closures over slot positions); the executor only walks
the tree and pulls rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..expr import Compiled, Schema


@dataclass
class PNode:
    """Base physical node."""

    schema: Schema

    # Planner annotations (deliberately *not* dataclass fields — every
    # subclass would otherwise need defaults after them).  ``est_rows``
    # is the optimizer's cardinality estimate for this operator's
    # output; ``feedback_key`` is the ``(table, bound columns)`` key
    # under which an analyzed run's actual rows feed the
    # :class:`~repro.engine.feedback.CardinalityFeedback` store.
    est_rows = None  # type: float | None
    feedback_key = None  # type: tuple | None

    @property
    def op_name(self) -> str:
        return type(self).__name__

    def children(self) -> list["PNode"]:
        return []

    def describe(self) -> str:
        return ""


@dataclass
class PTableScan(PNode):
    table_name: str
    binding: str
    residual: list[Compiled] = field(default_factory=list)
    residual_sql: list[str] = field(default_factory=list)
    #: Slot positions the plan can prove it reads (``None`` = all).  A
    #: columnar scan materializes only these columns; the rest stay on
    #: their pages (NULL-filled if a batch is ever row-assembled).  Big
    #: win for the Universal Table, whose physical row is ~60 columns
    #: wide while a typical fused cross-tenant query touches a handful.
    used_columns: list[int] | None = None

    @property
    def op_name(self) -> str:
        return "TBSCAN"

    def describe(self) -> str:
        return f"{self.table_name} AS {self.binding}"


@dataclass
class PIndexScan(PNode):
    """Equality-prefix index scan.

    ``key_exprs`` are compiled against the *outer* schema (empty for the
    leftmost access; the current outer row for NLJOIN inners).  When
    ``index_only`` the schema's non-index slots are never populated and
    no FETCH child is added above.
    """

    table_name: str
    binding: str
    index_name: str
    key_exprs: list[Compiled] = field(default_factory=list)
    key_sql: list[str] = field(default_factory=list)
    index_only: bool = False
    residual: list[Compiled] = field(default_factory=list)
    residual_sql: list[str] = field(default_factory=list)
    #: Optional range bounds on the column following the equality
    #: prefix; bounds are inclusive at scan level (exact exclusivity is
    #: re-checked by the residual predicates).
    range_low: Compiled | None = None
    range_high: Compiled | None = None
    range_sql: list[str] = field(default_factory=list)

    @property
    def op_name(self) -> str:
        return "IXSCAN"

    def describe(self) -> str:
        keys = ", ".join(self.key_sql + self.range_sql)
        tail = " (index-only)" if self.index_only else ""
        return f"{self.table_name} AS {self.binding} via {self.index_name}({keys}){tail}"


@dataclass
class PFetch(PNode):
    """RID-to-row fetch above an IXSCAN (reads data pages)."""

    child: PIndexScan = None  # type: ignore[assignment]
    table_name: str = ""

    @property
    def op_name(self) -> str:
        return "FETCH"

    def children(self) -> list[PNode]:
        return [self.child]

    def describe(self) -> str:
        return self.table_name


@dataclass
class PMaterialize(PNode):
    """Evaluate a derived table once and buffer it (SIMPLE profile's
    treatment of FROM subqueries — the penalty Test 1 measures)."""

    child: PNode = None  # type: ignore[assignment]
    binding: str = ""
    residual: list[Compiled] = field(default_factory=list)
    residual_sql: list[str] = field(default_factory=list)

    @property
    def op_name(self) -> str:
        return "MATERIALIZE"

    def children(self) -> list[PNode]:
        return [self.child]

    def describe(self) -> str:
        return f"derived table {self.binding}"


@dataclass
class PNLJoin(PNode):
    outer: PNode = None  # type: ignore[assignment]
    inner: PNode = None  # type: ignore[assignment]  # access node, re-run per outer row

    @property
    def op_name(self) -> str:
        return "NLJOIN"

    def children(self) -> list[PNode]:
        return [self.outer, self.inner]


@dataclass
class PHSJoin(PNode):
    left: PNode = None  # type: ignore[assignment]
    right: PNode = None  # type: ignore[assignment]  # build side
    left_keys: list[Compiled] = field(default_factory=list)
    right_keys: list[Compiled] = field(default_factory=list)
    key_sql: list[str] = field(default_factory=list)

    @property
    def op_name(self) -> str:
        return "HSJOIN"

    def children(self) -> list[PNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return " AND ".join(self.key_sql)


@dataclass
class PFilter(PNode):
    child: PNode = None  # type: ignore[assignment]
    predicates: list[Compiled] = field(default_factory=list)
    predicate_sql: list[str] = field(default_factory=list)

    @property
    def op_name(self) -> str:
        return "FILTER"

    def children(self) -> list[PNode]:
        return [self.child]

    def describe(self) -> str:
        return " AND ".join(self.predicate_sql)


@dataclass
class AggSpec:
    """One aggregate computed by GRPBY."""

    func: str  # COUNT / SUM / AVG / MIN / MAX / COUNT_STAR
    arg: Compiled | None
    distinct: bool = False


@dataclass
class OutputSpec:
    """How one output column of a GRPBY is produced: either a group key
    (``group_index``) or an aggregate (``agg_index``), optionally wrapped
    by a scalar post-expression compiled against (keys + aggs) tuples."""

    group_index: int | None = None
    agg_index: int | None = None
    post: Compiled | None = None


@dataclass
class PGroup(PNode):
    child: PNode = None  # type: ignore[assignment]
    group_exprs: list[Compiled] = field(default_factory=list)
    aggs: list[AggSpec] = field(default_factory=list)
    outputs: list[OutputSpec] = field(default_factory=list)
    having: Compiled | None = None

    @property
    def op_name(self) -> str:
        return "GRPBY"

    def children(self) -> list[PNode]:
        return [self.child]

    def describe(self) -> str:
        return f"{len(self.group_exprs)} keys, {len(self.aggs)} aggregates"


@dataclass
class PProject(PNode):
    child: PNode = None  # type: ignore[assignment]
    exprs: list[Compiled] = field(default_factory=list)
    labels: list[str] = field(default_factory=list)

    @property
    def op_name(self) -> str:
        return "PROJECT"

    def children(self) -> list[PNode]:
        return [self.child]

    def describe(self) -> str:
        return ", ".join(self.labels)


@dataclass
class PSort(PNode):
    child: PNode = None  # type: ignore[assignment]
    keys: list[tuple[Compiled, bool]] = field(default_factory=list)  # (expr, desc)

    @property
    def op_name(self) -> str:
        return "SORT"

    def children(self) -> list[PNode]:
        return [self.child]


@dataclass
class PDistinct(PNode):
    child: PNode = None  # type: ignore[assignment]

    @property
    def op_name(self) -> str:
        return "DISTINCT"

    def children(self) -> list[PNode]:
        return [self.child]


@dataclass
class PLimit(PNode):
    child: PNode = None  # type: ignore[assignment]
    limit: int = 0

    @property
    def op_name(self) -> str:
        return "LIMIT"

    def children(self) -> list[PNode]:
        return [self.child]

    def describe(self) -> str:
        return str(self.limit)


@dataclass
class PReturn(PNode):
    child: PNode = None  # type: ignore[assignment]

    @property
    def op_name(self) -> str:
        return "RETURN"

    def children(self) -> list[PNode]:
        return [self.child]
