"""Unit tests for plan rendering and executor edge cases."""

import pytest

from repro.engine import Database
from repro.engine.explain import count_operators, plan_shape, render_plan


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (id INTEGER NOT NULL, v INTEGER, s VARCHAR(10))")
    database.execute("CREATE UNIQUE INDEX t_pk ON t (id)")
    for i in range(30):
        database.execute(
            "INSERT INTO t VALUES (?, ?, ?)", [i, i % 5, f"s{i % 3}"]
        )
    return database


class TestRendering:
    def test_render_is_indented_tree(self, db):
        text = db.explain("SELECT v FROM t WHERE id = 3")
        lines = text.splitlines()
        assert lines[0] == "RETURN"
        assert lines[1].startswith("  ")
        assert "IXSCAN" in text

    def test_plan_shape_compact(self, db):
        shape = plan_shape(db.plan("SELECT v FROM t WHERE id = 3"))
        assert shape == "RETURN(PROJECT(FETCH(IXSCAN)))"

    def test_count_operators(self, db):
        root = db.plan("SELECT v FROM t ORDER BY v LIMIT 3")
        assert count_operators(root, "SORT") == 1
        assert count_operators(root, "LIMIT") == 1
        assert count_operators(root, "TBSCAN") == 1

    def test_describe_details_present(self, db):
        text = render_plan(db.plan("SELECT v FROM t WHERE id = ?"))
        assert "t_pk" in text
        assert "t.id = ?" in text


class TestExecutorEdges:
    def test_sort_is_stable_across_keys(self, db):
        rows = db.execute("SELECT v, id FROM t ORDER BY v, id DESC").rows
        # Within each v group ids strictly descend; groups ascend.
        for (v1, i1), (v2, i2) in zip(rows, rows[1:]):
            assert v1 <= v2
            if v1 == v2:
                assert i1 > i2

    def test_sort_nulls_first(self, db):
        db.execute("INSERT INTO t VALUES (99, NULL, 'x')")
        rows = db.execute("SELECT v FROM t ORDER BY v LIMIT 1").rows
        assert rows == [(None,)]

    def test_distinct_preserves_first_seen_order(self, db):
        rows = db.execute("SELECT DISTINCT s FROM t").rows
        assert rows == [("s0",), ("s1",), ("s2",)]

    def test_limit_zero(self, db):
        assert db.execute("SELECT v FROM t LIMIT 0").rows == []

    def test_having_without_group_on_global_aggregate(self, db):
        rows = db.execute(
            "SELECT COUNT(*) FROM t GROUP BY s HAVING COUNT(*) > 100"
        ).rows
        assert rows == []

    def test_group_by_expression(self, db):
        rows = db.execute(
            "SELECT v * 2, COUNT(*) FROM t GROUP BY v * 2 ORDER BY v * 2"
        ).rows
        assert [r[0] for r in rows] == [0, 2, 4, 6, 8]

    def test_avg_of_empty_group_is_null(self, db):
        rows = db.execute("SELECT AVG(v) FROM t WHERE id > 1000").rows
        assert rows == [(None,)]

    def test_order_by_aggregate_not_in_select(self, db):
        rows = db.execute(
            "SELECT s FROM t GROUP BY s ORDER BY COUNT(*) DESC, s"
        ).rows
        assert len(rows) == 3
