"""Reproduction of *Multi-Tenant Databases for Software as a Service:
Schema-Mapping Techniques* (Aulbach, Grust, Jacobs, Kemper, Rittinger —
SIGMOD 2008).

Packages:

* :mod:`repro.engine`  — an instrumented pure-Python relational engine
  (the substrate playing DB2/MySQL's role).
* :mod:`repro.core`    — schema-mapping layouts, query/DML
  transformation, and Chunk Folding (the paper's contribution).
* :mod:`repro.testbed` — the MTD multi-tenant CRM testbed (Section 4).
* :mod:`repro.experiments` — harnesses regenerating every table/figure.
"""

from .core import (  # noqa: F401
    Extension,
    FoldingPlanner,
    LogicalColumn,
    LogicalTable,
    MultiTenantDatabase,
    PredicateOrder,
    UpdateMode,
)
from .engine import Database, OptimizerProfile  # noqa: F401

__version__ = "1.0.0"
