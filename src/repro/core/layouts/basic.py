"""Basic Layout — add a Tenant column and share tables (Section 3).

"This approach provides very good consolidation but no extensibility"
— it is what conventional Web applications on the left of Figure 2 use.
Attempting to grant an extension raises.
"""

from __future__ import annotations

from ...engine.errors import PlanError
from ..schema import Extension, LogicalTable, TenantConfig
from .base import ColumnLoc, Fragment, Layout


class BasicLayout(Layout):
    name = "basic"
    supports_extensions = False
    shares_statements = True

    def physical_name(self, table_name: str) -> str:
        return f"{table_name.lower()}_shared"

    def on_table_added(self, table: LogicalTable) -> None:
        super().on_table_added(table)
        physical = self.physical_name(table.name)
        columns = ["tenant INTEGER NOT NULL"]
        columns += [
            f"{c.lname} {c.type}" + (" NOT NULL" if c.not_null else "")
            for c in table.columns
        ]
        ddl = (
            f"CREATE TABLE {physical} ("
            + ", ".join(columns)
            + self._alive_ddl()
            + ")"
        )
        indexes = [
            f"CREATE INDEX {physical}_tenant ON {physical} (tenant)"
        ] + [
            f"CREATE INDEX {physical}_{c.lname} ON {physical} (tenant, {c.lname})"
            for c in table.columns
            if c.indexed
        ]
        self._ensure_table(physical, ddl, indexes)

    def on_extension_added(self, extension: Extension) -> None:
        raise PlanError(
            "the Basic layout shares tables among tenants and cannot "
            "represent extensions (Section 3: 'very good consolidation "
            "but no extensibility')"
        )

    def on_tenant_added(self, config: TenantConfig) -> None:
        if config.extensions:
            raise PlanError(
                "the Basic layout cannot host tenants with extensions"
            )

    def fragments(self, tenant_id: int, table_name: str) -> list[Fragment]:
        base = self.schema.table(table_name)
        return [
            Fragment(
                table=self.physical_name(table_name),
                meta=(("tenant", tenant_id),),
                columns=tuple(
                    (c.lname, ColumnLoc(c.lname)) for c in base.columns
                ),
                row_column=None,
            )
        ]
