"""Plan rendering in the style of the paper's Figure 8.

:func:`render_plan` produces an indented operator tree using DB2's
operator vocabulary (RETURN / NLJOIN / HSJOIN / IXSCAN / FETCH / ...);
:func:`plan_shape` produces a compact s-expression used by tests to
assert plan shapes without depending on formatting.
"""

from __future__ import annotations

from .plan import physical as phys


def render_plan(root: phys.PNode) -> str:
    lines: list[str] = []

    def visit(node: phys.PNode, depth: int) -> None:
        detail = node.describe()
        suffix = f"  [{detail}]" if detail else ""
        lines.append("  " * depth + node.op_name + suffix)
        for child in node.children():
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


def plan_shape(root: phys.PNode) -> str:
    """Compact shape string, e.g. ``RETURN(NLJOIN(HSJOIN(IXSCAN,IXSCAN),FETCH(IXSCAN)))``."""

    def visit(node: phys.PNode) -> str:
        children = node.children()
        if not children:
            return node.op_name
        inner = ",".join(visit(c) for c in children)
        return f"{node.op_name}({inner})"

    return visit(root)


def count_operators(root: phys.PNode, op_name: str) -> int:
    """Number of operators with the given name in the plan."""
    total = 1 if root.op_name == op_name else 0
    for child in root.children():
        total += count_operators(child, op_name)
    return total
