"""CLI: ``python -m repro.analysis [--strict] ...``.

Runs the semantic, tenant-isolation, and layout-invariant passes over
the Figure 5 CRM testbed at the Table 1 variability levels, printing a
per-configuration summary and every finding.  ``--strict`` exits
non-zero on any ERROR-severity finding — the CI analysis gate.
"""

from __future__ import annotations

import argparse
import sys

from .findings import RULES
from .mutation import MUTATIONS
from .runner import (
    ALL_LAYOUTS,
    PAPER_VARIABILITIES,
    AnalysisConfig,
    run_analysis,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis over the multi-tenant CRM testbed.",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on any ERROR-severity finding",
    )
    parser.add_argument(
        "--layouts",
        nargs="+",
        default=list(ALL_LAYOUTS),
        choices=list(ALL_LAYOUTS),
        help="layouts to analyze (default: all seven)",
    )
    parser.add_argument(
        "--variability",
        nargs="+",
        type=float,
        default=list(PAPER_VARIABILITIES),
        help="Table 1 schema-variability levels (default: %(default)s)",
    )
    parser.add_argument(
        "--tenants", type=int, default=4, help="tenants per configuration"
    )
    parser.add_argument(
        "--rows", type=int, default=2, help="rows per populated table"
    )
    parser.add_argument(
        "--width", type=int, default=6, help="chunk width for chunked layouts"
    )
    parser.add_argument(
        "--mutate",
        choices=sorted(MUTATIONS),
        default=None,
        help="apply a seeded defect first (the gate must then fail)",
    )
    parser.add_argument(
        "--no-admin-ops",
        action="store_true",
        help="skip the grant/migrate/drop administrative replay",
    )
    parser.add_argument(
        "--recovery",
        action="store_true",
        help="crash and recover each testbed from disk before analyzing it",
    )
    parser.add_argument(
        "--rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.rules:
        for rule in RULES.values():
            print(f"{rule.rule_id}  {rule.severity!s:7s}  {rule.title}")
        return 0

    config = AnalysisConfig(
        layouts=tuple(args.layouts),
        variabilities=tuple(args.variability),
        tenants=args.tenants,
        rows_per_table=args.rows,
        width=args.width,
        mutate=args.mutate,
        admin_ops=not args.no_admin_ops,
        crash_recover=args.recovery,
    )
    report = run_analysis(config, log=print)
    print()
    print(report.render(limit=50))
    if args.strict and not report.ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
