"""The :class:`Database` facade.

One object per simulated database server: a buffer pool sized from a
memory budget minus the catalog's meta-data consumption, a planner with
a configurable optimizer profile, and an executor.  ``execute()`` takes
SQL text plus positional parameters and returns a :class:`Result`.

>>> db = Database()
>>> _ = db.execute("CREATE TABLE t (id INTEGER NOT NULL, name VARCHAR(20))")
>>> _ = db.execute("INSERT INTO t VALUES (1, 'x')")
>>> db.execute("SELECT name FROM t WHERE id = ?", [1]).rows
[('x',)]
"""

from __future__ import annotations

import re
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Sequence

from .catalog import (
    Catalog,
    Column,
    INDEX_METADATA_COST,
    TABLE_METADATA_COST,
)
from .durability import DurabilityManager, DurabilityOptions
from .durability.wal import WalStats
from .errors import BudgetExceededError, EngineError, PlanError, SemanticError
from .executor import ExecStats, Executor
from .expr import ExprCompiler, Schema, Slot
from .feedback import CardinalityFeedback
from .heap import InsertStrategy
from .locks import LockTable
from .observability import (
    AnalyzeCollector,
    MetricsRegistry,
    QueryTrace,
    render_analyzed_plan,
)
from .optimizer import OptimizerProfile, Planner
from .pager import DEFAULT_PAGE_SIZE, BufferPool, PoolStats
from .plan.logical import split_conjuncts
from .sql import ast
from .sql.parser import parse_statement
from .statement_cache import LruCache, PREPARABLE, PreparedStatement
from .transactions import TransactionManager
from .values import parse_type
from .vexecutor import BATCH_ROWS, VectorizedExecutor

#: Default server memory budget. The paper's server had 1 GB; the
#: default here is scaled down with the default workloads (Section 2 of
#: DESIGN.md documents the scaling).
DEFAULT_MEMORY = 16 * 1024 * 1024


@dataclass
class Result:
    """Outcome of one statement."""

    columns: list[str]
    rows: list[tuple]
    rowcount: int

    def scalar(self) -> object:
        if not self.rows or not self.rows[0]:
            raise EngineError("result has no scalar value")
        return self.rows[0][0]


@dataclass
class _InsertProgram:
    """A precompiled INSERT: value thunks plus target column layout."""

    table_name: str
    rows: list[list]
    positions: tuple[int, ...] | None
    width: int


class Database:
    """An instrumented single-node relational database."""

    def __init__(
        self,
        *,
        memory_bytes: int = DEFAULT_MEMORY,
        page_size: int = DEFAULT_PAGE_SIZE,
        profile: OptimizerProfile = OptimizerProfile.ADVANCED,
        table_metadata_cost: int = TABLE_METADATA_COST,
        index_metadata_cost: int = INDEX_METADATA_COST,
        insert_strategy: InsertStrategy = InsertStrategy.FIRST_FIT,
        prefix_compression: bool = True,
        enforce_budget: bool = False,
        plan_cache_size: int = 256,
        path: str | None = None,
        durability: DurabilityOptions | None = None,
        execution: str = "vectorized",
        batch_rows: int = BATCH_ROWS,
        sanitize: bool | None = None,
    ) -> None:
        #: Set before anything that can fail, so :meth:`close` is safe
        #: on a partially constructed instance.
        self._closed = False
        self.memory_bytes = memory_bytes
        self.page_size = page_size
        self.enforce_budget = enforce_budget
        #: Engine-wide observability: every subsystem below feeds this.
        self.metrics = MetricsRegistry()
        #: Disk-backed when a ``path`` is given: WAL + page store live in
        #: that directory and opening it again recovers to the last
        #: committed state.  ``path=None`` keeps the historical
        #: all-in-memory behaviour, byte-for-byte.
        self.durability = (
            DurabilityManager(path, metrics=self.metrics, options=durability)
            if path is not None
            else None
        )
        self.pool = BufferPool(
            max(1, memory_bytes // page_size),
            page_size,
            metrics=self.metrics,
            store=self.durability.store if self.durability else None,
            durability=self.durability,
        )
        self.catalog = Catalog(
            self.pool,
            table_metadata_cost=table_metadata_cost,
            index_metadata_cost=index_metadata_cost,
            insert_strategy=insert_strategy,
            prefix_compression=prefix_compression,
            metrics=self.metrics,
        )
        self.locks = LockTable(metrics=self.metrics)
        self.transactions = TransactionManager(
            metrics=self.metrics, durability=self.durability
        )
        #: Observed selectivities fed back into the planner (pluggable —
        #: see the ``feedback`` property).
        self._feedback = CardinalityFeedback(metrics=self.metrics)
        self._planner = Planner(
            self.catalog,
            profile,
            self._execute_subquery,
            feedback=self._feedback,
        )
        #: Both engines share one ExecStats, so counters stay cumulative
        #: across engine switches and ``exec_stats`` has a single truth.
        shared_stats = ExecStats()
        self._tuple_executor = Executor(self.catalog, shared_stats)
        self._vector_executor = VectorizedExecutor(
            self.catalog,
            shared_stats,
            batch_rows=batch_rows,
            metrics=self.metrics,
        )
        self._executor: Executor | VectorizedExecutor
        self.execution = execution
        #: Prepared statements keyed by SQL text; ``plan_cache_size=0``
        #: disables caching (every statement parses and plans afresh).
        self._statements = LruCache(
            plan_cache_size, self.metrics, "db.plan_cache"
        )
        #: Statement nesting depth; auto-checkpoints only fire between
        #: top-level statements.
        self._execute_depth = 0
        #: Dynamic sanitizer (``sanitize=True``, or the REPRO_SANITIZE
        #: environment variable when the argument is left at ``None``).
        #: Attached before recovery so replayed work runs instrumented
        #: too; the sanitizer suppresses write-ahead checks during
        #: replay itself.
        from ..analysis.sanitizers import Sanitizer, env_sanitize_enabled

        if sanitize is None:
            sanitize = env_sanitize_enabled()
        self.sanitizer: Sanitizer | None = None
        if sanitize:
            self.sanitizer = Sanitizer(metrics=self.metrics)
            self.sanitizer.attach(self)
        if self.durability is not None:
            from .durability.recovery import recover

            try:
                recover(self)
            except BaseException:
                # A failed open must release the WAL / page-store file
                # handles so the caller can retry, repair, or discard
                # the directory; close() afterwards is a no-op.
                self._closed = True
                self.durability.close()
                raise

    # -- configuration ------------------------------------------------------

    @property
    def profile(self) -> OptimizerProfile:
        return self._planner.profile

    @profile.setter
    def profile(self, profile: OptimizerProfile) -> None:
        self._planner.profile = profile

    @property
    def execution(self) -> str:
        """Active execution engine: ``"vectorized"`` (default) or
        ``"tuple"`` (the reference interpreter, kept for differential
        testing).  Switchable at any time; cached plans re-dispatch on
        next use (see :meth:`_prepared_plan`)."""
        return self._execution

    @execution.setter
    def execution(self, mode: str) -> None:
        if mode == "vectorized":
            self._executor = self._vector_executor
        elif mode == "tuple":
            self._executor = self._tuple_executor
        else:
            raise EngineError(
                f"unknown execution mode {mode!r}"
                " (expected 'vectorized' or 'tuple')"
            )
        self._execution = mode

    @property
    def batch_rows(self) -> int:
        return self._vector_executor.batch_rows

    @property
    def feedback(self) -> CardinalityFeedback:
        """The cardinality-feedback store the planner consults.
        Pluggable: assigning a different store (or ``None`` to disable
        feedback) re-points the planner immediately; cached plans
        re-plan lazily via their recorded feedback version."""
        return self._feedback

    @feedback.setter
    def feedback(self, store: CardinalityFeedback | None) -> None:
        self._feedback = store
        self._planner.feedback = store

    # -- statistics ----------------------------------------------------------

    @property
    def pool_stats(self) -> PoolStats:
        return self.pool.stats

    @property
    def exec_stats(self) -> ExecStats:
        return self._executor.stats

    def flush_cache(self) -> None:
        """Empty the buffer pool (cold-cache experiments)."""
        self.pool.flush()

    @property
    def buffer_pool_pages(self) -> int:
        return self.pool.capacity_pages

    # -- durability ---------------------------------------------------------

    @property
    def durable(self) -> bool:
        return self.durability is not None

    @property
    def wal_stats(self) -> WalStats:
        if self.durability is None:
            return WalStats()
        return self.durability.wal.stats

    def checkpoint(self) -> bool:
        """Force a checkpoint now (no-op in memory mode)."""
        if self.durability is None:
            return False
        return self.durability.checkpoint(self)

    def crashpoint(self, name: str) -> None:
        """Hit a named fault-injection crashpoint (no-op in memory mode
        or with an unarmed injector)."""
        if self.durability is not None:
            self.durability.faults.crashpoint(name)

    def admin_operation(self, op: str, payload: dict, end_payload):
        """Crash-atomicity bracket for a multi-statement administrative
        operation (see :meth:`DurabilityManager.admin_operation`); a
        plain no-op context in memory mode."""
        if self.durability is None:
            return nullcontext()
        return self.durability.admin_operation(op, payload, end_payload)

    @property
    def recovered_admin_ops(self) -> list[dict]:
        """Completed admin operations recovered from the log, oldest
        first — the schema-mapping layer replays these to rebuild its
        bookkeeping after a crash."""
        if self.durability is None:
            return []
        return list(self.durability.admin_ops)

    @contextmanager
    def atomic(self):
        """Run a block inside one transaction (crash-atomic in durable
        mode).  Nested entry and memory mode are pass-throughs; a
        simulated crash (``BaseException``) propagates without rollback,
        like a real power cut."""
        if self.durability is None or self.transactions.active:
            yield
            return
        self.transactions.begin()
        try:
            yield
        except Exception:
            # DDL inside the block commits the transaction out from
            # under us (DDL is non-transactional); nothing to undo then.
            if self.transactions.active:
                self.transactions.rollback()
            raise
        else:
            if self.transactions.active:
                self.transactions.commit()

    def close(self) -> None:
        """Flush the WAL and close the on-disk files (durable mode);
        end-of-life leak checks when a sanitizer is attached.

        Idempotent, and safe on a partially constructed instance (a
        failed open releases its files itself), so owners like cluster
        shard workers can tear down unconditionally in error paths.
        """
        if getattr(self, "_closed", False):
            return
        self._closed = True
        durability = getattr(self, "durability", None)
        if durability is not None:
            self.transactions.end_statement()
            durability.wal.flush()
            durability.close()
        # Leak checks last: a raised sanitizer finding must not leave
        # the on-disk files open behind it.
        sanitizer = getattr(self, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.on_close(self)

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- planning / explain -----------------------------------------------------

    def plan(self, sql: str, directives=None):
        stmt = parse_statement(sql)
        if not isinstance(stmt, ast.Select):
            raise PlanError("only SELECT statements can be planned/explained")
        return self._planner.plan_select(stmt, directives)

    def plan_ast(self, select: ast.Select, directives=None):
        """Plan an already-parsed SELECT, optionally pinning parts of
        the plan (:class:`~repro.engine.optimizer.PlanDirectives`) — the
        entry point the plan-space enumerator uses."""
        return self._planner.plan_select(select, directives)

    def execute_plan(
        self, root, params: Sequence[object] = (), collector=None
    ) -> Result:
        """Execute a physical plan built by :meth:`plan` /
        :meth:`plan_ast` on the active engine, optionally under an
        :class:`AnalyzeCollector`."""
        rows = self._executor.run(root, params, collector=collector)
        columns = [slot.name for slot in root.schema.slots]
        return Result(columns, rows, len(rows))

    def explain(self, sql: str) -> str:
        from .explain import render_plan

        return render_plan(self.plan(sql))

    def explain_analyze(self, sql: str, params: Sequence[object] = ()) -> str:
        """Execute ``sql`` and render its plan annotated with measured
        per-operator row counts, open counts, and wall times."""
        trace = self.trace(sql, params, analyze=True)
        if trace.plan is None:
            raise PlanError("only SELECT statements can be analyzed")
        return trace.plan

    # -- tracing -----------------------------------------------------------------

    def trace(
        self,
        sql: str,
        params: Sequence[object] = (),
        *,
        analyze: bool = True,
    ) -> QueryTrace:
        """Execute one statement and return a :class:`QueryTrace` with
        the buffer-pool / executor / lock deltas it caused.

        SELECTs additionally capture the EXPLAIN ANALYZE operator tree
        unless ``analyze=False``.  The experiments build Figure 10 and
        Table 2 from these traces instead of global counter snapshots.
        """
        pool_before = self.pool.stats.snapshot()
        exec_before = self._executor.stats.snapshot()
        lock_before = self.locks.stats.snapshot()
        wal_before = self.wal_stats.snapshot()
        plan_text: str | None = None
        operators: list = []
        started = time.perf_counter()

        self._execute_depth += 1
        try:
            stmt = None
            prepared = None
            text_hit = False
            cache_hit = False
            head = sql.strip().rstrip(";").upper()
            if head not in ("BEGIN", "BEGIN TRANSACTION", "START TRANSACTION",
                            "COMMIT", "ROLLBACK"):
                stmt, prepared, text_hit = self._lookup_statement(sql)
            if isinstance(stmt, ast.Select):
                if prepared is not None:
                    root, cache_hit = self._prepared_plan(prepared)
                else:
                    root = self._planner.plan_select(stmt)
                collector = AnalyzeCollector() if analyze else None
                rows = self._executor.run(root, params, collector=collector)
                columns = [slot.name for slot in root.schema.slots]
                result = Result(columns, rows, len(rows))
                if collector is not None:
                    plan_text = render_analyzed_plan(root, collector)
                    operators = collector.operators(root)
            elif prepared is not None:
                cache_hit = text_hit
                result = self._execute_prepared(prepared, params)
            else:
                result = self.execute(sql, params)
        finally:
            self._execute_depth -= 1
        self._maybe_auto_checkpoint()

        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.metrics.histogram("db.statement_ms").observe(elapsed_ms)
        return QueryTrace(
            sql=sql,
            params=tuple(params),
            columns=result.columns,
            rows=result.rows,
            rowcount=result.rowcount,
            elapsed_ms=elapsed_ms,
            pool=self.pool.stats.delta(pool_before),
            exec=self._executor.stats.delta(exec_before),
            locks=self.locks.stats.delta(lock_before),
            wal=self.wal_stats.delta(wal_before),
            operators=operators,
            plan=plan_text,
            cache_hit=cache_hit,
        )

    # -- execution -----------------------------------------------------------------

    _EXPLAIN_RE = re.compile(r"^\s*EXPLAIN(\s+ANALYZE)?\b", re.IGNORECASE)

    def execute(self, sql: str, params: Sequence[object] = ()) -> Result:
        match = self._EXPLAIN_RE.match(sql)
        if match:
            body = sql[match.end():].strip()
            if match.group(1):
                text = self.explain_analyze(body, params)
            else:
                text = self.explain(body)
            lines = text.splitlines()
            return Result(["plan"], [(line,) for line in lines], len(lines))
        head = sql.strip().rstrip(";").upper()
        if head in ("BEGIN", "BEGIN TRANSACTION", "START TRANSACTION"):
            self.transactions.begin()
            return Result([], [], 0)
        if head == "COMMIT":
            self.transactions.commit()
            return Result([], [], 0)
        if head == "ROLLBACK":
            self.transactions.rollback()
            return Result([], [], 0)
        self._execute_depth += 1
        try:
            stmt, prepared, _ = self._lookup_statement(sql)
            if prepared is not None:
                result = self._execute_prepared(prepared, params)
            else:
                result = self._execute_statement(stmt, params)
        finally:
            self._execute_depth -= 1
        self._maybe_auto_checkpoint()
        return result

    def _lookup_statement(
        self, sql: str
    ) -> tuple[ast.Statement, PreparedStatement | None, bool]:
        """Resolve SQL text through the plan cache.

        Returns ``(stmt, prepared, hit)`` — ``prepared`` is ``None`` for
        non-preparable statements (DDL) and when the cache is disabled.
        """
        if self._statements.enabled:
            prepared = self._statements.get(sql)
            if prepared is not None:
                self.metrics.counter("db.plan_cache.hits").inc()
                return prepared.stmt, prepared, True
        stmt = parse_statement(sql)
        if isinstance(stmt, PREPARABLE):
            prepared = PreparedStatement(self, stmt, sql)
            if self._statements.enabled:
                self.metrics.counter("db.plan_cache.misses").inc()
                self._statements.put(sql, prepared)
            return stmt, prepared, False
        return stmt, None, False

    def _execute_statement(
        self, stmt: ast.Statement, params: Sequence[object] = ()
    ) -> Result:
        """Dispatch one parsed statement (the uncached path)."""
        if isinstance(
            stmt,
            (ast.CreateTable, ast.CreateIndex, ast.DropTable, ast.DropIndex),
        ):
            # DDL is non-transactional: it commits any open transaction,
            # matching the online-DDL behaviour Section 3 discusses.
            self.transactions.commit_if_active()
        if isinstance(stmt, ast.Select):
            return self._run_select(stmt, params)
        if isinstance(stmt, ast.Insert):
            return self._run_insert(stmt, params)
        if isinstance(stmt, ast.Update):
            return self._run_update(stmt, params)
        if isinstance(stmt, ast.Delete):
            return self._run_delete(stmt, params)
        if isinstance(stmt, ast.CreateTable):
            return self._run_create_table(stmt)
        if isinstance(stmt, ast.CreateIndex):
            self.catalog.create_index(
                stmt.index, stmt.table, list(stmt.columns), unique=stmt.unique
            )
            self._log_ddl(
                op="create_index",
                index=stmt.index,
                table=stmt.table,
                columns=list(stmt.columns),
                unique=stmt.unique,
            )
            self._resize_pool()
            return Result([], [], 0)
        if isinstance(stmt, ast.DropTable):
            self.catalog.drop_table(stmt.table)
            self._log_ddl(op="drop_table", table=stmt.table)
            self._resize_pool()
            return Result([], [], 0)
        if isinstance(stmt, ast.DropIndex):
            self.catalog.drop_index(stmt.table, stmt.index)
            self._log_ddl(op="drop_index", table=stmt.table, index=stmt.index)
            self._resize_pool()
            return Result([], [], 0)
        raise PlanError(f"unsupported statement {type(stmt).__name__}")

    def _log_ddl(self, **ddl) -> None:
        """WAL a DDL statement *after* it applied — failed DDL must
        never replay."""
        if self.durability is not None:
            self.durability.log_ddl(ddl)

    def execute_ast(
        self, stmt: ast.Statement, params: Sequence[object] = ()
    ) -> Result:
        """Execute an already-parsed statement — callers holding an AST
        (the schema-mapping layer, migrations) skip the text round
        trip entirely."""
        self._execute_depth += 1
        try:
            result = self._execute_statement(stmt, params)
        finally:
            self._execute_depth -= 1
        self._maybe_auto_checkpoint()
        return result

    def _maybe_auto_checkpoint(self) -> None:
        """Between top-level statements, checkpoint if enough log has
        accumulated since the last one."""
        if self._execute_depth == 0 and self.durability is not None:
            self.durability.maybe_checkpoint(self)

    # -- prepared statements ------------------------------------------------------

    def prepare(self, sql: str) -> PreparedStatement:
        """Parse (and, on first execution, plan) a statement once for
        repeated execution.  The handle is shared with the internal plan
        cache, so ``prepare`` of an already-hot statement is free."""
        if self._statements.enabled:
            prepared = self._statements.get(sql)
            if prepared is not None:
                return prepared
        stmt = parse_statement(sql)
        prepared = PreparedStatement(self, stmt, sql)
        self.analyze_statement(stmt, sql)
        self._statements.put(sql, prepared)
        return prepared

    def prepare_ast(self, stmt: ast.Statement) -> PreparedStatement:
        """Prepare an already-parsed statement (not text-cache keyed —
        the caller owns the handle's lifetime)."""
        prepared = PreparedStatement(self, stmt)
        self.analyze_statement(stmt)
        return prepared

    def analyze_statement(self, stmt: ast.Statement, sql: str = ""):
        """Run the static semantic analyzer over one statement.

        Called on every ``prepare`` so semantically invalid statements
        are rejected with a rule id *before* planning and before they
        can poison the plan cache.  Returns the (clean) report; raises
        :class:`SemanticError` when any ERROR-severity finding exists.
        """
        from ..analysis.semantic import CatalogProvider, SemanticAnalyzer

        locus = sql or type(stmt).__name__
        report = SemanticAnalyzer(CatalogProvider(self.catalog)).analyze(
            stmt, locus
        )
        if not report.ok:
            self.metrics.counter("analysis.semantic.rejections").inc()
            raise SemanticError(report.errors)
        return report

    def _execute_prepared(
        self, prepared: PreparedStatement, params: Sequence[object]
    ) -> Result:
        stmt = prepared.stmt
        if isinstance(stmt, ast.Select):
            root, _ = self._prepared_plan(prepared)
            rows = self._executor.run(root, params)
            columns = [slot.name for slot in root.schema.slots]
            return Result(columns, rows, len(rows))
        if isinstance(stmt, ast.Insert):
            return self._run_insert_program(self._prepared_insert(prepared), params)
        if isinstance(stmt, ast.Update):
            return self._run_update(stmt, params)
        return self._run_delete(stmt, params)

    def _prepared_plan(self, prepared: PreparedStatement):
        """The statement's physical plan, reusing the cached one while
        ``(catalog.version, profile, execution)`` still match — a plan
        cached under one execution engine is never replayed under the
        other.  Returns ``(plan, reused)``."""
        version = self.catalog.version
        profile = self._planner.profile
        execution = self._execution
        feedback_version = (
            self._feedback.version if self._feedback is not None else None
        )
        if (
            prepared.plan is not None
            and prepared.catalog_version == version
            and prepared.profile is profile
            and prepared.execution == execution
            and prepared.feedback_version == feedback_version
        ):
            return prepared.plan, True
        if prepared.plan is not None:
            self.metrics.counter("db.plan_cache.invalidations").inc()
        prepared.plan = self._planner.plan_select(prepared.stmt)
        prepared.catalog_version = version
        prepared.profile = profile
        prepared.execution = execution
        prepared.feedback_version = feedback_version
        return prepared.plan, False

    def _prepared_insert(self, prepared: PreparedStatement) -> "_InsertProgram":
        version = self.catalog.version
        program = prepared.insert_program
        if program is not None and prepared.catalog_version == version:
            return program
        if program is not None:
            self.metrics.counter("db.plan_cache.invalidations").inc()
        program = self._compile_insert(prepared.stmt)
        prepared.insert_program = program
        prepared.catalog_version = version
        return program

    # -- SELECT -----------------------------------------------------------------

    def _run_select(self, stmt: ast.Select, params: Sequence[object]) -> Result:
        root = self._planner.plan_select(stmt)
        rows = self._executor.run(root, params)
        columns = [slot.name for slot in root.schema.slots]
        return Result(columns, rows, len(rows))

    def _execute_subquery(self, select: ast.Select, params: Sequence[object]) -> set:
        root = self._planner.plan_select(select)
        return {row[0] for row in self._executor.run(root, params)}

    # -- DDL ---------------------------------------------------------------------

    def _run_create_table(self, stmt: ast.CreateTable) -> Result:
        if self.enforce_budget:
            projected = (
                self.catalog.metadata_bytes + self.catalog.table_metadata_cost
            )
            if projected > self.memory_bytes // 2:
                raise BudgetExceededError(
                    f"meta-data budget exhausted at {self.catalog.table_count} tables"
                )
        columns = [
            Column(c.name, parse_type(c.type_text), c.not_null) for c in stmt.columns
        ]
        self.catalog.create_table(stmt.table, columns, storage=stmt.storage)
        self._log_ddl(
            op="create_table",
            table=stmt.table,
            columns=[(c.name, c.type_text, c.not_null) for c in stmt.columns],
            storage=stmt.storage,
        )
        self._resize_pool()
        return Result([], [], 0)

    def _resize_pool(self) -> None:
        """Meta-data comes out of the same memory the pool uses — the
        Experiment 1 mechanism."""
        available = self.memory_bytes - self.catalog.metadata_bytes
        self.pool.resize(max(1, available // self.page_size))

    # -- DML -------------------------------------------------------------------------

    def _compile_insert(self, stmt: ast.Insert) -> "_InsertProgram":
        """Precompile an INSERT's value expressions and column layout;
        the program stays valid until the catalog version changes."""
        table = self.catalog.table(stmt.table)
        compiler = ExprCompiler(Schema([]))
        expected = len(stmt.columns) if stmt.columns else len(table.columns)
        rows = []
        for row_exprs in stmt.rows:
            if len(row_exprs) != expected:
                raise PlanError("INSERT arity mismatch")
            rows.append([compiler.compile(e) for e in row_exprs])
        positions = (
            tuple(table.column_position(name) for name in stmt.columns)
            if stmt.columns
            else None
        )
        return _InsertProgram(table.name, rows, positions, len(table.columns))

    def _run_insert(self, stmt: ast.Insert, params: Sequence[object]) -> Result:
        return self._run_insert_program(self._compile_insert(stmt), params)

    def _run_insert_program(
        self, program: "_InsertProgram", params: Sequence[object]
    ) -> Result:
        table = self.catalog.table(program.table_name)
        count = 0
        try:
            for compiled_row in program.rows:
                values = [fn((), params) for fn in compiled_row]
                if program.positions is not None:
                    full = [None] * program.width
                    for position, value in zip(program.positions, values):
                        full[position] = value
                    values = full
                row = tuple(values)
                rid = table.insert_row(row)
                self.transactions.record_insert(table, rid, row)
                count += 1
        except Exception:
            # A failed autocommit statement leaves its partial effects
            # in place (no statement-level rollback here), so the WAL
            # terminal must make replay reproduce that partial state.
            # A SimulatedCrash (BaseException) skips this: a crash mid
            # statement means the statement never committed.
            self.transactions.end_statement()
            raise
        self.transactions.end_statement()
        self._executor.stats.statements += 1
        return Result([], [], count)

    def _match_rids(
        self, table, where: ast.Expr | None, params: Sequence[object]
    ) -> list:
        """RIDs matching a DML predicate, using the best index available."""
        binding = table.name.lower()
        schema = Schema([Slot(binding, c.lname) for c in table.columns])
        compiler = ExprCompiler(schema, self._execute_subquery)
        conjuncts = split_conjuncts(where)

        # Constant equality conjuncts usable as an index prefix.
        const_compiler = ExprCompiler(Schema([]), self._execute_subquery)
        eq_values: dict[str, object] = {}
        for conjunct in conjuncts:
            if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
                for lhs, rhs in (
                    (conjunct.left, conjunct.right),
                    (conjunct.right, conjunct.left),
                ):
                    if (
                        isinstance(lhs, ast.ColumnRef)
                        and table.has_column(lhs.column)
                        and not isinstance(rhs, ast.ColumnRef)
                    ):
                        try:
                            value = const_compiler.compile(rhs)((), params)
                        except EngineError:
                            continue
                        eq_values.setdefault(lhs.column.lower(), value)
                        break

        predicate = (
            [compiler.compile(c) for c in conjuncts] if conjuncts else []
        )

        info = table.find_index(tuple(eq_values.keys())) if eq_values else None
        rids = []
        if info is not None:
            prefix = []
            for col in info.column_names:
                if col.lower() in eq_values:
                    prefix.append(eq_values[col.lower()])
                else:
                    break
            self._executor.stats.index_lookups += 1
            for _key, rid in info.btree.scan_prefix(tuple(prefix)):
                row = table.heap.fetch(rid)
                self._executor.stats.rows_fetched += 1
                if all(p(row, params) is True for p in predicate):
                    rids.append(rid)
        else:
            for rid, row in table.heap.scan():
                self._executor.stats.rows_scanned += 1
                if all(p(row, params) is True for p in predicate):
                    rids.append(rid)
        return rids

    def _run_update(self, stmt: ast.Update, params: Sequence[object]) -> Result:
        table = self.catalog.table(stmt.table)
        binding = table.name.lower()
        schema = Schema([Slot(binding, c.lname) for c in table.columns])
        compiler = ExprCompiler(schema, self._execute_subquery)
        assignments = [
            (table.column_position(col), compiler.compile(expr))
            for col, expr in stmt.assignments
        ]
        rids = self._match_rids(table, stmt.where, params)
        try:
            for rid in rids:
                old_row = table.heap.fetch(rid)
                new_row = list(old_row)
                # SET expressions all see the pre-update row, per SQL.
                for position, compiled in assignments:
                    new_row[position] = compiled(old_row, params)
                new_tuple = tuple(new_row)
                new_rid = table.update_row(rid, new_tuple)
                self.transactions.record_update(
                    table, rid, old_row, new_rid, new_tuple
                )
        except Exception:
            self.transactions.end_statement()
            raise
        self.transactions.end_statement()
        self._executor.stats.statements += 1
        return Result([], [], len(rids))

    def _run_delete(self, stmt: ast.Delete, params: Sequence[object]) -> Result:
        table = self.catalog.table(stmt.table)
        rids = self._match_rids(table, stmt.where, params)
        try:
            for rid in rids:
                row = table.delete_row(rid)
                self.transactions.record_delete(table, rid, row)
        except Exception:
            self.transactions.end_statement()
            raise
        self.transactions.end_statement()
        self._executor.stats.statements += 1
        return Result([], [], len(rids))
