"""Tests for the experiment harnesses at miniature scale."""

import pytest

from repro.experiments.chunkqueries import (
    ChunkQueryConfig,
    ChunkQueryExperiment,
    child_table,
    experiment_columns,
    parent_table,
    q2_sql,
    TENANT,
)
from repro.experiments.manytables import ManyTablesExperiment
from repro.experiments.report import render_series, render_table
from repro.testbed.generator import TenantDataProfile


class TestExperimentSchema:
    def test_columns_evenly_distributed(self):
        columns = experiment_columns(90)
        kinds = [str(c.type) for c in columns]
        assert kinds.count("INTEGER") == 30
        assert kinds.count("DATE") == 30
        assert kinds.count("VARCHAR(100)") == 30

    def test_parent_has_id_plus_data(self):
        table = parent_table(9)
        assert len(table.columns) == 10
        assert table.columns[0].indexed

    def test_child_has_foreign_key(self):
        table = child_table(9)
        assert table.columns[1].lname == "parent"
        assert table.columns[1].indexed

    def test_q2_sql_scale(self):
        sql = q2_sql(3)
        assert sql.count("p.col") == 3
        assert sql.count("c.col") == 3
        assert "p.id = c.parent" in sql


SMALL = ChunkQueryConfig(parents=8, children_per_parent=3, data_columns=12)


class TestChunkQueryExperiment:
    @pytest.fixture(scope="class")
    def conventional(self):
        exp = ChunkQueryExperiment("private", SMALL)
        exp.load()
        return exp

    @pytest.fixture(scope="class")
    def chunked(self):
        exp = ChunkQueryExperiment("chunk", SMALL, width=3)
        exp.load()
        return exp

    def test_load_is_idempotent(self, conventional):
        before = conventional.mtd.execute(
            TENANT, "SELECT COUNT(*) FROM parent"
        ).rows
        conventional.load()
        after = conventional.mtd.execute(
            TENANT, "SELECT COUNT(*) FROM parent"
        ).rows
        assert before == after == [(8,)]

    def test_layouts_agree_on_q2(self, conventional, chunked):
        sql = q2_sql(6)
        a = sorted(conventional.mtd.execute(TENANT, sql, [4]).rows)
        b = sorted(chunked.mtd.execute(TENANT, sql, [4]).rows)
        assert a == b
        assert len(a) == 3

    def test_measure_returns_counters(self, chunked):
        m = chunked.measure(3)
        assert m.logical_reads > 0
        assert m.physical_reads == 0  # warm
        assert m.rows == 3

    def test_cold_measure_pays_physical(self, chunked):
        m = chunked.measure(3, cold=True)
        assert m.physical_reads > 0

    def test_grouping_measure(self, chunked, conventional):
        assert chunked.measure_grouping() > 0
        assert conventional.measure_grouping() > 0

    def test_labels(self):
        assert ChunkQueryExperiment("chunk", SMALL, width=6).label == "chunk6"
        assert (
            ChunkQueryExperiment("chunk", SMALL, width=6, folded=False).label
            == "chunk6-vp"
        )
        assert ChunkQueryExperiment("private", SMALL).label == "private"


class TestManyTablesExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        experiment = ManyTablesExperiment(
            tenants=10,
            sessions=2,
            actions=60,
            memory_bytes=2 * 1024 * 1024,
            variabilities=(0.0, 1.0),
            data_profile=TenantDataProfile(default_rows=3),
        )
        return experiment.run()

    def test_one_row_per_variability(self, rows):
        assert [r.variability for r in rows] == [0.0, 1.0]

    def test_first_row_is_the_baseline(self, rows):
        assert rows[0].baseline_compliance == pytest.approx(95.0)

    def test_table_counts(self, rows):
        assert rows[0].total_tables == 10
        assert rows[1].total_tables == 100

    def test_figure_series_extractors(self, rows):
        assert ManyTablesExperiment.figure7a(rows)[0] == (
            0.0,
            rows[0].baseline_compliance,
        )
        assert len(ManyTablesExperiment.figure7b(rows)) == 2
        assert len(ManyTablesExperiment.figure7c(rows)[0]) == 3


class TestReportRendering:
    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [(1, 22), (333, 4)])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in lines[-1]
        # Columns align: header and rows have the same width.
        assert len(lines[2]) == len(lines[-1])

    def test_render_series_numeric_x_order(self):
        text = render_series(
            "S", "x", {"y": [(15, 1.0), (3, 2.0), (90, 3.0)]}
        )
        body = text.splitlines()[4:]
        xs = [int(line.split()[0]) for line in body]
        assert xs == [3, 15, 90]

    def test_render_series_multiple_columns(self):
        text = render_series(
            "S", "x", {"a": [(1, 1.0)], "b": [(1, 2.0), (2, 3.0)]}
        )
        assert "a" in text and "b" in text
