"""Online extension grant must preserve existing rows (NULL backfill).

Reconstruction inner-joins fragments on Row, so granting an extension
to a tenant with data has to plant NULL rows in every fragment that
holds only the new columns — otherwise the tenant's existing rows
silently vanish from every SELECT.  The chunk layout additionally must
append chunks instead of repartitioning (repartitioning would strand
the already-stored values in their old slots).

These are regression tests for bugs the isolation/invariant passes
flagged; the analysis runner replays the same grant path.
"""

import datetime

import pytest

from .conftest import ALL_LAYOUTS, build_running_example


@pytest.mark.parametrize("layout", ALL_LAYOUTS)
def test_grant_preserves_existing_rows(layout):
    mtd = build_running_example(layout)
    before = mtd.execute(35, "SELECT aid, name FROM account ORDER BY aid").rows
    assert before == [(1, "Ball")]

    mtd.grant_extension(35, "automotive")

    # The pre-grant row survives and reads NULL for the new column.
    rows = mtd.execute(
        35, "SELECT aid, name, dealers FROM account ORDER BY aid"
    ).rows
    assert rows == [(1, "Ball", None)]

    # New rows interleave with the backfilled one.
    mtd.insert(35, "account", {"aid": 2, "name": "Cue", "dealers": 7})
    rows = mtd.execute(
        35, "SELECT aid, name, dealers FROM account ORDER BY aid"
    ).rows
    assert rows == [(1, "Ball", None), (2, "Cue", 7)]

    # Old columns alone still reconstruct both rows.
    assert mtd.execute(35, "SELECT COUNT(*) FROM account").rows == [(2,)]


@pytest.mark.parametrize("layout", ALL_LAYOUTS)
def test_grant_does_not_leak_into_other_tenants(layout):
    mtd = build_running_example(layout)
    mtd.grant_extension(35, "automotive")
    # Tenant 42 subscribed from the start; its data is untouched.
    assert mtd.execute(
        42, "SELECT aid, dealers FROM account"
    ).rows == [(1, 65)]
    # Tenant 17 still cannot name the column it never subscribed to.
    with pytest.raises(Exception):
        mtd.execute(17, "SELECT dealers FROM account")


def test_chunk_grant_marks_tenant_legacy_and_keeps_data():
    mtd = build_running_example("chunk")
    mtd.grant_extension(35, "automotive")
    assert 35 in mtd.layout._legacy_tenants
    # Appended chunks: old and new columns answer from one tenant view.
    rows = mtd.execute(
        35, "SELECT aid, name, opened, dealers FROM account"
    ).rows
    assert rows == [(1, "Ball", datetime.date(2006, 7, 8), None)]
    # Freshly created tenants with the same grant set still share shape.
    mtd.create_tenant(77, extensions=("automotive",))
    assert mtd.layout.statement_shape(77) == mtd.layout.statement_shape(42)


@pytest.mark.parametrize("layout", ALL_LAYOUTS)
def test_grant_on_empty_tenant_is_noop_for_data(layout):
    mtd = build_running_example(layout)
    mtd.create_tenant(99)
    mtd.grant_extension(99, "healthcare")
    assert mtd.execute(99, "SELECT COUNT(*) FROM account").rows == [(0,)]
    mtd.insert(99, "account", {"aid": 1, "name": "New", "beds": 12})
    assert mtd.execute(
        99, "SELECT aid, beds FROM account"
    ).rows == [(1, 12)]
